//! # ssr-daemon — state-reading execution engine and process schedulers
//!
//! The paper's algorithms live in the *state-reading* communication model
//! with *composite atomicity*: at each step a scheduler (the **daemon**)
//! selects a non-empty set of enabled processes, each of which atomically
//! reads its neighbours and rewrites its own state. This crate provides:
//!
//! * [`Daemon`] — the scheduler abstraction, with the whole menagerie used
//!   in self-stabilization proofs: central (deterministic and randomized),
//!   synchronous, distributed-random, and *unfair adversarial* daemons
//!   (starvation of chosen victims, greedy delay of Dijkstra moves — the
//!   adversary implicit in Lemma 5 and Theorem 2).
//! * [`Engine`] — drives a [`ssr_core::RingAlgorithm`] under a daemon,
//!   recording a [`trace::Trace`] of moves.
//! * [`convergence`] — stabilization-time measurement (steps to reach a
//!   legitimate configuration, plus closure verification afterward).
//! * [`random_config`] — random and fault-injected initial configurations.
//!
//! ```
//! use ssr_core::{RingParams, SsrMin, RingAlgorithm};
//! use ssr_daemon::{daemons::CentralRandom, Engine};
//!
//! let params = RingParams::new(7, 9).unwrap();
//! let algo = SsrMin::new(params);
//! let start = ssr_daemon::random_config::random_ssr_config(params, 42);
//! let mut engine = Engine::new(algo, start).unwrap();
//! let mut daemon = CentralRandom::seeded(7);
//! let steps = engine
//!     .run_until(&mut daemon, 100_000, |a, c| a.is_legitimate(c))
//!     .expect("SSRmin converges from any configuration");
//! assert!(engine.algorithm().is_legitimate(engine.config()));
//! println!("converged in {steps} steps");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combinators;
pub mod convergence;
pub mod daemons;
pub mod engine;
pub mod random_config;
pub mod trace;

pub use combinators::{Alternate, Mix, Restrict};
pub use convergence::{measure_convergence, ConvergenceReport};
pub use daemons::{Daemon, EnabledProcess};
pub use engine::Engine;
pub use trace::{StepRecord, Trace};
