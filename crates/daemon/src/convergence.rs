//! Stabilization-time measurement: run an algorithm from a given
//! configuration under a given daemon until the configuration is
//! legitimate, and report how long it took (Theorem 2 instrumentation).

use ssr_core::{Config, RingAlgorithm};

use crate::daemons::Daemon;
use crate::engine::Engine;

/// The result of one convergence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Scheduler steps until the first legitimate configuration.
    pub steps: u64,
    /// Completed rounds until convergence (the asynchronous time unit:
    /// every initially-enabled process moved or was disabled per round).
    pub rounds: u64,
    /// Individual process moves until convergence (≥ `steps` under
    /// distributed daemons).
    pub moves: u64,
    /// How many of those moves executed the Dijkstra command `C_i`
    /// (SSRmin Rules 2/4) — the `W₂₄` events of the Lemma 8 analysis.
    pub dijkstra_moves: u64,
    /// Steps of post-convergence closure verification that were performed.
    pub closure_checked_steps: u64,
}

/// Run `algo` from `initial` under `daemon` until legitimate, then keep
/// running `closure_steps` more steps asserting the closure property
/// (Lemma 1). Returns `None` if `max_steps` was exhausted before
/// convergence.
///
/// # Panics
///
/// Panics if a deadlock occurs (impossible for SSRmin by Lemma 4) or if
/// closure is violated after convergence — both indicate an implementation
/// bug rather than a recoverable condition.
pub fn measure_convergence<A, D>(
    algo: A,
    initial: Config<A::State>,
    daemon: &mut D,
    max_steps: u64,
    closure_steps: u64,
) -> Option<ConvergenceReport>
where
    A: RingAlgorithm + Clone,
    D: Daemon + ?Sized,
{
    let mut engine = Engine::new(algo.clone(), initial).expect("valid initial configuration");
    let mut dijkstra_moves: u64 = 0;
    let mut converged_at: Option<(u64, u64, u64)> = None;

    for _ in 0..max_steps {
        if algo.is_legitimate(engine.config()) {
            converged_at = Some((engine.steps(), engine.moves(), engine.rounds()));
            break;
        }
        match engine.step(daemon) {
            Some(record) => dijkstra_moves += record.dijkstra_moves() as u64,
            None => panic!("deadlock before convergence (Lemma 4 violated)"),
        }
    }
    if converged_at.is_none() && algo.is_legitimate(engine.config()) {
        converged_at = Some((engine.steps(), engine.moves(), engine.rounds()));
    }
    let (steps, moves, rounds) = converged_at?;

    for t in 0..closure_steps {
        engine.step(daemon).unwrap_or_else(|| panic!("deadlock during closure check at step {t}"));
        assert!(
            algo.is_legitimate(engine.config()),
            "closure violated {t} steps after convergence"
        );
    }

    Some(ConvergenceReport {
        steps,
        rounds,
        moves,
        dijkstra_moves,
        closure_checked_steps: closure_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::{
        CentralFirst, CentralRandom, DelayDijkstra, DistributedRandom, Starver, Synchronous,
    };
    use crate::random_config;
    use ssr_core::{RingParams, SsrMin};

    fn params(n: usize, k: u32) -> RingParams {
        RingParams::new(n, k).unwrap()
    }

    #[test]
    fn already_legitimate_reports_zero() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let r = measure_convergence(a, a.legitimate_anchor(1), &mut CentralFirst, 100, 10).unwrap();
        assert_eq!(r.steps, 0);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.moves, 0);
        assert_eq!(r.closure_checked_steps, 10);
    }

    #[test]
    fn converges_from_random_configs_under_many_daemons() {
        let p = params(6, 8);
        let a = SsrMin::new(p);
        let budget = 100_000;
        for seed in 0..12u64 {
            let cfg = random_config::random_ssr_config(p, seed);
            let reports = [
                measure_convergence(a, cfg.clone(), &mut CentralFirst, budget, 20),
                measure_convergence(a, cfg.clone(), &mut CentralRandom::seeded(seed), budget, 20),
                measure_convergence(a, cfg.clone(), &mut Synchronous, budget, 20),
                measure_convergence(
                    a,
                    cfg.clone(),
                    &mut DistributedRandom::seeded(seed, 0.5),
                    budget,
                    20,
                ),
                measure_convergence(
                    a,
                    cfg.clone(),
                    &mut Starver::new(vec![0, 3], seed),
                    budget,
                    20,
                ),
                measure_convergence(a, cfg, &mut DelayDijkstra::seeded(seed), budget, 20),
            ];
            for (d, r) in reports.iter().enumerate() {
                assert!(r.is_some(), "seed {seed}, daemon #{d} failed to converge");
            }
        }
    }

    #[test]
    fn converges_from_adversarial_config() {
        let p = params(8, 10);
        let a = SsrMin::new(p);
        let cfg = random_config::adversarial_ssr_config(p);
        let r = measure_convergence(a, cfg, &mut DelayDijkstra::seeded(3), 1_000_000, 50)
            .expect("must converge");
        assert!(r.steps > 0);
        assert!(r.dijkstra_moves > 0, "convergence requires counter moves");
    }

    /// Theorem 2 sanity: steps to converge grow subquadratically-with-slack;
    /// we check an explicit generous O(n²) envelope on random inputs.
    #[test]
    fn convergence_within_quadratic_envelope() {
        for n in [4usize, 6, 8, 12] {
            let p = params(n, (n + 1) as u32);
            let a = SsrMin::new(p);
            let bound = 40 * (n as u64) * (n as u64) + 400;
            for seed in 0..5u64 {
                let cfg = random_config::random_ssr_config(p, seed);
                let r = measure_convergence(a, cfg, &mut CentralRandom::seeded(seed), bound, 5);
                assert!(r.is_some(), "n={n} seed={seed} exceeded the quadratic envelope");
            }
        }
    }
}
