//! Process schedulers ("daemons") for the composite-atomicity model.
//!
//! A daemon sees the set of currently enabled processes and must return a
//! non-empty subset of them to move simultaneously. The paper assumes the
//! strongest adversary — the **unfair distributed daemon** — so correctness
//! must hold for *every* implementation of [`Daemon`]; the implementations
//! here are the probes used by the test- and experiment-suites.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One enabled process as seen by the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnabledProcess {
    /// Ring index of the process.
    pub process: usize,
    /// Algorithm-defined rule tag (SSRmin: the rule number 1–5; tags 2 and 4
    /// are executions of the Dijkstra command `C_i`).
    pub rule_tag: u8,
}

impl EnabledProcess {
    /// True iff this move executes the Dijkstra command (SSRmin Rules 2/4
    /// and every move of the plain Dijkstra ring).
    #[inline]
    pub fn is_dijkstra_move(&self) -> bool {
        self.rule_tag == 2 || self.rule_tag == 4
    }
}

/// A scheduler for the composite-atomicity model.
///
/// Contract: `select` must return a non-empty subset of the indices present
/// in `enabled` (duplicates are ignored). The engine defensively filters the
/// result and falls back to the first enabled process if a daemon
/// misbehaves, so a buggy daemon cannot fabricate illegal executions.
///
/// ```
/// use ssr_daemon::{Daemon, EnabledProcess};
///
/// /// A daemon that always prefers the token-holding bottom process.
/// struct BottomFirst;
/// impl Daemon for BottomFirst {
///     fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
///         vec![enabled.iter().map(|e| e.process).min().unwrap()]
///     }
/// }
/// ```
pub trait Daemon {
    /// Choose the set of processes to move at step `step`.
    /// `enabled` is non-empty and sorted by process index.
    fn select(&mut self, enabled: &[EnabledProcess], step: u64) -> Vec<usize>;

    /// Human-readable daemon name for reports.
    fn name(&self) -> &'static str {
        "daemon"
    }
}

impl<D: Daemon + ?Sized> Daemon for &mut D {
    fn select(&mut self, enabled: &[EnabledProcess], step: u64) -> Vec<usize> {
        (**self).select(enabled, step)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Central daemon that always moves the lowest-index enabled process.
/// Deterministic; handy for reproducing the paper's example executions.
#[derive(Debug, Default, Clone, Copy)]
pub struct CentralFirst;

impl Daemon for CentralFirst {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        vec![enabled[0].process]
    }
    fn name(&self) -> &'static str {
        "central-first"
    }
}

/// Central daemon that always moves the highest-index enabled process.
#[derive(Debug, Default, Clone, Copy)]
pub struct CentralLast;

impl Daemon for CentralLast {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        vec![enabled[enabled.len() - 1].process]
    }
    fn name(&self) -> &'static str {
        "central-last"
    }
}

/// Central daemon choosing uniformly at random among the enabled processes.
#[derive(Debug)]
pub struct CentralRandom {
    rng: StdRng,
}

impl CentralRandom {
    /// Deterministic given the seed.
    pub fn seeded(seed: u64) -> Self {
        CentralRandom { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Daemon for CentralRandom {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        let i = self.rng.random_range(0..enabled.len());
        vec![enabled[i].process]
    }
    fn name(&self) -> &'static str {
        "central-random"
    }
}

/// Round-robin central daemon: repeatedly scans the ring from just past the
/// last mover and picks the next enabled process. A *fair* central daemon.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobin {
    cursor: usize,
}

impl Daemon for RoundRobin {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        // Pick the first enabled process with index >= cursor, else wrap.
        let pick = enabled.iter().find(|e| e.process >= self.cursor).unwrap_or(&enabled[0]).process;
        self.cursor = pick + 1;
        vec![pick]
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// The synchronous daemon: every enabled process moves at every step.
/// The most "distributed" choice the distributed daemon can make.
#[derive(Debug, Default, Clone, Copy)]
pub struct Synchronous;

impl Daemon for Synchronous {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        enabled.iter().map(|e| e.process).collect()
    }
    fn name(&self) -> &'static str {
        "synchronous"
    }
}

/// Distributed daemon selecting each enabled process independently with
/// probability `p` (falling back to one uniformly random process if the coin
/// flips leave the set empty).
#[derive(Debug)]
pub struct DistributedRandom {
    rng: StdRng,
    p: f64,
}

impl DistributedRandom {
    /// `p` is clamped into `[0, 1]`. Deterministic given the seed.
    pub fn seeded(seed: u64, p: f64) -> Self {
        DistributedRandom { rng: StdRng::seed_from_u64(seed), p: p.clamp(0.0, 1.0) }
    }
}

impl Daemon for DistributedRandom {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        let mut picked: Vec<usize> =
            enabled.iter().filter(|_| self.rng.random_bool(self.p)).map(|e| e.process).collect();
        if picked.is_empty() {
            let i = self.rng.random_range(0..enabled.len());
            picked.push(enabled[i].process);
        }
        picked
    }
    fn name(&self) -> &'static str {
        "distributed-random"
    }
}

/// An *unfair* daemon that starves the given victims: a victim is selected
/// only when every enabled process is a victim. Demonstrates that
/// correctness cannot rely on any particular process being scheduled.
#[derive(Debug)]
pub struct Starver {
    victims: Vec<usize>,
    rng: StdRng,
}

impl Starver {
    /// Starve `victims` whenever possible.
    pub fn new(victims: Vec<usize>, seed: u64) -> Self {
        Starver { victims, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Daemon for Starver {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        let non_victims: Vec<usize> =
            enabled.iter().map(|e| e.process).filter(|p| !self.victims.contains(p)).collect();
        let pool = if non_victims.is_empty() {
            enabled.iter().map(|e| e.process).collect::<Vec<_>>()
        } else {
            non_victims
        };
        let i = self.rng.random_range(0..pool.len());
        vec![pool[i]]
    }
    fn name(&self) -> &'static str {
        "starver"
    }
}

/// The Lemma 5 adversary: greedily delays the Dijkstra command by selecting
/// only processes enabled by non-counter rules (SSRmin Rules 1/3/5, rule
/// tags other than 2 and 4) for as long as any exist; only when every
/// enabled process would execute `C_i` does it concede one such move.
///
/// Lemma 5 proves this adversary can stall the counter for at most `3n`
/// consecutive steps; `exp_lemma5_bound` measures the stall lengths it
/// actually achieves.
#[derive(Debug)]
pub struct DelayDijkstra {
    rng: StdRng,
    /// When `true`, fire *all* preferred processes at once (distributed);
    /// when `false`, one at a time (central) — one-at-a-time maximizes the
    /// number of scheduler steps between counter moves.
    pub batch: bool,
}

impl DelayDijkstra {
    /// One-at-a-time variant (maximizes stall length in steps).
    pub fn seeded(seed: u64) -> Self {
        DelayDijkstra { rng: StdRng::seed_from_u64(seed), batch: false }
    }

    /// Batched variant (all preferred processes at once).
    pub fn seeded_batch(seed: u64) -> Self {
        DelayDijkstra { rng: StdRng::seed_from_u64(seed), batch: true }
    }
}

impl Daemon for DelayDijkstra {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        let preferred: Vec<usize> =
            enabled.iter().filter(|e| !e.is_dijkstra_move()).map(|e| e.process).collect();
        if preferred.is_empty() {
            // Forced: concede exactly one counter move.
            let i = self.rng.random_range(0..enabled.len());
            return vec![enabled[i].process];
        }
        if self.batch {
            preferred
        } else {
            let i = self.rng.random_range(0..preferred.len());
            vec![preferred[i]]
        }
    }
    fn name(&self) -> &'static str {
        "delay-dijkstra"
    }
}

/// A pathological daemon used by the engine's defensive tests: returns
/// indices that are not enabled (or nothing at all).
#[derive(Debug, Default, Clone, Copy)]
pub struct Misbehaving;

impl Daemon for Misbehaving {
    fn select(&mut self, _enabled: &[EnabledProcess], step: u64) -> Vec<usize> {
        if step.is_multiple_of(2) {
            vec![usize::MAX]
        } else {
            Vec::new()
        }
    }
    fn name(&self) -> &'static str {
        "misbehaving"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled(list: &[(usize, u8)]) -> Vec<EnabledProcess> {
        list.iter().map(|&(process, rule_tag)| EnabledProcess { process, rule_tag }).collect()
    }

    #[test]
    fn central_first_and_last_pick_extremes() {
        let e = enabled(&[(1, 1), (3, 3), (6, 2)]);
        assert_eq!(CentralFirst.select(&e, 0), vec![1]);
        assert_eq!(CentralLast.select(&e, 0), vec![6]);
    }

    #[test]
    fn central_random_picks_member_deterministically_per_seed() {
        let e = enabled(&[(1, 1), (3, 3), (6, 2)]);
        let picks_a: Vec<Vec<usize>> = {
            let mut d = CentralRandom::seeded(5);
            (0..10).map(|s| d.select(&e, s)).collect()
        };
        let picks_b: Vec<Vec<usize>> = {
            let mut d = CentralRandom::seeded(5);
            (0..10).map(|s| d.select(&e, s)).collect()
        };
        assert_eq!(picks_a, picks_b);
        for p in picks_a {
            assert_eq!(p.len(), 1);
            assert!([1, 3, 6].contains(&p[0]));
        }
    }

    #[test]
    fn round_robin_advances_cursor() {
        let mut d = RoundRobin::default();
        let e = enabled(&[(1, 1), (3, 1), (6, 1)]);
        assert_eq!(d.select(&e, 0), vec![1]);
        assert_eq!(d.select(&e, 1), vec![3]);
        assert_eq!(d.select(&e, 2), vec![6]);
        assert_eq!(d.select(&e, 3), vec![1]); // wraps
    }

    #[test]
    fn synchronous_selects_everyone() {
        let e = enabled(&[(0, 1), (2, 2), (4, 5)]);
        assert_eq!(Synchronous.select(&e, 0), vec![0, 2, 4]);
    }

    #[test]
    fn distributed_random_never_returns_empty() {
        let e = enabled(&[(0, 1), (2, 2), (4, 5)]);
        let mut d = DistributedRandom::seeded(1, 0.0); // coin never fires
        for s in 0..50 {
            let picked = d.select(&e, s);
            assert!(!picked.is_empty());
            assert!(picked.iter().all(|p| [0, 2, 4].contains(p)));
        }
    }

    #[test]
    fn starver_avoids_victims_when_possible() {
        let mut d = Starver::new(vec![2], 3);
        let e = enabled(&[(1, 1), (2, 2)]);
        for s in 0..20 {
            assert_eq!(d.select(&e, s), vec![1]);
        }
        // Forced when only victims are enabled.
        let only_victim = enabled(&[(2, 2)]);
        assert_eq!(d.select(&only_victim, 0), vec![2]);
    }

    #[test]
    fn delay_dijkstra_prefers_non_counter_moves() {
        let mut d = DelayDijkstra::seeded(0);
        let e = enabled(&[(0, 2), (1, 3), (2, 4)]);
        for s in 0..20 {
            assert_eq!(d.select(&e, s), vec![1], "must starve the counter moves");
        }
        let forced = enabled(&[(0, 2), (2, 4)]);
        let picked = d.select(&forced, 0);
        assert_eq!(picked.len(), 1);
        assert!([0, 2].contains(&picked[0]));
    }

    #[test]
    fn delay_dijkstra_batch_fires_all_preferred() {
        let mut d = DelayDijkstra::seeded_batch(0);
        let e = enabled(&[(0, 2), (1, 3), (3, 5), (4, 1)]);
        assert_eq!(d.select(&e, 0), vec![1, 3, 4]);
    }

    #[test]
    fn is_dijkstra_move_matches_tags_2_and_4() {
        assert!(EnabledProcess { process: 0, rule_tag: 2 }.is_dijkstra_move());
        assert!(EnabledProcess { process: 0, rule_tag: 4 }.is_dijkstra_move());
        for t in [0u8, 1, 3, 5] {
            assert!(!EnabledProcess { process: 0, rule_tag: t }.is_dijkstra_move());
        }
    }
}
