//! Execution traces: the sequence of configurations and moves, plus the
//! Figure-4-style pretty printer.

use std::fmt::Write as _;

use ssr_core::{Config, RingAlgorithm, SsrMin, SsrState};

/// One scheduler step: which processes moved and with which rule tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// 1-based step number (the resulting configuration's index).
    pub step: u64,
    /// `(process index, rule tag)` for every mover, ascending by process.
    pub movers: Vec<(usize, u8)>,
}

impl StepRecord {
    /// Number of Dijkstra (`C_i`) moves in this step (rule tags 2 and 4).
    pub fn dijkstra_moves(&self) -> usize {
        self.movers.iter().filter(|m| m.1 == 2 || m.1 == 4).count()
    }
}

/// A recorded execution: the initial configuration plus, per step, the
/// movers and the configuration they produced.
#[derive(Debug, Clone)]
pub struct Trace<S> {
    configs: Vec<Config<S>>,
    records: Vec<StepRecord>,
}

impl<S: Clone + PartialEq> Trace<S> {
    /// A trace positioned at an initial configuration with no steps yet.
    pub fn starting_at(initial: Config<S>) -> Self {
        Trace { configs: vec![initial], records: Vec::new() }
    }

    /// Append a step and its resulting configuration.
    pub fn push(&mut self, record: StepRecord, config: Config<S>) {
        self.records.push(record);
        self.configs.push(config);
    }

    /// Number of steps recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff no step was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Configuration after `t` steps (`t = 0` is the initial configuration).
    pub fn config_at(&self, t: usize) -> &[S] {
        &self.configs[t]
    }

    /// The final configuration.
    pub fn final_config(&self) -> &[S] {
        self.configs.last().expect("trace always has the initial config")
    }

    /// The step records.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// All configurations (index 0 is initial).
    pub fn configs(&self) -> &[Config<S>] {
        &self.configs
    }
}

/// Render an SSRmin trace in the notation of the paper's Figure 4: one row
/// per step, each process shown as `x.rts.tra` plus token letters `P`/`S`
/// and `/r` for the rule its mover is about to execute.
pub fn render_ssrmin_trace(algo: &SsrMin, trace: &Trace<SsrState>) -> String {
    let n = algo.n();
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(trace.configs().len());
    for (t, cfg) in trace.configs().iter().enumerate() {
        let mut row = Vec::with_capacity(n);
        for i in 0..n {
            let mut cell = cfg[i].to_string();
            let tokens = algo.tokens_in(cfg, i);
            if tokens.primary {
                cell.push('P');
            }
            if tokens.secondary {
                cell.push('S');
            }
            // Annotate the rule that fires from this configuration, if this
            // process is the mover of the next recorded step.
            if t < trace.len() {
                if let Some(&(_, tag)) = trace.records()[t].movers.iter().find(|m| m.0 == i) {
                    let _ = write!(cell, "/{tag}");
                }
            }
            row.push(cell);
        }
        cells.push(row);
    }

    let widths: Vec<usize> = (0..n)
        .map(|i| {
            cells
                .iter()
                .map(|row| row[i].len())
                .chain(std::iter::once(format!("P{i}").len()))
                .max()
                .unwrap_or(2)
        })
        .collect();

    let mut out = String::new();
    let _ = write!(out, "{:>4} ", "Step");
    for (i, w) in widths.iter().enumerate() {
        let _ = write!(out, " {:<w$}", format!("P{i}"), w = w);
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
    for (t, row) in cells.iter().enumerate() {
        let _ = write!(out, "{:>4} ", t + 1);
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {:<w$}", cell, w = w);
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::CentralFirst;
    use crate::engine::Engine;
    use ssr_core::RingParams;

    #[test]
    fn step_record_counts_dijkstra_moves() {
        let r = StepRecord { step: 1, movers: vec![(0, 1), (1, 2), (2, 4), (3, 5)] };
        assert_eq!(r.dijkstra_moves(), 2);
    }

    #[test]
    fn trace_indexing() {
        let mut t = Trace::starting_at(vec![0u8]);
        assert!(t.is_empty());
        t.push(StepRecord { step: 1, movers: vec![(0, 0)] }, vec![1u8]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.config_at(0), &[0]);
        assert_eq!(t.config_at(1), &[1]);
        assert_eq!(t.final_config(), &[1]);
    }

    #[test]
    fn render_matches_figure4_first_rows() {
        let algo = SsrMin::new(RingParams::new(5, 7).unwrap());
        let mut engine = Engine::new(algo, algo.legitimate_anchor(3)).unwrap();
        let trace = engine.run_traced(&mut CentralFirst, 3);
        let rendered = render_ssrmin_trace(&algo, &trace);
        let lines: Vec<&str> = rendered.lines().collect();
        // Header + 4 configuration rows.
        assert_eq!(lines.len(), 5);
        // Step 1 row: P0 is 3.0.1 with both tokens, firing Rule 1.
        assert!(lines[1].contains("3.0.1PS/1"), "got: {}", lines[1]);
        // Step 2: P0 is 3.1.0 holding PS, P1 fires Rule 3.
        assert!(lines[2].contains("3.1.0PS"), "got: {}", lines[2]);
        assert!(lines[2].contains("3.0.0/3"), "got: {}", lines[2]);
        // Step 3: P0 fires Rule 2 holding only P; P1 shows S.
        assert!(lines[3].contains("3.1.0P/2"), "got: {}", lines[3]);
        assert!(lines[3].contains("3.0.1S"), "got: {}", lines[3]);
    }
}
