//! The composite-atomicity execution engine: drives a ring algorithm under
//! a daemon, one configuration transition at a time.

use ssr_core::{Config, RingAlgorithm};

use crate::daemons::{Daemon, EnabledProcess};
use crate::trace::{StepRecord, Trace};

/// Drives a [`RingAlgorithm`] under a [`Daemon`].
///
/// The engine owns the current configuration. Each [`Engine::step`]:
///
/// 1. computes the enabled set (process + rule tag),
/// 2. asks the daemon for a non-empty subset (defensively sanitized),
/// 3. applies the selected commands *simultaneously* — every mover reads the
///    pre-step configuration, exactly as the distributed daemon semantics
///    prescribe.
///
/// ```
/// use ssr_core::{RingAlgorithm, RingParams, SsrMin};
/// use ssr_daemon::{daemons::Synchronous, Engine};
///
/// let algo = SsrMin::new(RingParams::new(5, 7).unwrap());
/// let mut engine = Engine::new(algo, algo.legitimate_anchor(0)).unwrap();
/// engine.step(&mut Synchronous).unwrap();
/// assert_eq!(engine.steps(), 1);
/// assert!(algo.is_legitimate(engine.config())); // closure (Lemma 1)
/// ```
#[derive(Debug, Clone)]
pub struct Engine<A: RingAlgorithm> {
    algo: A,
    config: Config<A::State>,
    steps: u64,
    moves: u64,
    rounds: u64,
    /// Processes enabled at the start of the current round that have
    /// neither moved nor been disabled since (standard round accounting).
    round_pending: Vec<usize>,
}

impl<A: RingAlgorithm> Engine<A> {
    /// Create an engine positioned at `config` (validated).
    pub fn new(algo: A, config: Config<A::State>) -> ssr_core::Result<Self> {
        algo.validate_config(&config)?;
        let mut engine =
            Engine { algo, config, steps: 0, moves: 0, rounds: 0, round_pending: Vec::new() };
        engine.round_pending = engine.enabled().iter().map(|e| e.process).collect();
        Ok(engine)
    }

    /// The algorithm being executed.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Current configuration.
    pub fn config(&self) -> &[A::State] {
        &self.config
    }

    /// Number of scheduler steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of individual process moves executed so far (a distributed
    /// step moving `k` processes counts `k`).
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Number of completed *rounds*. A round is the standard asynchronous
    /// time unit of self-stabilization: the minimal execution segment in
    /// which every process enabled at its start has either moved or become
    /// disabled. Under the synchronous daemon one step = one round; under
    /// unfair daemons a round can take many steps.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Replace the configuration (e.g. to inject a transient fault). The
    /// step counters keep running — exactly like a real fault would not
    /// reset time.
    pub fn set_config(&mut self, config: Config<A::State>) -> ssr_core::Result<()> {
        self.algo.validate_config(&config)?;
        self.config = config;
        // The enabled set may have changed arbitrarily; restart the current
        // round from the new configuration.
        self.round_pending = self.enabled().iter().map(|e| e.process).collect();
        Ok(())
    }

    /// The enabled set in the current configuration, with rule tags.
    pub fn enabled(&self) -> Vec<EnabledProcess> {
        (0..self.algo.n())
            .filter_map(|i| {
                self.algo
                    .enabled_rule_in(&self.config, i)
                    .map(|r| EnabledProcess { process: i, rule_tag: self.algo.rule_tag(r) })
            })
            .collect()
    }

    /// Execute one scheduler step under `daemon`. Returns the record of the
    /// step, or `None` if no process is enabled (deadlock — never happens
    /// for SSRmin by Lemma 4, but baselines and broken configurations are
    /// first-class citizens here).
    pub fn step<D: Daemon + ?Sized>(&mut self, daemon: &mut D) -> Option<StepRecord> {
        let enabled = self.enabled();
        if enabled.is_empty() {
            return None;
        }
        let mut picked = daemon.select(&enabled, self.steps);
        // Defensive sanitation: drop non-enabled picks and duplicates, fall
        // back to the first enabled process if nothing valid remains.
        picked.retain(|p| enabled.iter().any(|e| e.process == *p));
        picked.sort_unstable();
        picked.dedup();
        if picked.is_empty() {
            picked.push(enabled[0].process);
        }

        let movers: Vec<(usize, u8)> = picked
            .iter()
            .map(|&p| {
                let tag = enabled
                    .iter()
                    .find(|e| e.process == p)
                    .expect("picked is a subset of enabled")
                    .rule_tag;
                (p, tag)
            })
            .collect();

        self.config =
            self.algo.step_set(&self.config, &picked).expect("picked processes are enabled");
        self.steps += 1;
        self.moves += picked.len() as u64;

        // Round accounting: drop movers and now-disabled processes from the
        // pending set; when it drains, a round completed and the next one
        // starts from the processes enabled *now*.
        self.round_pending.retain(|p| {
            !picked.contains(p) && self.algo.enabled_rule_in(&self.config, *p).is_some()
        });
        if self.round_pending.is_empty() {
            self.rounds += 1;
            self.round_pending = self.enabled().iter().map(|e| e.process).collect();
        }

        Some(StepRecord { step: self.steps, movers })
    }

    /// Run up to `max_steps` steps or until deadlock; returns all records.
    pub fn run<D: Daemon + ?Sized>(&mut self, daemon: &mut D, max_steps: u64) -> Vec<StepRecord> {
        let mut records = Vec::new();
        for _ in 0..max_steps {
            match self.step(daemon) {
                Some(r) => records.push(r),
                None => break,
            }
        }
        records
    }

    /// Run until `stop(algo, config)` holds (checked *before* each step) or
    /// `max_steps` is exhausted. Returns the number of steps taken to reach
    /// the stop condition, or `None` on step exhaustion / deadlock.
    pub fn run_until<D, F>(&mut self, daemon: &mut D, max_steps: u64, stop: F) -> Option<u64>
    where
        D: Daemon + ?Sized,
        F: Fn(&A, &[A::State]) -> bool,
    {
        let start = self.steps;
        for _ in 0..max_steps {
            if stop(&self.algo, &self.config) {
                return Some(self.steps - start);
            }
            self.step(daemon)?;
        }
        if stop(&self.algo, &self.config) {
            Some(self.steps - start)
        } else {
            None
        }
    }

    /// Run like [`Engine::run`], recording a full [`Trace`] (initial
    /// configuration plus every step's movers and resulting configuration).
    pub fn run_traced<D: Daemon + ?Sized>(
        &mut self,
        daemon: &mut D,
        max_steps: u64,
    ) -> Trace<A::State> {
        let mut trace = Trace::starting_at(self.config.clone());
        for _ in 0..max_steps {
            match self.step(daemon) {
                Some(r) => trace.push(r, self.config.clone()),
                None => break,
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::{CentralFirst, Misbehaving, Synchronous};
    use ssr_core::{RingAlgorithm, RingParams, SsToken, SsrMin};

    fn ssr(n: usize, k: u32) -> SsrMin {
        SsrMin::new(RingParams::new(n, k).unwrap())
    }

    #[test]
    fn new_rejects_invalid_config() {
        let a = ssr(5, 7);
        assert!(Engine::new(a, vec![]).is_err());
    }

    #[test]
    fn step_advances_counters() {
        let a = ssr(5, 7);
        let mut e = Engine::new(a, a.legitimate_anchor(0)).unwrap();
        let r = e.step(&mut CentralFirst).unwrap();
        assert_eq!(r.step, 1);
        assert_eq!(r.movers, vec![(0, 1)]); // P0 fires Rule 1
        assert_eq!(e.steps(), 1);
        assert_eq!(e.moves(), 1);
    }

    #[test]
    fn run_until_detects_initial_satisfaction() {
        let a = ssr(5, 7);
        let mut e = Engine::new(a, a.legitimate_anchor(0)).unwrap();
        let steps = e.run_until(&mut CentralFirst, 10, |alg, c| alg.is_legitimate(c)).unwrap();
        assert_eq!(steps, 0);
    }

    #[test]
    fn engine_survives_misbehaving_daemon() {
        let a = ssr(5, 7);
        let mut e = Engine::new(a, a.legitimate_anchor(0)).unwrap();
        // Misbehaving returns garbage; engine falls back to a legal move and
        // the execution must still be a legal SSRmin execution.
        for _ in 0..50 {
            assert!(e.step(&mut Misbehaving).is_some());
            assert!(a.is_legitimate(e.config()), "closure violated");
        }
    }

    #[test]
    fn synchronous_daemon_on_legitimate_config_equals_central() {
        // In legitimate configurations exactly one process is enabled, so
        // synchronous and central daemons coincide (Lemma 1's observation).
        let a = ssr(5, 7);
        let mut e1 = Engine::new(a, a.legitimate_anchor(2)).unwrap();
        let mut e2 = Engine::new(a, a.legitimate_anchor(2)).unwrap();
        for _ in 0..45 {
            e1.step(&mut Synchronous);
            e2.step(&mut CentralFirst);
            assert_eq!(e1.config(), e2.config());
        }
    }

    #[test]
    fn deadlocked_baseline_returns_none() {
        // Dijkstra's ring never deadlocks either; use a fabricated
        // all-disabled situation via a 1-token ring that is actually
        // impossible — instead check None is returned when max_steps is 0.
        let p = RingParams::new(3, 4).unwrap();
        let d = SsToken::new(p);
        let mut e = Engine::new(d, d.uniform_config(0)).unwrap();
        assert!(e.run(&mut CentralFirst, 0).is_empty());
    }

    #[test]
    fn set_config_validates() {
        let a = ssr(5, 7);
        let mut e = Engine::new(a, a.legitimate_anchor(0)).unwrap();
        assert!(e.set_config(vec![]).is_err());
        let mut corrupted = a.legitimate_anchor(0);
        corrupted[3] = "2.1.1".parse().unwrap();
        assert!(e.set_config(corrupted).is_ok());
        assert!(!a.is_legitimate(e.config()));
    }

    #[test]
    fn rounds_count_one_per_step_in_legitimate_configs() {
        // Exactly one process is enabled at a time in legitimate configs, so
        // every step completes a round.
        let a = ssr(5, 7);
        let mut e = Engine::new(a, a.legitimate_anchor(0)).unwrap();
        for expected in 1..=10u64 {
            e.step(&mut CentralFirst).unwrap();
            assert_eq!(e.rounds(), expected);
        }
    }

    #[test]
    fn rounds_equal_steps_under_synchronous_daemon() {
        let a = ssr(6, 8);
        let initial = crate::random_config::random_ssr_config(a.params(), 5);
        let mut e = Engine::new(a, initial).unwrap();
        for _ in 0..20 {
            e.step(&mut Synchronous).unwrap();
        }
        assert_eq!(e.rounds(), e.steps());
    }

    #[test]
    fn rounds_lag_steps_under_central_daemon_when_many_enabled() {
        let a = ssr(6, 8);
        // A chaotic configuration typically enables several processes; a
        // central daemon then needs multiple steps per round.
        let initial = crate::random_config::adversarial_ssr_config(a.params());
        let mut e = Engine::new(a, initial).unwrap();
        if e.enabled().len() > 1 {
            e.step(&mut CentralFirst).unwrap();
            assert_eq!(e.rounds(), 0, "round must not complete after one of several moves");
        }
        for _ in 0..200 {
            e.step(&mut CentralFirst);
        }
        assert!(e.rounds() >= 1);
        assert!(e.rounds() <= e.steps());
    }

    #[test]
    fn run_traced_records_every_configuration() {
        let a = ssr(5, 7);
        let mut e = Engine::new(a, a.legitimate_anchor(0)).unwrap();
        let t = e.run_traced(&mut CentralFirst, 6);
        assert_eq!(t.len(), 6);
        assert_eq!(t.final_config(), e.config());
        // Each recorded config differs from its predecessor in exactly the
        // mover's position.
        for w in 0..t.len() {
            let before = t.config_at(w);
            let after = t.config_at(w + 1);
            let diffs: Vec<usize> = (0..5).filter(|&i| before[i] != after[i]).collect();
            let movers: Vec<usize> = t.records()[w].movers.iter().map(|m| m.0).collect();
            for d in &diffs {
                assert!(movers.contains(d));
            }
        }
    }
}
