//! Engine conformance: the execution engine must implement exactly the
//! composite-atomicity semantics of `RingAlgorithm::step_set`, regardless of
//! daemon behaviour, and its bookkeeping (steps / moves / rounds / traces)
//! must be internally consistent.

use proptest::prelude::*;

use ssr_core::{RingAlgorithm, RingParams, SsrMin, SsrState};
use ssr_daemon::daemons::{Daemon, EnabledProcess};
use ssr_daemon::{random_config, Engine};

/// A daemon replaying a proptest-chosen subset word per step.
struct Scripted {
    words: Vec<u64>,
    pos: usize,
}

impl Daemon for Scripted {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        let w = self.words.get(self.pos).copied().unwrap_or(1);
        self.pos += 1;
        let mut picked: Vec<usize> = enabled
            .iter()
            .enumerate()
            .filter(|(j, _)| w & (1 << (j % 64)) != 0)
            .map(|(_, e)| e.process)
            .collect();
        if picked.is_empty() {
            picked.push(enabled[w as usize % enabled.len()].process);
        }
        picked
    }
}

fn arb_setup() -> impl Strategy<Value = (RingParams, Vec<SsrState>, Vec<u64>)> {
    (3usize..8)
        .prop_flat_map(|n| {
            let params = RingParams::minimal(n).unwrap();
            (Just(params), 0u64..1000, proptest::collection::vec(any::<u64>(), 1..80))
        })
        .prop_map(|(params, seed, words)| {
            (params, random_config::random_ssr_config(params, seed), words)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine's trajectory equals a hand-rolled replay applying
    /// `step_set` with the daemon's (sanitized) choices.
    #[test]
    fn engine_matches_manual_step_set((params, initial, words) in arb_setup()) {
        let algo = SsrMin::new(params);
        let steps = words.len() as u64;

        let mut engine = Engine::new(algo, initial.clone()).unwrap();
        let mut engine_daemon = Scripted { words: words.clone(), pos: 0 };
        let records = engine.run(&mut engine_daemon, steps);

        // Manual replay with an identical daemon instance.
        let mut manual = initial;
        let mut manual_daemon = Scripted { words, pos: 0 };
        for (step_no, record) in records.iter().enumerate() {
            let enabled: Vec<EnabledProcess> = (0..algo.n())
                .filter_map(|i| {
                    algo.enabled_rule_in(&manual, i).map(|r| EnabledProcess {
                        process: i,
                        rule_tag: algo.rule_tag(r),
                    })
                })
                .collect();
            let mut picked = manual_daemon.select(&enabled, step_no as u64);
            picked.retain(|p| enabled.iter().any(|e| e.process == *p));
            picked.sort_unstable();
            picked.dedup();
            if picked.is_empty() {
                picked.push(enabled[0].process);
            }
            let recorded: Vec<usize> = record.movers.iter().map(|m| m.0).collect();
            prop_assert_eq!(&picked, &recorded, "mover sets diverged at step {}", step_no);
            manual = algo.step_set(&manual, &picked).unwrap();
        }
        prop_assert_eq!(manual.as_slice(), engine.config());
    }

    /// Bookkeeping invariants: moves ≥ steps ≥ rounds, and the trace
    /// configurations chain correctly.
    #[test]
    fn bookkeeping_invariants((params, initial, words) in arb_setup()) {
        let algo = SsrMin::new(params);
        let steps = words.len() as u64;
        let mut engine = Engine::new(algo, initial).unwrap();
        let mut daemon = Scripted { words, pos: 0 };
        let trace = engine.run_traced(&mut daemon, steps);

        prop_assert_eq!(engine.steps(), steps);
        prop_assert!(engine.moves() >= engine.steps());
        prop_assert!(engine.rounds() <= engine.steps());
        prop_assert_eq!(trace.len() as u64, steps);
        prop_assert_eq!(trace.final_config(), engine.config());

        // Each consecutive pair differs only at recorded movers.
        for t in 0..trace.len() {
            let before = trace.config_at(t);
            let after = trace.config_at(t + 1);
            let movers: Vec<usize> = trace.records()[t].movers.iter().map(|m| m.0).collect();
            for i in 0..params.n() {
                if !movers.contains(&i) {
                    prop_assert_eq!(before[i], after[i], "non-mover {} changed", i);
                }
            }
        }
    }

    /// Deterministic daemons make the engine a pure function of the initial
    /// configuration.
    #[test]
    fn engine_is_deterministic((params, initial, words) in arb_setup()) {
        let algo = SsrMin::new(params);
        let steps = words.len() as u64;
        let run = |words: Vec<u64>| {
            let mut engine = Engine::new(algo, initial.clone()).unwrap();
            let mut daemon = Scripted { words, pos: 0 };
            engine.run(&mut daemon, steps);
            engine.config().to_vec()
        };
        prop_assert_eq!(run(words.clone()), run(words));
    }
}
