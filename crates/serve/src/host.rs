//! The multi-tenant host: a registry of [`HostedRing`]s, one background
//! auditor thread, and the [`ControlPlane`] that exposes it all over the
//! existing `ssr-ctl` HTTP listener.
//!
//! One host owns many tenants. Each tenant is an independent SSRmin ring
//! (own nodes, seed, chaos profile) sharing nothing but the machine and the
//! control listener; frames carry the tenant id on the wire, so even a
//! misdelivered datagram cannot cross rings (the transport counts and drops
//! it). The auditor thread continuously replays every tenant's privilege
//! trace against its [`CsSpec`] — violations become the
//! `ssr_cs_violations_total{tenant=...}` counter — and expires/revokes
//! leases against the ring's current token holder.
//!
//! HTTP surface (everything tenant-scoped accepts the numeric id or the
//! tenant name):
//!
//! ```text
//! GET    /tenants                  registry listing (JSON)
//! POST   /tenants                  create (body: TenantSpec key=value grammar)
//! GET    /tenants/{id}             one tenant's detail (JSON)
//! DELETE /tenants/{id}             stop and remove the tenant
//! POST   /tenants/{id}/acquire     lease the token (body: client name; 409 when held)
//! POST   /tenants/{id}/release     release a lease (body: lease id)
//! POST   /tenants/{id}/chaos       per-tenant chaos grammar (loss 0.2, partition 0 1, ...)
//! POST   /tenants/{id}/faults      per-tenant fault grammar (crash 2, restart 2, ...)
//! POST   /tenants/{id}/nodes       splice one node in at the ring tail
//! DELETE /tenants/{id}/nodes/{idx} splice node `idx` (slot id) out of the ring
//! POST   /tenants/{id}/k           renegotiate K upward (body: new k, or "k=N grow=M"
//!                                  to batch M tail adds under the same park window)
//! GET    /status · /top · /metrics aggregate views with per-tenant labels
//! ```
//!
//! Membership changes re-splice the tenant's ring while it runs (see
//! [`HostedRing::add_node`] / [`HostedRing::remove_node`]); the live size and
//! splice count surface as the `ssr_ring_size` gauge and `ssr_resplice_total`
//! counter. The CS auditor is rebuilt across each splice — the (l,k) bound is
//! a statement about the *current* membership — with the pre-splice audit
//! totals folded into the tenant's cumulative counters.
//!
//! Every membership operation (splice in/out, K renegotiation) parks the
//! tenant's lease authority for its duration: a held lease survives the
//! re-splice with its TTL clock stopped (re-validated at unpark instead of
//! silently expiring mid-splice), and `POST .../acquire` answers 503 with a
//! retry-after hint instead of blocking on the ring mutex. Both surface as
//! `ssr_lease_parked_total{tenant=...}`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use ssr_ctl::http::Request;
use ssr_ctl::plane::parse_chaos_cmd;
use ssr_ctl::{ChaosCmd, ControlPlane, Family, Json, MetricKind, NodeStatus, RingStatus, Sample};
use ssr_mpnet::FaultKind;
use ssr_net::metrics::NodeMetrics;
use ssr_net::{convergence_envelope, TraceAuditor, TraceCsAudit};

use crate::lease::{Acquire, LeaseManager};
use crate::ring::HostedRing;
use crate::tenant::TenantSpec;

/// Auditor cadence: how often tenant traces are folded and leases refreshed.
const AUDIT_TICK: Duration = Duration::from_millis(20);

/// Events younger than this stay queued: node threads append to the
/// activity log concurrently, so very recent timestamps may still arrive
/// out of order. The window must exceed worst-case scheduling skew between
/// threads — a node thread descheduled for longer than this on a heavily
/// oversubscribed machine records its transition after the audit horizon
/// has passed it, which would reconstruct as a phantom CS episode.
const AUDIT_SETTLE: Duration = Duration::from_millis(500);

/// The auditor for one membership epoch plus the folded totals of every
/// epoch before it. A re-splice changes what the (l,k) bound quantifies
/// over, so the auditor is rebuilt per epoch and its totals accumulate here.
struct AuditState {
    auditor: TraceAuditor,
    /// Totals folded from completed membership epochs.
    base: TraceCsAudit,
    /// The ring's re-splice count when `auditor` was (re)built.
    resplices_seen: u64,
}

impl AuditState {
    /// Merge two audit totals; an empty (never-audited) side is an identity
    /// so its normalized-to-zero `min_active` cannot pollute the other.
    fn merge(a: TraceCsAudit, b: TraceCsAudit) -> TraceCsAudit {
        if a.audited.is_zero() {
            return b;
        }
        if b.audited.is_zero() {
            return a;
        }
        TraceCsAudit {
            audited: a.audited + b.audited,
            violated: a.violated + b.violated,
            violations: a.violations + b.violations,
            min_active: a.min_active.min(b.min_active),
            max_active: a.max_active.max(b.max_active),
            intervals: a.intervals + b.intervals,
        }
    }

    fn combined(&self) -> TraceCsAudit {
        Self::merge(self.base, self.auditor.audit())
    }

    /// Fold the current epoch into the base totals and start a fresh one.
    fn rebuild(&mut self, auditor: TraceAuditor, resplices: u64) {
        self.base = Self::merge(self.base, self.auditor.audit());
        self.auditor = auditor;
        self.resplices_seen = resplices;
    }
}

/// One registered tenant.
pub struct TenantEntry {
    /// Registry id (also the wire-level tenant id; 0 is reserved for
    /// single-tenant v1 traffic).
    pub id: u16,
    /// The spec it was created from.
    pub spec: TenantSpec,
    /// The running ring.
    pub ring: Mutex<HostedRing>,
    /// The tenant's lease authority.
    pub lease: LeaseManager,
    audit: Mutex<AuditState>,
}

impl TenantEntry {
    /// The latest CS-audit snapshot for this tenant, cumulative across
    /// membership epochs.
    pub fn audit(&self) -> TraceCsAudit {
        self.audit.lock().combined()
    }
}

/// The tenant registry plus its background auditor.
pub struct ServeHost {
    started: Instant,
    tenants: Mutex<BTreeMap<u16, Arc<TenantEntry>>>,
    next_id: Mutex<u16>,
    stop: Arc<AtomicBool>,
    auditor: Mutex<Option<JoinHandle<()>>>,
}

impl ServeHost {
    /// An empty host with its auditor thread running.
    pub fn spawn() -> Arc<ServeHost> {
        let host = Arc::new(ServeHost {
            started: Instant::now(),
            tenants: Mutex::new(BTreeMap::new()),
            next_id: Mutex::new(1),
            stop: Arc::new(AtomicBool::new(false)),
            auditor: Mutex::new(None),
        });
        let weak = Arc::downgrade(&host);
        let stop = Arc::clone(&host.stop);
        let handle = std::thread::Builder::new()
            .name("ssr-serve-audit".to_string())
            .spawn(move || audit_loop(weak, stop))
            .expect("spawn serve auditor");
        *host.auditor.lock() = Some(handle);
        host
    }

    /// Milliseconds since the host started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Create a tenant from `spec`; returns its registry id.
    pub fn create(&self, spec: TenantSpec) -> Result<u16, String> {
        spec.validate()?;
        // Reserve the id under the registry lock so concurrent creates
        // cannot collide, but spawn the ring outside it: binding 2n sockets
        // must not stall every scrape.
        let id = {
            let tenants = self.tenants.lock();
            if tenants.values().any(|t| t.spec.name == spec.name) {
                return Err(format!("tenant name '{}' already exists", spec.name));
            }
            let mut next = self.next_id.lock();
            let id = *next;
            if id == u16::MAX {
                return Err("tenant id space exhausted".to_string());
            }
            *next += 1;
            id
        };
        let ring = HostedRing::spawn(id, spec.clone()).map_err(|e| e.to_string())?;
        // Audit from the stabilization envelope onwards: a fresh tenant
        // starts legitimate, but restarts/chaos during bring-up of *other*
        // tenants on a loaded machine deserve the same slack the soak
        // harness grants.
        let from = convergence_envelope(spec.nodes, spec.tick).max(Duration::from_millis(400));
        let audit = AuditState {
            auditor: TraceAuditor::new(spec.cs_spec(), ring.initial_active(), from),
            base: TraceCsAudit::default(),
            resplices_seen: 0,
        };
        let lease = LeaseManager::new(ring.started(), spec.lease_ttl);
        let entry = Arc::new(TenantEntry {
            id,
            spec,
            ring: Mutex::new(ring),
            lease,
            audit: Mutex::new(audit),
        });
        let mut tenants = self.tenants.lock();
        if tenants.values().any(|t| t.spec.name == entry.spec.name) {
            // Lost a create race on the name while binding sockets.
            entry.ring.lock().stop();
            return Err(format!("tenant name '{}' already exists", entry.spec.name));
        }
        tenants.insert(id, entry);
        Ok(id)
    }

    /// Stop and remove a tenant.
    pub fn delete(&self, key: &str) -> Result<u16, String> {
        let entry = self.lookup(key)?;
        self.tenants.lock().remove(&entry.id);
        entry.ring.lock().stop();
        Ok(entry.id)
    }

    /// Find a tenant by decimal id or by name.
    pub fn lookup(&self, key: &str) -> Result<Arc<TenantEntry>, String> {
        let tenants = self.tenants.lock();
        if let Ok(id) = key.parse::<u16>() {
            if let Some(entry) = tenants.get(&id) {
                return Ok(Arc::clone(entry));
            }
        }
        tenants
            .values()
            .find(|t| t.spec.name == key)
            .map(Arc::clone)
            .ok_or_else(|| format!("no tenant '{key}'"))
    }

    /// All tenants, id order.
    pub fn list(&self) -> Vec<Arc<TenantEntry>> {
        self.tenants.lock().values().map(Arc::clone).collect()
    }

    /// Fold every tenant's pending activity into its auditor and refresh
    /// its leases. The auditor thread calls this continuously; tests call
    /// it directly for determinism.
    pub fn audit_tick(&self) {
        for entry in self.list() {
            let (events, horizon, holder, rebuild) = {
                let ring = entry.ring.lock();
                let horizon = ring.age().saturating_sub(AUDIT_SETTLE);
                // A re-splice changes what the (l,k) bound quantifies over:
                // rebuild the auditor for the new membership, auditing again
                // once the post-splice stabilization envelope has passed.
                let resplices = ring.resplices();
                let rebuild = (resplices != entry.audit.lock().resplices_seen).then(|| {
                    let slots = ring.slot_count();
                    let active: Vec<bool> = (0..slots)
                        .map(|i| {
                            ring.node_up(i)
                                && NodeMetrics::get(&ring.metrics().node(i).privileged) == 1
                        })
                        .collect();
                    let cs = entry.spec.cs_spec();
                    let spec = ssr_core::CsSpec::new(cs.l, cs.k, slots);
                    let from = ring.age()
                        + convergence_envelope(ring.n(), entry.spec.tick)
                            .max(Duration::from_millis(400));
                    (TraceAuditor::new(spec, &active, from), resplices)
                });
                (ring.drain_activity(horizon), horizon, ring.primary_holder(), rebuild)
            };
            {
                let mut audit = entry.audit.lock();
                if let Some((auditor, resplices)) = rebuild {
                    audit.rebuild(auditor, resplices);
                }
                for event in events {
                    audit.auditor.push(event);
                }
                audit.auditor.advance_to(horizon);
            }
            entry.lease.refresh(holder);
        }
    }

    /// Stop the auditor and every tenant ring (idempotent; also runs on
    /// drop).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.auditor.lock().take() {
            let _ = handle.join();
        }
        let entries: Vec<_> = {
            let mut tenants = self.tenants.lock();
            let entries = tenants.values().map(Arc::clone).collect();
            tenants.clear();
            entries
        };
        for entry in entries {
            entry.ring.lock().stop();
        }
    }
}

impl Drop for ServeHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn audit_loop(host: Weak<ServeHost>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        let Some(host) = host.upgrade() else { return };
        host.audit_tick();
        drop(host);
        std::thread::sleep(AUDIT_TICK);
    }
}

/// The [`ControlPlane`] face of a [`ServeHost`].
pub struct ServePlane {
    host: Arc<ServeHost>,
}

impl ServePlane {
    /// Wrap a host for serving.
    pub fn new(host: Arc<ServeHost>) -> ServePlane {
        ServePlane { host }
    }

    fn tenant_json(&self, entry: &TenantEntry) -> Json {
        let (privileged, holder, n, up, escalations, order, resplices, k, renegotiations) = {
            let ring = entry.ring.lock();
            (
                ring.privileged_count(),
                ring.primary_holder(),
                ring.n(),
                ring.ring_order().iter().filter(|&&i| ring.node_up(i)).count(),
                ring.watchdog_escalations(),
                ring.ring_order(),
                ring.resplices(),
                ring.k(),
                ring.k_renegotiations(),
            )
        };
        let (segments, walker_merges) = {
            let ring = entry.ring.lock();
            (ring.fallback_segments(), ring.walker_merges())
        };
        let audit = entry.audit();
        let lease = entry.lease.counters();
        let held = entry.lease.current();
        Json::obj(vec![
            ("id", Json::num(entry.id as f64)),
            ("name", Json::str(&entry.spec.name)),
            ("n", Json::num(n as f64)),
            ("k", Json::num(k as f64)),
            ("k_renegotiations", Json::num(renegotiations as f64)),
            ("nodes_up", Json::num(up as f64)),
            ("ring", Json::Arr(order.iter().map(|&s| Json::num(s as f64)).collect())),
            ("resplices", Json::num(resplices as f64)),
            ("privileged", Json::num(privileged as f64)),
            ("token_count_ok", Json::Bool(entry.spec.cs_spec().satisfied_by(privileged))),
            ("holder", holder.map(|h| Json::num(h as f64)).unwrap_or(Json::Null)),
            ("watchdog_escalations", Json::num(escalations as f64)),
            ("fallback_segments", Json::num(segments as f64)),
            ("walker_merges", Json::num(walker_merges as f64)),
            ("spec", Json::str(entry.spec.render())),
            (
                "audit",
                Json::obj(vec![
                    ("audited_us", Json::num(audit.audited.as_micros() as f64)),
                    ("violated_us", Json::num(audit.violated.as_micros() as f64)),
                    ("violations", Json::num(audit.violations as f64)),
                    ("min_active", Json::num(audit.min_active as f64)),
                    ("max_active", Json::num(audit.max_active as f64)),
                ]),
            ),
            (
                "lease",
                Json::obj(vec![
                    ("held", Json::Bool(held.is_some())),
                    ("holder_node", held.map(|l| Json::num(l.node as f64)).unwrap_or(Json::Null)),
                    ("ttl_ms", Json::num(entry.spec.lease_ttl.as_millis() as f64)),
                    ("grants", Json::num(lease.grants as f64)),
                    ("releases", Json::num(lease.releases as f64)),
                    ("expirations", Json::num(lease.expirations as f64)),
                    ("revocations", Json::num(lease.revocations as f64)),
                    ("conflicts", Json::num(lease.conflicts as f64)),
                    ("unavailable", Json::num(lease.unavailable as f64)),
                    ("parked", Json::num(lease.parked as f64)),
                    ("park_saves", Json::num(lease.park_saves as f64)),
                    ("parked_now", Json::Bool(entry.lease.is_parked())),
                ]),
            ),
        ])
    }

    fn registry_json(&self) -> Json {
        let tenants = self.host.list().iter().map(|t| self.tenant_json(t)).collect();
        Json::obj(vec![
            ("uptime_ms", Json::num(self.host.uptime_ms() as f64)),
            ("tenants", Json::Arr(tenants)),
        ])
    }

    /// The retry-after hint handed to parked clients: twice the post-splice
    /// stabilization envelope of the grown ring, the same slack the auditor
    /// grants a fresh membership epoch before holding it to the (l,k) bound.
    fn park_hint(&self, entry: &TenantEntry) -> Duration {
        let n = entry.ring.lock().n();
        convergence_envelope(n + 1, entry.spec.tick).max(Duration::from_millis(50)) * 2
    }

    /// Run one membership operation with the tenant's lease authority
    /// parked: a held lease's TTL clock stops for the duration and is
    /// re-validated against the post-splice token holder at unpark.
    fn with_parked_lease<T>(&self, entry: &TenantEntry, op: impl FnOnce() -> T) -> T {
        entry.lease.park(self.park_hint(entry));
        let out = op();
        let holder = entry.ring.lock().primary_holder();
        entry.lease.unpark(holder);
        out
    }

    fn acquire(&self, entry: &TenantEntry, body: &str) -> (u16, &'static str, String) {
        let client = body.trim();
        let client = if client.is_empty() { "anon" } else { client };
        // A mid-splice ring holds its mutex for the whole re-splice: check
        // the park flag before touching the ring so clients get the 503 +
        // retry-after immediately instead of blocking behind the splice.
        let outcome = if entry.lease.is_parked() {
            entry.lease.acquire(client, None)
        } else {
            let holder = entry.ring.lock().primary_holder();
            entry.lease.acquire(client, holder)
        };
        match outcome {
            Acquire::Granted(lease) => {
                let doc = Json::obj(vec![
                    ("lease", Json::num(lease.id as f64)),
                    ("node", Json::num(lease.node as f64)),
                    ("ttl_ms", Json::num(entry.spec.lease_ttl.as_millis() as f64)),
                ]);
                (200, "application/json", doc.render())
            }
            Acquire::Held { retry_in } => {
                let doc = Json::obj(vec![
                    ("error", Json::str("lease held")),
                    ("retry_in_ms", Json::num(retry_in.as_millis() as f64)),
                ]);
                (409, "application/json", doc.render())
            }
            Acquire::NoHolder => {
                let doc = Json::obj(vec![("error", Json::str("no token holder"))]);
                (409, "application/json", doc.render())
            }
            Acquire::Parked { retry_in } => {
                let doc = Json::obj(vec![
                    ("error", Json::str("ring mid-splice; lease authority parked")),
                    ("retry_in_ms", Json::num(retry_in.as_millis() as f64)),
                ]);
                (503, "application/json", doc.render())
            }
        }
    }

    fn release(&self, entry: &TenantEntry, body: &str) -> (u16, &'static str, String) {
        let Ok(id) = body.trim().parse::<u64>() else {
            return (400, "text/plain", format!("release body must be a lease id, got '{body}'"));
        };
        let holder = entry.ring.lock().primary_holder();
        match entry.lease.release(id, holder) {
            Ok(()) => (200, "text/plain", format!("lease {id} released\n")),
            Err(e) => (409, "text/plain", e),
        }
    }

    fn render_host_top(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let tenants = self.host.list();
        let _ = writeln!(
            out,
            "ssr-serve  uptime={:.1}s  tenants={}",
            self.host.uptime_ms() as f64 / 1000.0,
            tenants.len(),
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:>4} {:12} {:>3} {:>3} {:>4} {:>9} {:>6} {:>7} {:>9} {:>9} {:>5}",
            "id",
            "name",
            "n",
            "up",
            "priv",
            "violat",
            "lease",
            "grants",
            "conflicts",
            "expired",
            "wdog"
        );
        for t in tenants {
            let (n, up, privileged, escalations) = {
                let ring = t.ring.lock();
                (
                    ring.n(),
                    ring.ring_order().iter().filter(|&&i| ring.node_up(i)).count(),
                    ring.privileged_count(),
                    ring.watchdog_escalations(),
                )
            };
            let audit = t.audit();
            let lease = t.lease.counters();
            let _ = writeln!(
                out,
                "{:>4} {:12} {:>3} {:>3} {:>4} {:>9} {:>6} {:>7} {:>9} {:>9} {:>5}",
                t.id,
                t.spec.name,
                n,
                up,
                privileged,
                audit.violations,
                if t.lease.current().is_some() { "held" } else { "-" },
                lease.grants,
                lease.conflicts,
                lease.expirations,
                escalations,
            );
        }
        out
    }
}

/// The serve index: what a human curl gets at `/`.
const SERVE_INDEX: &str = "ssr-serve control endpoints:\n\
  GET    /status                  aggregate + per-tenant JSON\n\
  GET    /top                     per-tenant dashboard (text)\n\
  GET    /metrics                 Prometheus metrics, per-tenant labels\n\
  GET    /tenants                 registry listing (JSON)\n\
  POST   /tenants                 create tenant (body: name=a nodes=5 ...)\n\
  GET    /tenants/{id}            tenant detail (id or name)\n\
  DELETE /tenants/{id}            stop and remove tenant\n\
  POST   /tenants/{id}/acquire    lease the token (body: client name)\n\
  POST   /tenants/{id}/release    release a lease (body: lease id)\n\
  POST   /tenants/{id}/chaos      chaos grammar (loss 0.2 | partition 0 1 | ...)\n\
  POST   /tenants/{id}/faults     fault grammar (crash 2 | restart 2 | ...)\n\
  POST   /tenants/{id}/nodes      splice one node in at the ring tail\n\
  DELETE /tenants/{id}/nodes/{idx} splice node {idx} (slot id) out\n\
  POST   /tenants/{id}/k          renegotiate K upward (body: new k, or k=N grow=M)\n";

/// Parse the `/k` request body: either a bare integer (`8`) or the batched
/// `k=8 grow=2` form that renegotiates and then splices `grow` members in
/// at the tail, all under one lease park window.
fn parse_k_request(body: &str) -> Result<(u32, usize), String> {
    let body = body.trim();
    if let Ok(k) = body.parse::<u32>() {
        return Ok((k, 0));
    }
    let mut k = None;
    let mut grow = 0usize;
    for token in body.split_whitespace() {
        match token.split_once('=') {
            Some(("k", v)) => {
                k = Some(v.parse::<u32>().map_err(|_| format!("bad k value '{v}'"))?);
            }
            Some(("grow", v)) => {
                grow = v.parse::<usize>().map_err(|_| format!("bad grow value '{v}'"))?;
            }
            _ => {
                return Err(format!(
                    "k body must be an integer or 'k=N grow=M' tokens, got '{token}'"
                ))
            }
        }
    }
    let k = k.ok_or_else(|| format!("k body must name k, got '{body}'"))?;
    Ok((k, grow))
}

impl ControlPlane for ServePlane {
    fn status(&self) -> RingStatus {
        // Aggregate shape for compatibility with generic ctl clients: n is
        // the total node count, per-node rows concatenate tenants in id
        // order. The JSON served at /status (see handle) is richer.
        let tenants = self.host.list();
        let mut nodes = Vec::new();
        let mut privileged = 0;
        let mut ok = true;
        let mut escalations = 0;
        for t in &tenants {
            let ring = t.ring.lock();
            let p = ring.privileged_count();
            privileged += p;
            ok &= t.spec.cs_spec().satisfied_by(p);
            escalations += ring.watchdog_escalations();
            for i in ring.ring_order() {
                let m = ring.metrics().node(i);
                nodes.push(NodeStatus {
                    node: i,
                    up: ring.node_up(i),
                    incarnation: u64::from(ring.incarnation(i)),
                    privileged: NodeMetrics::get(&m.privileged) == 1,
                    primary: NodeMetrics::get(&m.token_primary) == 1,
                    secondary: NodeMetrics::get(&m.token_secondary) == 1,
                    state: None,
                    coherent: None,
                    generation: NodeMetrics::get(&m.generation),
                    sends: NodeMetrics::get(&m.sends),
                    receives: NodeMetrics::get(&m.receives),
                    rule_firings: NodeMetrics::get(&m.rule_firings),
                    activations: NodeMetrics::get(&m.activations),
                });
            }
        }
        RingStatus {
            n: nodes.len(),
            uptime_ms: self.host.uptime_ms(),
            phase: format!("serving {} tenants", tenants.len()),
            privileged,
            token_count_ok: ok,
            faults_applied: 0,
            restarts: 0,
            panics: 0,
            recovered: 0,
            unrecovered: 0,
            last_recovery_ms: None,
            p50_recovery_ms: None,
            p99_recovery_ms: None,
            max_recovery_ms: None,
            watchdog_escalations: escalations,
            envelope_ms: 0,
            envelope_ok: true,
            nodes,
            links: Vec::new(),
        }
    }

    fn metrics(&self) -> Vec<Family> {
        let tenants = self.host.list();
        let mut up = Vec::new();
        let mut ring_size = Vec::new();
        let mut resplices = Vec::new();
        let mut priv_samples = Vec::new();
        let mut violations = Vec::new();
        let mut violated_us = Vec::new();
        let mut audited_us = Vec::new();
        let mut grants = Vec::new();
        let mut releases = Vec::new();
        let mut expirations = Vec::new();
        let mut revocations = Vec::new();
        let mut conflicts = Vec::new();
        let mut parked = Vec::new();
        let mut park_saves = Vec::new();
        let mut segments = Vec::new();
        let mut walker_merges = Vec::new();
        let mut renegotiations = Vec::new();
        let mut held = Vec::new();
        let mut sends = Vec::new();
        let mut receives = Vec::new();
        let mut firings = Vec::new();
        let mut activations = Vec::new();
        let mut tenant_drops = Vec::new();
        let mut node_priv = Vec::new();
        for t in &tenants {
            let label = |extra: Option<(&str, String)>| {
                let mut labels = vec![("tenant".to_string(), t.spec.name.clone())];
                if let Some((k, v)) = extra {
                    labels.push((k.to_string(), v));
                }
                labels
            };
            let one = |value: f64| Sample { labels: label(None), value };
            let ring = t.ring.lock();
            up.push(one(ring.ring_order().iter().filter(|&&i| ring.node_up(i)).count() as f64));
            ring_size.push(one(ring.n() as f64));
            resplices.push(one(ring.resplices() as f64));
            priv_samples.push(one(ring.privileged_count() as f64));
            let audit = t.audit();
            violations.push(one(audit.violations as f64));
            violated_us.push(one(audit.violated.as_micros() as f64));
            audited_us.push(one(audit.audited.as_micros() as f64));
            let lease = t.lease.counters();
            grants.push(one(lease.grants as f64));
            releases.push(one(lease.releases as f64));
            expirations.push(one(lease.expirations as f64));
            revocations.push(one(lease.revocations as f64));
            conflicts.push(one(lease.conflicts as f64));
            parked.push(one(lease.parked as f64));
            park_saves.push(one(lease.park_saves as f64));
            segments.push(one(ring.fallback_segments() as f64));
            walker_merges.push(one(ring.walker_merges() as f64));
            renegotiations.push(one(ring.k_renegotiations() as f64));
            held.push(one(if t.lease.current().is_some() { 1.0 } else { 0.0 }));
            // Per-node counters cover every slot ever created: a spliced-out
            // member's totals stay visible (Prometheus counters never vanish).
            for i in 0..ring.slot_count() {
                let m = ring.metrics().node(i);
                let labels = label(Some(("node", i.to_string())));
                let sample = |value: f64| Sample { labels: labels.clone(), value };
                sends.push(sample(NodeMetrics::get(&m.sends) as f64));
                receives.push(sample(NodeMetrics::get(&m.receives) as f64));
                firings.push(sample(NodeMetrics::get(&m.rule_firings) as f64));
                activations.push(sample(NodeMetrics::get(&m.activations) as f64));
                tenant_drops.push(sample(NodeMetrics::get(&m.tenant_drops) as f64));
                node_priv.push(sample(NodeMetrics::get(&m.privileged) as f64));
            }
        }
        vec![
            Family::new(
                "ssr_tenant_nodes_up",
                "Node threads currently up, per tenant",
                MetricKind::Gauge,
                up,
            ),
            Family::new(
                "ssr_ring_size",
                "Live ring size (members currently spliced in), per tenant",
                MetricKind::Gauge,
                ring_size,
            ),
            Family::new(
                "ssr_resplice_total",
                "Committed membership re-splices (adds + removes), per tenant",
                MetricKind::Counter,
                resplices,
            ),
            Family::new(
                "ssr_tenant_privileged",
                "Nodes currently evaluating themselves privileged, per tenant",
                MetricKind::Gauge,
                priv_samples,
            ),
            Family::new(
                "ssr_cs_violations_total",
                "Critical-section spec violation episodes found by the trace auditor",
                MetricKind::Counter,
                violations,
            ),
            Family::new(
                "ssr_cs_violated_us_total",
                "Audited microseconds spent violating the tenant's CS spec",
                MetricKind::Counter,
                violated_us,
            ),
            Family::new(
                "ssr_cs_audited_us_total",
                "Audited microseconds, per tenant",
                MetricKind::Counter,
                audited_us,
            ),
            Family::new(
                "ssr_lease_grants_total",
                "Leases granted, per tenant",
                MetricKind::Counter,
                grants,
            ),
            Family::new(
                "ssr_lease_releases_total",
                "Leases released by their client, per tenant",
                MetricKind::Counter,
                releases,
            ),
            Family::new(
                "ssr_lease_expirations_total",
                "Leases that hit their TTL, per tenant",
                MetricKind::Counter,
                expirations,
            ),
            Family::new(
                "ssr_lease_revocations_total",
                "Leases revoked by a token handover, per tenant",
                MetricKind::Counter,
                revocations,
            ),
            Family::new(
                "ssr_lease_conflicts_total",
                "Acquire attempts refused because a lease was held, per tenant",
                MetricKind::Counter,
                conflicts,
            ),
            Family::new(
                "ssr_lease_parked_total",
                "Lease park events: held leases carried across a re-splice with the \
                 TTL clock stopped, plus acquires refused 503 mid-splice, per tenant",
                MetricKind::Counter,
                parked,
            ),
            Family::new(
                "ssr_lease_park_saved_total",
                "Lease park windows saved by scheduling: membership operations that \
                 rode an already open park (batched k+grow) or skipped parking because \
                 their splice touched a different degraded segment than the lease \
                 holder's, per tenant",
                MetricKind::Counter,
                park_saves,
            ),
            Family::new(
                "ssr_fallback_segments",
                "Degraded-service segments: maximal live arcs the current holes cut \
                 the tenant ring into (1 while intact), per tenant",
                MetricKind::Gauge,
                segments,
            ),
            Family::new(
                "ssr_walker_merges_total",
                "Merge-on-heal events: liveness changes that re-joined two live arcs \
                 and retired the higher-anchor walker, per tenant",
                MetricKind::Counter,
                walker_merges,
            ),
            Family::new(
                "ssr_k_renegotiations_total",
                "Committed upward K renegotiations, per tenant",
                MetricKind::Counter,
                renegotiations,
            ),
            Family::new(
                "ssr_lease_held",
                "Whether a lease is currently held, per tenant",
                MetricKind::Gauge,
                held,
            ),
            Family::new(
                "ssr_node_sends_total",
                "Datagrams sent, per tenant and node",
                MetricKind::Counter,
                sends,
            ),
            Family::new(
                "ssr_node_receives_total",
                "Datagrams received, per tenant and node",
                MetricKind::Counter,
                receives,
            ),
            Family::new(
                "ssr_node_rule_firings_total",
                "Guarded-rule firings, per tenant and node",
                MetricKind::Counter,
                firings,
            ),
            Family::new(
                "ssr_node_activations_total",
                "Critical-section activations, per tenant and node",
                MetricKind::Counter,
                activations,
            ),
            Family::new(
                "ssr_node_tenant_drops_total",
                "Frames dropped for carrying the wrong tenant id, per tenant and node",
                MetricKind::Counter,
                tenant_drops,
            ),
            Family::new(
                "ssr_node_privileged",
                "Whether the node currently evaluates itself privileged",
                MetricKind::Gauge,
                node_priv,
            ),
        ]
    }

    fn chaos(&self, _cmd: ChaosCmd) -> Result<String, String> {
        Err("chaos is per-tenant here: POST /tenants/{id}/chaos".to_string())
    }

    fn inject(&self, _fault: FaultKind) -> Result<String, String> {
        Err("faults are per-tenant here: POST /tenants/{id}/faults".to_string())
    }

    fn handle(&self, request: &Request) -> Option<(u16, &'static str, String)> {
        let parts: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let method = request.method.as_str();
        match (method, parts.as_slice()) {
            ("GET", []) => Some((200, "text/plain", SERVE_INDEX.to_string())),
            ("GET", ["status"]) => Some((200, "application/json", self.registry_json().render())),
            ("GET", ["top"]) => Some((200, "text/plain", self.render_host_top())),
            ("GET", ["tenants"]) => Some((200, "application/json", self.registry_json().render())),
            ("POST", ["tenants"]) => Some(match TenantSpec::parse(&request.body_str()) {
                Ok(spec) => match self.host.create(spec) {
                    Ok(id) => {
                        let entry = self.host.lookup(&id.to_string()).expect("just created");
                        let doc = Json::obj(vec![
                            ("id", Json::num(id as f64)),
                            ("name", Json::str(&entry.spec.name)),
                        ]);
                        (200, "application/json", doc.render())
                    }
                    Err(e) => (409, "text/plain", e),
                },
                Err(e) => (400, "text/plain", e),
            }),
            ("GET", ["tenants", key]) => Some(match self.host.lookup(key) {
                Ok(entry) => (200, "application/json", self.tenant_json(&entry).render()),
                Err(e) => (404, "text/plain", e),
            }),
            ("DELETE", ["tenants", key]) => Some(match self.host.delete(key) {
                Ok(id) => (200, "text/plain", format!("tenant {id} deleted\n")),
                Err(e) => (404, "text/plain", e),
            }),
            ("POST", ["tenants", key, action]) => {
                let entry = match self.host.lookup(key) {
                    Ok(entry) => entry,
                    Err(e) => return Some((404, "text/plain", e)),
                };
                Some(match *action {
                    "nodes" => {
                        let added = self.with_parked_lease(&entry, || {
                            let mut ring = entry.ring.lock();
                            ring.add_node().map(|slot| (slot, ring.n(), ring.resplices()))
                        });
                        match added {
                            Ok((slot, n, resplices)) => {
                                let doc = Json::obj(vec![
                                    ("slot", Json::num(slot as f64)),
                                    ("n", Json::num(n as f64)),
                                    ("resplices", Json::num(resplices as f64)),
                                ]);
                                (200, "application/json", doc.render())
                            }
                            Err(e) => (422, "text/plain", e),
                        }
                    }
                    "acquire" => self.acquire(&entry, &request.body_str()),
                    "release" => self.release(&entry, &request.body_str()),
                    "k" => match parse_k_request(&request.body_str()) {
                        Ok((new_k, grow)) => {
                            // One park window covers the renegotiation AND
                            // any batched grows: each add that would have
                            // parked the lease on its own rides the open
                            // park instead, and is counted as saved.
                            let renegotiated = self.with_parked_lease(&entry, || {
                                let mut ring = entry.ring.lock();
                                let k = ring.renegotiate_k(new_k)?;
                                let mut grown = Vec::new();
                                for _ in 0..grow {
                                    match ring.add_node() {
                                        Ok(slot) => grown.push(slot),
                                        Err(e) => {
                                            return Err(format!(
                                                "renegotiated to k={k} but grow stopped \
                                                 after {} of {grow} adds: {e}",
                                                grown.len()
                                            ))
                                        }
                                    }
                                }
                                Ok((k, ring.k_renegotiations(), ring.n(), grown))
                            });
                            match renegotiated {
                                Ok((k, renegotiations, n, grown)) => {
                                    for _ in &grown {
                                        entry.lease.note_park_saved();
                                    }
                                    let doc = Json::obj(vec![
                                        ("k", Json::num(k as f64)),
                                        ("n", Json::num(n as f64)),
                                        ("renegotiations", Json::num(renegotiations as f64)),
                                        (
                                            "grown",
                                            Json::Arr(
                                                grown
                                                    .iter()
                                                    .map(|&s| Json::num(s as f64))
                                                    .collect(),
                                            ),
                                        ),
                                        ("park_windows_saved", Json::num(grown.len() as f64)),
                                    ]);
                                    (200, "application/json", doc.render())
                                }
                                Err(e) => (422, "text/plain", e),
                            }
                        }
                        Err(e) => (400, "text/plain", e),
                    },
                    "chaos" => match parse_chaos_cmd(&request.body_str()) {
                        Ok(cmd) => match entry.ring.lock().chaos(cmd) {
                            Ok(line) => (200, "text/plain", format!("{line}\n")),
                            Err(e) => (422, "text/plain", e),
                        },
                        Err(e) => (400, "text/plain", e),
                    },
                    "faults" => match request.body_str().trim().parse::<FaultKind>() {
                        Ok(fault) => match entry.ring.lock().inject(fault) {
                            Ok(line) => (200, "text/plain", format!("{line}\n")),
                            Err(e) => (422, "text/plain", e),
                        },
                        Err(e) => (400, "text/plain", e.to_string()),
                    },
                    other => (404, "text/plain", format!("no tenant action '{other}'")),
                })
            }
            ("DELETE", ["tenants", key, "nodes", idx]) => {
                let entry = match self.host.lookup(key) {
                    Ok(entry) => entry,
                    Err(e) => return Some((404, "text/plain", e)),
                };
                let Ok(slot) = idx.parse::<usize>() else {
                    return Some((
                        400,
                        "text/plain",
                        format!("node index must be a slot id, got '{idx}'"),
                    ));
                };
                // Segment-scoped parking: when holes have already cut the
                // ring into several degraded-service segments, a splice in
                // one segment cannot disturb the lease backed by a walker
                // in another — only park the lease when the splice touches
                // the holder's own segment (or the geometry is ambiguous).
                let splice_is_remote = {
                    let ring = entry.ring.lock();
                    ring.fallback_segments() > 1
                        && match (
                            ring.primary_holder().and_then(|h| ring.segment_of(h)),
                            ring.segment_of(slot),
                        ) {
                            (Some(holder_seg), Some(slot_seg)) => holder_seg != slot_seg,
                            _ => false,
                        }
                };
                let removed = if splice_is_remote {
                    entry.lease.note_park_saved();
                    entry.ring.lock().remove_node(slot)
                } else {
                    self.with_parked_lease(&entry, || entry.ring.lock().remove_node(slot))
                };
                Some(match removed {
                    Ok(line) => (200, "text/plain", format!("{line}\n")),
                    Err(e) => (422, "text/plain", e),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn small(name: &str) -> TenantSpec {
        TenantSpec { nodes: 3, ..TenantSpec::named(name) }
    }

    #[test]
    fn registry_creates_looks_up_and_deletes() {
        let host = ServeHost::spawn();
        let a = host.create(small("alpha")).unwrap();
        let b = host.create(small("beta")).unwrap();
        assert_ne!(a, b);
        assert!(host.create(small("alpha")).is_err(), "duplicate name");
        assert_eq!(host.lookup("alpha").unwrap().id, a);
        assert_eq!(host.lookup(&b.to_string()).unwrap().id, b);
        assert!(host.lookup("gamma").is_err());
        assert_eq!(host.list().len(), 2);
        host.delete("alpha").unwrap();
        assert!(host.lookup("alpha").is_err());
        assert_eq!(host.list().len(), 1);
        host.shutdown();
    }

    #[test]
    fn plane_routes_the_tenant_lifecycle() {
        let host = ServeHost::spawn();
        let plane = ServePlane::new(Arc::clone(&host));

        let (status, _, body) =
            plane.handle(&req("POST", "/tenants", "name=alpha nodes=3")).unwrap();
        assert_eq!(status, 200, "{body}");
        let id = Json::parse(&body).unwrap().get("id").unwrap().as_u64().unwrap();

        let (status, _, body) = plane.handle(&req("GET", "/tenants", "")).unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("tenants").unwrap().as_arr().unwrap().len(), 1);

        let (status, _, _) = plane.handle(&req("GET", "/tenants/alpha", "")).unwrap();
        assert_eq!(status, 200);
        let (status, _, _) = plane.handle(&req("GET", "/tenants/zzz", "")).unwrap();
        assert_eq!(status, 404);

        let (status, _, body) =
            plane.handle(&req("POST", "/tenants", "name=alpha nodes=3")).unwrap();
        assert_eq!(status, 409, "duplicate create must conflict: {body}");
        let (status, _, _) = plane.handle(&req("POST", "/tenants", "garbage")).unwrap();
        assert_eq!(status, 400);

        let (status, _, body) =
            plane.handle(&req("POST", &format!("/tenants/{id}/faults"), "crash 1")).unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, _, _) =
            plane.handle(&req("POST", &format!("/tenants/{id}/faults"), "crash 99")).unwrap();
        assert_eq!(status, 422);
        let (status, _, _) =
            plane.handle(&req("POST", &format!("/tenants/{id}/chaos"), "loss 0.5")).unwrap();
        assert_eq!(status, 422, "clean tenant has no chaos layer");

        let (status, _, _) = plane.handle(&req("DELETE", "/tenants/alpha", "")).unwrap();
        assert_eq!(status, 200);
        let (status, _, _) = plane.handle(&req("DELETE", "/tenants/alpha", "")).unwrap();
        assert_eq!(status, 404);

        assert!(plane.handle(&req("GET", "/metrics", "")).is_none(), "metrics fall through");
        host.shutdown();
    }

    #[test]
    fn lease_flow_over_the_plane() {
        let host = ServeHost::spawn();
        let plane = ServePlane::new(Arc::clone(&host));
        host.create(small("t")).unwrap();

        // Wait for the ring to surface a primary holder.
        let deadline = Instant::now() + Duration::from_secs(5);
        let lease_id = loop {
            let (status, _, body) =
                plane.handle(&req("POST", "/tenants/t/acquire", "alice")).unwrap();
            if status == 200 {
                break Json::parse(&body).unwrap().get("lease").unwrap().as_u64().unwrap();
            }
            assert!(Instant::now() < deadline, "never acquired: {status} {body}");
            std::thread::sleep(Duration::from_millis(10));
        };

        let (status, _, body) = plane.handle(&req("POST", "/tenants/t/acquire", "bob")).unwrap();
        assert_eq!(status, 409, "second client must conflict: {body}");

        let (status, _, _) =
            plane.handle(&req("POST", "/tenants/t/release", &lease_id.to_string())).unwrap();
        assert_eq!(status, 200);
        let (status, _, _) =
            plane.handle(&req("POST", "/tenants/t/release", &lease_id.to_string())).unwrap();
        assert_eq!(status, 409, "double release");

        let entry = host.lookup("t").unwrap();
        let counters = entry.lease.counters();
        assert_eq!(counters.grants, 1);
        assert_eq!(counters.releases, 1);
        assert_eq!(counters.conflicts, 1);
        host.shutdown();
    }

    #[test]
    fn nodes_routes_resize_a_tenant_ring() {
        let host = ServeHost::spawn();
        let plane = ServePlane::new(Arc::clone(&host));
        // k=9 leaves growth headroom over 4 nodes.
        host.create(TenantSpec { nodes: 4, k: 9, ..TenantSpec::named("grow") }).unwrap();

        let (status, _, body) = plane.handle(&req("POST", "/tenants/grow/nodes", "")).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("slot").unwrap().as_u64().unwrap(), 4);
        assert_eq!(doc.get("n").unwrap().as_u64().unwrap(), 5);

        let (status, _, body) = plane.handle(&req("DELETE", "/tenants/grow/nodes/2", "")).unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, _, _) = plane.handle(&req("DELETE", "/tenants/grow/nodes/0", "")).unwrap();
        assert_eq!(status, 422, "anchor removal must be refused");
        let (status, _, _) = plane.handle(&req("DELETE", "/tenants/grow/nodes/x", "")).unwrap();
        assert_eq!(status, 400);
        let (status, _, _) = plane.handle(&req("DELETE", "/tenants/zzz/nodes/1", "")).unwrap();
        assert_eq!(status, 404);

        // The detail document reflects the new membership, and the metric
        // families carry the live size and splice count.
        let (_, _, body) = plane.handle(&req("GET", "/tenants/grow", "")).unwrap();
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64().unwrap(), 4);
        assert_eq!(doc.get("resplices").unwrap().as_u64().unwrap(), 2);
        let text = ssr_ctl::prom::render(&plane.metrics());
        assert!(text.contains("ssr_ring_size{tenant=\"grow\"} 4"), "{text}");
        assert!(text.contains("ssr_resplice_total{tenant=\"grow\"} 2"), "{text}");
        // Audit keeps running across the splices without panicking on the
        // grown slot id.
        host.audit_tick();
        host.shutdown();
    }

    #[test]
    fn metrics_carry_per_tenant_labels() {
        let host = ServeHost::spawn();
        let plane = ServePlane::new(Arc::clone(&host));
        host.create(small("m1")).unwrap();
        host.create(small("m2")).unwrap();
        let text = ssr_ctl::prom::render(&plane.metrics());
        assert!(text.contains("ssr_cs_violations_total{tenant=\"m1\"}"), "{text}");
        assert!(text.contains("ssr_cs_violations_total{tenant=\"m2\"}"), "{text}");
        assert!(text.contains("ssr_node_sends_total{tenant=\"m1\",node=\"0\"}"), "{text}");
        assert!(text.contains("ssr_lease_grants_total{tenant=\"m1\"}"), "{text}");
        host.shutdown();
    }
}
