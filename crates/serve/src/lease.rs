//! TTL'd token leases: an application-facing claim on a tenant's token.
//!
//! SSRmin guarantees each tenant ring always has one primary token holder
//! (P9) and at most two privileged nodes ((1,2)-CS). The lease layer turns
//! that protocol-level privilege into an application-level contract: at
//! most one *client* of a tenant holds a lease at any instant. A lease is
//! granted against the node currently holding the primary token, lives for
//! a TTL, and dies early if the client releases it or the ring hands the
//! token to another node (graceful handover revokes the lease — the claim
//! was on *that* node's privilege).
//!
//! All grant/close decisions happen under one mutex and the closed-lease
//! history records microsecond windows, so exclusivity is provable after
//! the fact: sort the windows by grant time and no window may open before
//! the previous one ended.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// How a lease ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseEnd {
    /// The client released it.
    Released,
    /// The TTL ran out before the client released.
    Expired,
    /// The ring handed the token to another node while the lease lived.
    Revoked,
}

/// A currently granted lease.
#[derive(Debug, Clone)]
pub struct Lease {
    /// Unique (per tenant) lease id, also the release capability.
    pub id: u64,
    /// Client-supplied name (diagnostics only; the id is the capability).
    pub client: String,
    /// Ring node whose token privilege backs this lease.
    pub node: usize,
    /// When the lease was granted.
    pub granted_at: Instant,
    /// When it expires unless released first.
    pub expires_at: Instant,
}

/// One closed lease, as microsecond offsets from the manager's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseWindow {
    /// Lease id.
    pub id: u64,
    /// Backing node.
    pub node: usize,
    /// Grant time, µs since the manager's epoch.
    pub granted_us: u64,
    /// End time, µs since the manager's epoch.
    pub ended_us: u64,
    /// Why it ended.
    pub end: LeaseEnd,
}

/// Monotonic counters of lease traffic (mirrored into `/metrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseCounters {
    /// Leases granted.
    pub grants: u64,
    /// Leases released by their client.
    pub releases: u64,
    /// Leases that hit their TTL.
    pub expirations: u64,
    /// Leases revoked by a token handover.
    pub revocations: u64,
    /// Acquire attempts refused because a lease was held (HTTP 409).
    pub conflicts: u64,
    /// Acquire attempts refused because no node held the primary token at
    /// that instant (transient, e.g. mid-handover or mid-fault).
    pub unavailable: u64,
    /// Park events: a held lease carried across a re-splice (its TTL clock
    /// stopped) plus acquire attempts refused with HTTP 503 while the
    /// tenant's ring was mid-splice.
    pub parked: u64,
    /// Park windows *saved* by scheduling: membership operations that
    /// would each have parked the lease on their own but rode an already
    /// open park instead (batched K renegotiation, segment-scoped splice
    /// parking). Each saved window is one fewer 503 storm for clients.
    pub park_saves: u64,
}

/// Outcome of an acquire attempt.
#[derive(Debug, Clone)]
pub enum Acquire {
    /// Lease granted.
    Granted(Lease),
    /// Another client holds the lease until (at the latest) its TTL.
    Held {
        /// Remaining TTL of the blocking lease.
        retry_in: Duration,
    },
    /// No node currently reports holding the primary token.
    NoHolder,
    /// The tenant's ring is mid-splice; the lease authority is parked.
    /// Retry once the splice completes (HTTP 503 + retry-after).
    Parked {
        /// Expected remaining splice time (the parker's hint).
        retry_in: Duration,
    },
}

/// While a re-splice rebuilds the ring, the lease authority is parked: the
/// TTL clock stops for a held lease (it is re-validated at unpark instead
/// of silently expiring mid-splice) and acquires are refused with a
/// retry-after hint. Parks nest — overlapping membership operations each
/// take a depth — and the earliest `since` wins for clock arithmetic.
struct ParkState {
    since: Instant,
    hint: Duration,
    depth: u32,
}

struct LeaseInner {
    next_id: u64,
    current: Option<Lease>,
    counters: LeaseCounters,
    history: Vec<LeaseWindow>,
    park: Option<ParkState>,
    /// xorshift64 state behind the parked retry-hint jitter; per-manager
    /// and advanced per refusal, so concurrent clients draw different
    /// offsets without any global randomness source.
    jitter: u64,
}

/// The per-tenant lease authority.
pub struct LeaseManager {
    epoch: Instant,
    ttl: Duration,
    inner: Mutex<LeaseInner>,
}

impl LeaseManager {
    /// A manager granting leases of `ttl` with window timestamps relative
    /// to `epoch` (the tenant ring's start).
    pub fn new(epoch: Instant, ttl: Duration) -> Self {
        LeaseManager {
            epoch,
            ttl,
            inner: Mutex::new(LeaseInner {
                next_id: 1,
                current: None,
                counters: LeaseCounters::default(),
                history: Vec::new(),
                park: None,
                jitter: 0x9E37_79B9_7F4A_7C15,
            }),
        }
    }

    /// The configured TTL.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    fn us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Close the current lease if it expired, or if the token moved off the
    /// leased node (`holder` is the node currently holding the primary
    /// token, if visible). Called under the lock before every decision and
    /// periodically by the host's refresh loop.
    fn refresh_locked(&self, inner: &mut LeaseInner, holder: Option<usize>, now: Instant) {
        // A parked authority makes no expiry or revocation decisions: the
        // TTL clock is stopped and the holder view is mid-splice noise.
        if inner.park.is_some() {
            return;
        }
        let Some(lease) = inner.current.as_ref() else { return };
        if now >= lease.expires_at {
            // The TTL ran out at expires_at, not when we noticed.
            let window = LeaseWindow {
                id: lease.id,
                node: lease.node,
                granted_us: self.us(lease.granted_at),
                ended_us: self.us(lease.expires_at),
                end: LeaseEnd::Expired,
            };
            inner.history.push(window);
            inner.counters.expirations += 1;
            inner.current = None;
        } else if holder.is_some() && holder != Some(lease.node) {
            let window = LeaseWindow {
                id: lease.id,
                node: lease.node,
                granted_us: self.us(lease.granted_at),
                ended_us: self.us(now),
                end: LeaseEnd::Revoked,
            };
            inner.history.push(window);
            inner.counters.revocations += 1;
            inner.current = None;
        }
    }

    /// Periodic maintenance: expire / revoke the current lease against the
    /// ring's current primary holder.
    pub fn refresh(&self, holder: Option<usize>) {
        let mut inner = self.inner.lock();
        self.refresh_locked(&mut inner, holder, Instant::now());
    }

    /// Try to acquire the tenant's lease for `client`. `holder` is the node
    /// currently holding the primary token (the grant target).
    pub fn acquire(&self, client: &str, holder: Option<usize>) -> Acquire {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        if let Some(park) = &inner.park {
            let base = park.hint.saturating_sub(park.since.elapsed()).max(Duration::from_millis(5));
            // Bounded jitter past the unpark instant: every refused client
            // gets a distinct retry offset within a quarter of the park
            // hint, so they do not thundering-herd the exact moment the
            // splice is expected to finish.
            let spread_us = (park.hint.as_micros() as u64 / 4).max(1_000);
            let mut x = inner.jitter;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            inner.jitter = x;
            let retry_in = base + Duration::from_micros(x % spread_us);
            inner.counters.parked += 1;
            return Acquire::Parked { retry_in };
        }
        self.refresh_locked(&mut inner, holder, now);
        if let Some(expires_at) = inner.current.as_ref().map(|l| l.expires_at) {
            inner.counters.conflicts += 1;
            return Acquire::Held { retry_in: expires_at.saturating_duration_since(now) };
        }
        let Some(node) = holder else {
            inner.counters.unavailable += 1;
            return Acquire::NoHolder;
        };
        let lease = Lease {
            id: inner.next_id,
            client: client.to_string(),
            node,
            granted_at: now,
            expires_at: now + self.ttl,
        };
        inner.next_id += 1;
        inner.counters.grants += 1;
        inner.current = Some(lease.clone());
        Acquire::Granted(lease)
    }

    /// Release lease `id`. Err if the id does not name the live lease (it
    /// never existed, already expired, or was revoked — the client's claim
    /// is gone either way).
    pub fn release(&self, id: u64, holder: Option<usize>) -> Result<(), String> {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        self.refresh_locked(&mut inner, holder, now);
        match inner.current.as_ref() {
            Some(lease) if lease.id == id => {
                let window = LeaseWindow {
                    id: lease.id,
                    node: lease.node,
                    granted_us: self.us(lease.granted_at),
                    ended_us: self.us(now),
                    end: LeaseEnd::Released,
                };
                inner.history.push(window);
                inner.counters.releases += 1;
                inner.current = None;
                Ok(())
            }
            Some(lease) => Err(format!("lease {id} is not held (current is {})", lease.id)),
            None => Err(format!("lease {id} is not held")),
        }
    }

    /// The live lease, if any (after expiry maintenance).
    pub fn current(&self) -> Option<Lease> {
        let mut inner = self.inner.lock();
        self.refresh_locked(&mut inner, None, Instant::now());
        inner.current.clone()
    }

    /// Whether the lease authority is currently parked (ring mid-splice).
    pub fn is_parked(&self) -> bool {
        self.inner.lock().park.is_some()
    }

    /// Park the lease authority for the duration of a re-splice. `hint` is
    /// the expected splice time, returned to clients as the retry-after.
    /// A held lease survives: its TTL clock stops until [`unpark`] instead
    /// of silently expiring mid-splice. Parks nest.
    ///
    /// [`unpark`]: LeaseManager::unpark
    pub fn park(&self, hint: Duration) {
        let mut inner = self.inner.lock();
        match &mut inner.park {
            Some(park) => {
                park.depth += 1;
                park.hint = park.hint.max(hint);
            }
            None => {
                inner.park = Some(ParkState { since: Instant::now(), hint, depth: 1 });
                if inner.current.is_some() {
                    inner.counters.parked += 1;
                }
            }
        }
    }

    /// Release one park depth. Dropping the last park re-validates a held
    /// lease against the post-splice ring: its expiry is pushed out by the
    /// parked duration (the stopped clock), then the ordinary refresh rules
    /// apply — if the token moved to another node during the splice the
    /// lease is revoked, not TTL-expired.
    pub fn unpark(&self, holder: Option<usize>) {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        let Some(park) = &mut inner.park else { return };
        park.depth -= 1;
        if park.depth > 0 {
            return;
        }
        let parked_for = park.since.elapsed();
        inner.park = None;
        if let Some(lease) = inner.current.as_mut() {
            lease.expires_at += parked_for;
        }
        self.refresh_locked(&mut inner, holder, now);
    }

    /// Record a park window *saved* by scheduling: a membership operation
    /// that rode an already open park (or skipped parking entirely because
    /// its splice touched a different segment) instead of opening a park
    /// window of its own.
    pub fn note_park_saved(&self) {
        self.inner.lock().counters.park_saves += 1;
    }

    /// Snapshot of the traffic counters.
    pub fn counters(&self) -> LeaseCounters {
        self.inner.lock().counters
    }

    /// Closed-lease windows so far (grant order).
    pub fn history(&self) -> Vec<LeaseWindow> {
        self.inner.lock().history.clone()
    }
}

/// Check that a closed-lease history proves mutual exclusion: sorted by
/// grant time, every window must start at or after the previous one ended.
/// Returns the first overlapping pair if any.
pub fn first_overlap(history: &[LeaseWindow]) -> Option<(LeaseWindow, LeaseWindow)> {
    let mut sorted: Vec<LeaseWindow> = history.to_vec();
    sorted.sort_by_key(|w| w.granted_us);
    sorted.windows(2).find(|pair| pair[1].granted_us < pair[0].ended_us).map(|p| (p[0], p[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(ttl_ms: u64) -> LeaseManager {
        LeaseManager::new(Instant::now(), Duration::from_millis(ttl_ms))
    }

    #[test]
    fn grants_are_exclusive_until_released() {
        let m = manager(10_000);
        let lease = match m.acquire("alice", Some(2)) {
            Acquire::Granted(l) => l,
            other => panic!("expected grant, got {other:?}"),
        };
        assert_eq!(lease.node, 2);
        assert!(matches!(m.acquire("bob", Some(2)), Acquire::Held { .. }));
        assert!(m.release(lease.id + 1, Some(2)).is_err(), "wrong id");
        m.release(lease.id, Some(2)).unwrap();
        assert!(m.release(lease.id, Some(2)).is_err(), "double release");
        assert!(matches!(m.acquire("bob", Some(2)), Acquire::Granted(_)));
        let c = m.counters();
        assert_eq!((c.grants, c.releases, c.conflicts), (2, 1, 1));
        assert!(first_overlap(&m.history()).is_none());
    }

    #[test]
    fn no_holder_means_no_grant() {
        let m = manager(10_000);
        assert!(matches!(m.acquire("alice", None), Acquire::NoHolder));
        assert_eq!(m.counters().unavailable, 1);
    }

    #[test]
    fn expiry_frees_the_lease_and_backdates_the_window() {
        let m = manager(15);
        let lease = match m.acquire("alice", Some(0)) {
            Acquire::Granted(l) => l,
            other => panic!("expected grant, got {other:?}"),
        };
        std::thread::sleep(Duration::from_millis(40));
        // Nobody refreshed in between: the next acquire both expires the
        // old lease and grants the new one, atomically.
        assert!(matches!(m.acquire("bob", Some(1)), Acquire::Granted(_)));
        let history = m.history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].end, LeaseEnd::Expired);
        assert_eq!(history[0].id, lease.id);
        // The window closed at TTL, not at detection ~40ms later.
        assert!(history[0].ended_us - history[0].granted_us < 30_000);
        assert!(m.release(lease.id, Some(1)).is_err(), "expired lease cannot be released");
        assert!(first_overlap(&m.history()).is_none());
    }

    #[test]
    fn handover_revokes_the_lease() {
        let m = manager(10_000);
        let lease = match m.acquire("alice", Some(0)) {
            Acquire::Granted(l) => l,
            other => panic!("expected grant, got {other:?}"),
        };
        m.refresh(Some(0)); // same holder: nothing happens
        assert!(m.current().is_some());
        m.refresh(None); // holder invisible (mid-handover): keep waiting
        assert!(m.current().is_some());
        m.refresh(Some(1)); // token moved: revoke
        assert!(m.current().is_none());
        let history = m.history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].end, LeaseEnd::Revoked);
        assert_eq!(history[0].id, lease.id);
        assert_eq!(m.counters().revocations, 1);
    }

    #[test]
    fn parking_stops_the_ttl_clock_across_a_resplice() {
        let m = manager(40);
        let lease = match m.acquire("alice", Some(0)) {
            Acquire::Granted(l) => l,
            other => panic!("expected grant, got {other:?}"),
        };
        m.park(Duration::from_millis(100));
        assert!(m.is_parked());
        // Acquire during the splice: parked, not a silent expiry.
        assert!(matches!(m.acquire("bob", Some(0)), Acquire::Parked { .. }));
        // Outlive the TTL while parked: the clock is stopped.
        std::thread::sleep(Duration::from_millis(60));
        m.refresh(Some(3)); // mid-splice holder noise must not revoke
        m.unpark(Some(0));
        assert!(!m.is_parked());
        let live = m.current().expect("lease survived the re-splice");
        assert_eq!(live.id, lease.id);
        m.release(lease.id, Some(0)).unwrap();
        let c = m.counters();
        assert_eq!(c.expirations, 0);
        assert_eq!(c.revocations, 0);
        assert_eq!(c.parked, 2, "one held-lease park + one refused acquire");
        assert!(first_overlap(&m.history()).is_none());
    }

    #[test]
    fn unpark_revokes_if_the_token_moved_during_the_splice() {
        let m = manager(10_000);
        let lease = match m.acquire("alice", Some(0)) {
            Acquire::Granted(l) => l,
            other => panic!("expected grant, got {other:?}"),
        };
        m.park(Duration::from_millis(50));
        m.unpark(Some(4)); // token landed elsewhere after the splice
        assert!(m.current().is_none());
        let history = m.history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].end, LeaseEnd::Revoked);
        assert_eq!(history[0].id, lease.id);
    }

    #[test]
    fn parks_nest() {
        let m = manager(10_000);
        m.park(Duration::from_millis(10));
        m.park(Duration::from_millis(30));
        m.unpark(None);
        assert!(m.is_parked(), "inner unpark keeps the outer park");
        m.unpark(None);
        assert!(!m.is_parked());
    }

    #[test]
    fn parked_retry_hints_carry_bounded_jitter() {
        let m = manager(10_000);
        let hint = Duration::from_millis(100);
        m.park(hint);
        let hints: Vec<Duration> = (0..16)
            .map(|_| match m.acquire("client", Some(0)) {
                Acquire::Parked { retry_in } => retry_in,
                other => panic!("expected parked, got {other:?}"),
            })
            .collect();
        for &h in &hints {
            assert!(h >= Duration::from_millis(5), "floor breached: {h:?}");
            // base (≤ hint) + jitter (< hint / 4): the herd spreads over a
            // bounded window after the expected unpark, never unboundedly.
            assert!(h < hint + hint / 4, "jitter unbounded: {h:?}");
        }
        assert!(hints.iter().any(|&h| h != hints[0]), "all retry hints identical: {hints:?}");
        m.unpark(None);
        assert_eq!(m.counters().parked, 16);
    }

    #[test]
    fn saved_park_windows_are_counted() {
        let m = manager(10_000);
        assert_eq!(m.counters().park_saves, 0);
        m.note_park_saved();
        m.note_park_saved();
        assert_eq!(m.counters().park_saves, 2);
    }

    #[test]
    fn overlap_detector_catches_bad_histories() {
        let w = |granted_us, ended_us| LeaseWindow {
            id: 0,
            node: 0,
            granted_us,
            ended_us,
            end: LeaseEnd::Released,
        };
        assert!(first_overlap(&[w(0, 10), w(10, 20), w(25, 30)]).is_none());
        let bad = first_overlap(&[w(0, 10), w(9, 20)]).unwrap();
        assert_eq!((bad.0.ended_us, bad.1.granted_us), (10, 9));
    }
}
