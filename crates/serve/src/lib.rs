//! `ssr-serve`: multi-tenant ring hosting with a token-lease API.
//!
//! The lower crates run **one** SSRmin ring per process. This crate turns
//! that into a service: a [`ServeHost`] registers many tenants at runtime,
//! each an independent ring with its own [`TenantSpec`] (size, K bound,
//! seed, tick, chaos profile, lease TTL, audited CS spec), all running over
//! the shared UDP transport — frames carry the tenant id in the versioned
//! wire codec, so rings cannot cross-talk even through misdelivery — and
//! all observable through one `ssr-ctl` HTTP plane with per-tenant metric
//! labels.
//!
//! On top of the protocol's token, the lease layer ([`LeaseManager`])
//! offers applications a familiar contract: `POST /tenants/{id}/acquire`
//! grants a TTL'd lease on the node currently holding the primary token —
//! at most one client per tenant holds one, concurrent acquires get HTTP
//! 409, and the lease dies on release, TTL expiry, or when the ring's
//! graceful handover moves the token to another node.
//!
//! A background auditor thread replays every tenant's privilege trace
//! against its (ℓ,k)-CS spec ([`ssr_net::TraceAuditor`]); violation
//! episodes surface as `ssr_cs_violations_total{tenant=...}`.
//!
//! Layering: `ssr-core` (protocol) → `ssr-net` (UDP ring, faults,
//! auditing) → `ssr-ctl` (HTTP plane) → **`ssr-serve`** (tenancy +
//! leases) → the `ssrmin serve` / `ssrmin load` binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod host;
pub mod lease;
pub mod ring;
pub mod tenant;

pub use host::{ServeHost, ServePlane, TenantEntry};
pub use lease::{
    first_overlap, Acquire, Lease, LeaseCounters, LeaseEnd, LeaseManager, LeaseWindow,
};
pub use ring::HostedRing;
pub use tenant::TenantSpec;
