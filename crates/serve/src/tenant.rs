//! Tenant specifications: what a client asks for when it creates a ring.
//!
//! A tenant is one independent SSRmin ring with its own size, K bound,
//! seed, chaos profile, lease TTL and audited [`CsSpec`]. Specs arrive as
//! the body of `POST /tenants` in a deliberately simple `key=value`
//! grammar (whitespace-separated, same shape as the CLI flags), so no JSON
//! parser is needed on the client side:
//!
//! ```text
//! name=alpha nodes=5 seed=3 loss=0.2 ttl-ms=250
//! ```

use std::time::Duration;

use ssr_core::{CsSpec, RingParams};

/// Everything needed to host one tenant ring.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Registry name (unique per host; also the `tenant` metric label).
    pub name: String,
    /// Ring size n.
    pub nodes: usize,
    /// SSRmin K bound; 0 means the minimal legal `n + 1`.
    pub k: u32,
    /// Seed for the transport jitter, chaos and fault samplers.
    pub seed: u64,
    /// Base retransmit period of the tenant's transports.
    pub tick: Duration,
    /// Critical-section dwell of each node.
    pub exec_delay: Duration,
    /// Default TTL of leases granted on this tenant.
    pub lease_ttl: Duration,
    /// Per-link i.i.d. datagram loss probability (chaos proxies are only
    /// spawned when some chaos knob is nonzero).
    pub loss: f64,
    /// Per-link datagram corruption probability.
    pub corrupt: f64,
    /// Audited lower bound ℓ (None: SSRmin's own guarantee, 1).
    pub cs_l: Option<usize>,
    /// Audited upper bound k (None: SSRmin's own guarantee, 2).
    pub cs_k: Option<usize>,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            name: String::new(),
            nodes: 5,
            k: 0,
            seed: 0,
            tick: Duration::from_millis(5),
            exec_delay: Duration::from_millis(1),
            lease_ttl: Duration::from_millis(250),
            loss: 0.0,
            corrupt: 0.0,
            cs_l: None,
            cs_k: None,
        }
    }
}

impl TenantSpec {
    /// A named spec with every other knob at its default.
    pub fn named(name: impl Into<String>) -> Self {
        TenantSpec { name: name.into(), ..TenantSpec::default() }
    }

    /// Parse the `key=value` grammar of `POST /tenants`. Unknown keys are
    /// rejected so typos fail loudly.
    pub fn parse(body: &str) -> Result<TenantSpec, String> {
        let mut spec = TenantSpec::default();
        for word in body.split_whitespace() {
            let (key, value) =
                word.split_once('=').ok_or_else(|| format!("expected key=value, got '{word}'"))?;
            let num = |what: &str| -> Result<u64, String> {
                value.parse().map_err(|_| format!("unparseable {what} '{value}'"))
            };
            match key {
                "name" => spec.name = value.to_string(),
                "nodes" | "n" => spec.nodes = num("node count")? as usize,
                "k" => spec.k = num("K bound")? as u32,
                "seed" => spec.seed = num("seed")?,
                "tick-ms" => spec.tick = Duration::from_millis(num("tick")?),
                "exec-ms" => spec.exec_delay = Duration::from_millis(num("exec delay")?),
                "ttl-ms" => spec.lease_ttl = Duration::from_millis(num("lease ttl")?),
                "loss" => {
                    spec.loss = value.parse().map_err(|_| format!("unparseable loss '{value}'"))?;
                }
                "corrupt" => {
                    spec.corrupt =
                        value.parse().map_err(|_| format!("unparseable corrupt '{value}'"))?;
                }
                "cs-l" => spec.cs_l = Some(num("cs-l")? as usize),
                "cs-k" => spec.cs_k = Some(num("cs-k")? as usize),
                other => return Err(format!("unknown key '{other}'")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Check the spec is hostable; returns a one-line reason if not.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("tenant needs a name".to_string());
        }
        if !self.name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') {
            return Err(format!("tenant name '{}' must be [A-Za-z0-9_-]", self.name));
        }
        self.params().map_err(|e| e.to_string())?;
        for (what, p) in [("loss", self.loss), ("corrupt", self.corrupt)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{what} {p} outside [0, 1]"));
            }
        }
        if self.tick.is_zero() {
            return Err("tick must be positive".to_string());
        }
        if self.lease_ttl.is_zero() {
            return Err("lease ttl must be positive".to_string());
        }
        let spec = self.unchecked_cs();
        if !(1 <= spec.l && spec.l <= spec.k && spec.k <= spec.n) {
            return Err(format!(
                "cs spec ({}, {}) must satisfy 1 <= l <= k <= n={}",
                spec.l, spec.k, spec.n
            ));
        }
        Ok(())
    }

    /// The ring parameters (K bound 0 resolves to the minimal `n + 1`).
    pub fn params(&self) -> ssr_core::Result<RingParams> {
        if self.k == 0 {
            RingParams::minimal(self.nodes)
        } else {
            RingParams::new(self.nodes, self.k)
        }
    }

    /// The audited critical-section spec (defaults to SSRmin's own (1,2)
    /// guarantee over the tenant's n).
    pub fn cs_spec(&self) -> CsSpec {
        let raw = self.unchecked_cs();
        CsSpec::new(raw.l, raw.k, raw.n)
    }

    /// Whether the tenant gets chaos proxies on its links.
    pub fn wants_chaos(&self) -> bool {
        self.loss > 0.0 || self.corrupt > 0.0
    }

    fn unchecked_cs(&self) -> RawCs {
        RawCs { l: self.cs_l.unwrap_or(1), k: self.cs_k.unwrap_or(2), n: self.nodes }
    }

    /// Render the spec back into its own `key=value` grammar (diagnostics
    /// and round-trip tests).
    pub fn render(&self) -> String {
        format!(
            "name={} nodes={} k={} seed={} tick-ms={} exec-ms={} ttl-ms={} loss={} corrupt={} cs-l={} cs-k={}",
            self.name,
            self.nodes,
            self.k,
            self.seed,
            self.tick.as_millis(),
            self.exec_delay.as_millis(),
            self.lease_ttl.as_millis(),
            self.loss,
            self.corrupt,
            self.cs_l.unwrap_or(1),
            self.cs_k.unwrap_or(2),
        )
    }
}

struct RawCs {
    l: usize,
    k: usize,
    n: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_key_value_grammar() {
        let spec =
            TenantSpec::parse("name=alpha nodes=7 seed=3 loss=0.2 ttl-ms=100 cs-k=3").unwrap();
        assert_eq!(spec.name, "alpha");
        assert_eq!(spec.nodes, 7);
        assert_eq!(spec.seed, 3);
        assert!((spec.loss - 0.2).abs() < 1e-12);
        assert_eq!(spec.lease_ttl, Duration::from_millis(100));
        assert_eq!(spec.cs_spec(), CsSpec::new(1, 3, 7));
        assert!(spec.wants_chaos());
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(TenantSpec::parse("nodes=5").is_err(), "nameless");
        assert!(TenantSpec::parse("name=a nodes=2").is_err(), "ring too small");
        assert!(TenantSpec::parse("name=a loss=1.5").is_err(), "loss out of range");
        assert!(TenantSpec::parse("name=a frobnicate=1").is_err(), "unknown key");
        assert!(TenantSpec::parse("name=a cs-l=3 cs-k=2").is_err(), "l > k");
        assert!(TenantSpec::parse("name=bad name!").is_err(), "bad name characters");
        assert!(TenantSpec::parse("name=a ttl-ms=0").is_err(), "zero ttl");
    }

    #[test]
    fn defaults_round_trip_through_render() {
        let spec = TenantSpec::named("t1");
        let again = TenantSpec::parse(&spec.render()).unwrap();
        assert_eq!(again.name, "t1");
        assert_eq!(again.nodes, spec.nodes);
        assert_eq!(again.cs_spec(), spec.cs_spec());
    }
}
