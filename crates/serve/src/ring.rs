//! One hosted tenant ring: `run_node` threads over tenant-stamped
//! [`UdpTransport`]s, optionally behind per-link chaos proxies, living
//! until the tenant is deleted — and *resizable* while it runs.
//!
//! This is `ssr_net::cluster`'s three-phase bring-up (bind → wire → spawn)
//! rebuilt for indefinite runs: instead of a fixed measurement window the
//! ring runs until its stop flag flips, and the supervisor machinery is
//! folded in per node — every node carries the two-stage convergence
//! watchdog, and the registry can crash, restart (amnesia + generation
//! overshoot past the staleness filters), freeze or state-corrupt
//! individual nodes at runtime, exactly like `ssrmin soak`'s fault
//! injector but scoped to one tenant.
//!
//! Membership is dynamic. A slot id is a *stable wire identity*: a member
//! keeps the id it was born with and ids are never reused, which is sound
//! because SSRmin's guards depend only on "am I node 0" and K, never on a
//! non-anchor index's numeric value. The ring order is a separate vector of
//! slot ids with the anchor (slot 0) pinned at position zero. [`HostedRing::add_node`]
//! splices a new member in at the tail and [`HostedRing::remove_node`] has a member's
//! neighbours splice around it, both through the same park → re-splice →
//! cache-seed → relaunch handshake as `ssr_net::membership`; every node's
//! watchdog budget reads the live ring size through a [`SharedBudget`] and
//! rescales the moment a splice commits.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use ssr_core::{Replica, RingParams, SsrMin, SsrState};
use ssr_ctl::ChaosCmd;
use ssr_mpnet::{live_segments, FaultKind};
use ssr_net::chaos::{ChaosConfig, ChaosHandle, ChaosProxy};
use ssr_net::convergence_envelope;
use ssr_net::metrics::{MetricsRegistry, NodeMetrics};
use ssr_net::runner::{run_node, NodeConfig, NodeControl, SharedBudget, Watchdog, WatchdogEvent};
use ssr_net::transport::{LocalAddrs, Neighbor, UdpTransport};
use ssr_net::{ssr_adversary, ssr_amnesia};
use ssr_runtime::activity::ActivityEvent;

use crate::tenant::TenantSpec;

/// Generation overshoot per incarnation, mirroring the supervisor's rebind
/// floor: far larger than any generation a previous incarnation can have
/// stamped within its lifetime.
const GENERATION_STRIDE: u32 = 1 << 24;

/// One node's control surface and (when crashed) its parked remains.
struct NodeSlot {
    kill: Arc<AtomicBool>,
    frozen: Arc<AtomicBool>,
    poison: Arc<Mutex<Option<Vec<u8>>>>,
    thread: Option<JoinHandle<(Replica<SsrState>, UdpTransport<SsrState>)>>,
    /// Replica + transport handed back by a crashed node's thread, reused
    /// on restart so the ring keeps its wiring.
    parked: Option<(Replica<SsrState>, UdpTransport<SsrState>)>,
    incarnation: u32,
    /// Socket addresses captured at bind time — stable for the slot's life,
    /// so neighbours can re-splice toward this member without stopping it.
    addrs: LocalAddrs,
    /// Outbound chaos proxy toward the successor (directed link `2·slot`).
    proxy_succ: Option<ChaosProxy>,
    /// Outbound chaos proxy toward the predecessor (link `2·slot + 1`).
    proxy_pred: Option<ChaosProxy>,
    /// Tombstone: the member has been spliced out; the slot id is retired
    /// forever and its metrics stay readable.
    spliced: bool,
}

/// A live tenant ring.
pub struct HostedRing {
    algo: SsrMin,
    tenant: u16,
    spec: TenantSpec,
    start: Instant,
    stop: Arc<AtomicBool>,
    /// Slot id → control surface. Indices are stable and never reused.
    slots: Vec<NodeSlot>,
    /// Slot ids in ring order; `ring[0] == 0` (the anchor) always.
    ring: Vec<usize>,
    metrics: MetricsRegistry,
    log: Arc<Mutex<Vec<ActivityEvent>>>,
    initial_active: Vec<bool>,
    /// Live ring size shared with every member's watchdog budget.
    ring_size: Arc<AtomicUsize>,
    /// Lifetime count of committed re-splice operations (adds + removes).
    resplices: u64,
    watchdog_outbox: Arc<Mutex<Vec<WatchdogEvent>>>,
    /// Ring-wide degraded-mode suspension shared with every node's control:
    /// held up while a K-renegotiation rebuilds the ring so no rule engine
    /// executes against half-committed parameters.
    suspended: Arc<AtomicBool>,
    /// Lifetime count of committed K-renegotiations.
    k_renegotiations: u64,
    /// Degraded-service segment count after the last liveness change: the
    /// maximal live arcs the current holes cut the ring into (1 while
    /// intact; the walker layer under `ssr_net` serves each arc its own
    /// token).
    segments_last: usize,
    /// Lifetime count of merge-on-heal events: liveness changes that
    /// reduced the segment count, retiring the higher-anchor walker(s).
    walker_merges: u64,
}

impl HostedRing {
    /// Bind, wire and start a tenant ring. `tenant` is the wire-level ring
    /// id stamped on every frame.
    pub fn spawn(tenant: u16, spec: TenantSpec) -> io::Result<HostedRing> {
        let params = spec.params().map_err(io::Error::other)?;
        let algo = SsrMin::new(params);
        let n = spec.nodes;
        let metrics = MetricsRegistry::new(n);
        let stop = Arc::new(AtomicBool::new(false));
        let log = Arc::new(Mutex::new(Vec::new()));
        let watchdog_outbox = Arc::new(Mutex::new(Vec::new()));
        let start = Instant::now();

        // Phase 1: bind every node's sockets, joined to the tenant.
        let mut transports = Vec::with_capacity(n);
        for i in 0..n {
            let pred = (i + n - 1) % n;
            let succ = (i + 1) % n;
            let mut t = UdpTransport::<SsrState>::bind(
                i as u16,
                pred as u16,
                succ as u16,
                spec.tick,
                spec.seed.wrapping_add(i as u64),
                metrics.arc_node(i),
            )?;
            t.set_tenant(tenant);
            transports.push(t);
        }
        let addrs = transports.iter().map(|t| t.local_addrs()).collect::<io::Result<Vec<_>>>()?;

        // Phase 3 shell first so phases 2–3 can use its helpers.
        let initial = algo.legitimate_anchor(0);
        let mut ring = HostedRing {
            algo,
            tenant,
            spec,
            start,
            stop,
            slots: Vec::with_capacity(n),
            ring: (0..n).collect(),
            metrics,
            log,
            initial_active: Vec::with_capacity(n),
            ring_size: Arc::new(AtomicUsize::new(n)),
            resplices: 0,
            watchdog_outbox,
            suspended: Arc::new(AtomicBool::new(false)),
            k_renegotiations: 0,
            segments_last: 1,
            walker_merges: 0,
        };

        // Phase 2: wire the ring, through chaos proxies when asked for, and
        // spawn the node threads from the legitimate anchor with coherent
        // caches — a freshly provisioned tenant is immediately in service;
        // self-stabilization is for what the world does later.
        for (i, mut t) in transports.into_iter().enumerate() {
            let pred = (i + n - 1) % n;
            let succ = (i + 1) % n;
            // Destination of states this node sends *to* each neighbour:
            // the neighbour's socket facing back at us.
            let to_succ = addrs[succ].pred;
            let to_pred = addrs[pred].succ;
            let (proxy_succ, proxy_pred) = if ring.spec.wants_chaos() {
                let p_succ = ChaosProxy::spawn(to_succ, ring.link_chaos(2 * i as u64))?;
                let p_pred = ChaosProxy::spawn(to_pred, ring.link_chaos(2 * i as u64 + 1))?;
                t.wire(p_pred.addr(), p_succ.addr());
                (Some(p_succ), Some(p_pred))
            } else {
                t.wire(to_pred, to_succ);
                (None, None)
            };
            let replica = Replica::coherent(initial[i], initial[pred], initial[succ]);
            ring.initial_active.push(replica.is_privileged(&ring.algo, i));
            ring.slots.push(NodeSlot {
                kill: Arc::new(AtomicBool::new(false)),
                frozen: Arc::new(AtomicBool::new(false)),
                poison: Arc::new(Mutex::new(None)),
                thread: None,
                parked: None,
                incarnation: 0,
                addrs: addrs[i],
                proxy_succ,
                proxy_pred,
                spliced: false,
            });
            ring.launch(i, replica, t);
        }
        Ok(ring)
    }

    /// Chaos configuration for one directed link, seeded from the tenant
    /// seed and the link's stable identity.
    fn link_chaos(&self, link_idx: u64) -> ChaosConfig {
        ChaosConfig {
            seed: self.spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(link_idx),
            loss: self.spec.loss,
            corrupt: self.spec.corrupt,
            ..ChaosConfig::default()
        }
    }

    /// The per-node convergence-watchdog budget: the Lemma 5 `3n`-step
    /// bound scaled by the retransmit period, with the same slack and floor
    /// the soak supervisor uses — reading `n` live, so it rescales when the
    /// ring does.
    fn watchdog_budget(&self) -> SharedBudget {
        SharedBudget::new(
            Arc::clone(&self.ring_size),
            self.spec.tick,
            16,
            Duration::from_millis(400),
        )
    }

    fn launch(&mut self, i: usize, replica: Replica<SsrState>, transport: UdpTransport<SsrState>) {
        let control = NodeControl {
            stop: Arc::clone(&self.stop),
            kill: Arc::clone(&self.slots[i].kill),
            snapshot: None,
            poison: Arc::clone(&self.slots[i].poison),
            frozen: Arc::clone(&self.slots[i].frozen),
            suspended: Arc::clone(&self.suspended),
            watchdog: Some(Watchdog {
                budget: self.watchdog_budget(),
                generation_bump: GENERATION_STRIDE,
                outbox: Arc::clone(&self.watchdog_outbox),
            }),
        };
        let algo = self.algo;
        let cfg = NodeConfig { exec_delay: self.spec.exec_delay, ..NodeConfig::default() };
        let log = Arc::clone(&self.log);
        let start = self.start;
        let metrics = self.metrics.arc_node(i);
        self.slots[i].thread = Some(std::thread::spawn(move || {
            run_node(algo, i, replica, transport, cfg, control, log, start, metrics)
        }));
    }

    /// Current ring size (live members).
    pub fn n(&self) -> usize {
        self.ring.len()
    }

    /// Slot ids in ring order (position 0 is the anchor).
    pub fn ring_order(&self) -> Vec<usize> {
        self.ring.clone()
    }

    /// Total slots ever created (live + spliced); slot ids are `0..slot_count`.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether `slot` names a live (not spliced-out) member.
    pub fn slot_live(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|s| !s.spliced)
    }

    /// Lifetime count of committed re-splice operations (adds + removes).
    pub fn resplices(&self) -> u64 {
        self.resplices
    }

    /// The wire-level tenant id.
    pub fn tenant(&self) -> u16 {
        self.tenant
    }

    /// Time since the ring started.
    pub fn age(&self) -> Duration {
        self.start.elapsed()
    }

    /// The ring's start instant (activity-event timestamps are relative to
    /// it).
    pub fn started(&self) -> Instant {
        self.start
    }

    /// Initial privilege vector (the trace auditor's starting point).
    pub fn initial_active(&self) -> &[bool] {
        &self.initial_active
    }

    /// Drain recorded activity events older than `horizon` (ring-relative),
    /// leaving newer ones for the next drain so late-arriving transitions
    /// from other node threads keep their time order.
    pub fn drain_activity(&self, horizon: Duration) -> Vec<ActivityEvent> {
        let mut log = self.log.lock();
        let mut drained = Vec::new();
        let mut keep = Vec::with_capacity(log.len());
        for event in log.drain(..) {
            if event.at <= horizon {
                drained.push(event);
            } else {
                keep.push(event);
            }
        }
        *log = keep;
        drained.sort_by_key(|e| e.at);
        drained
    }

    /// Per-node metrics registry. Spliced-out members' counters remain
    /// readable (slots are never reused).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of nodes currently evaluating themselves privileged (gauge
    /// scan; the authoritative audit replays the activity trace).
    pub fn privileged_count(&self) -> usize {
        self.ring
            .iter()
            .filter(|&&i| NodeMetrics::get(&self.metrics.node(i).privileged) == 1)
            .count()
    }

    /// The node currently holding the primary token, if exactly visible.
    pub fn primary_holder(&self) -> Option<usize> {
        self.ring.iter().copied().find(|&i| {
            self.slots[i].thread.is_some()
                && NodeMetrics::get(&self.metrics.node(i).token_primary) == 1
        })
    }

    /// Whether slot `i`'s thread is up (live member, not crashed).
    pub fn node_up(&self, i: usize) -> bool {
        self.slots.get(i).is_some_and(|s| s.thread.is_some())
    }

    /// Slot `i`'s incarnation count (restarts + splice relaunches).
    pub fn incarnation(&self, i: usize) -> u32 {
        self.slots.get(i).map_or(0, |s| s.incarnation)
    }

    /// Total watchdog escalations reported by this ring's nodes.
    pub fn watchdog_escalations(&self) -> u64 {
        self.watchdog_outbox.lock().len() as u64
    }

    /// Ring liveness in ring order (position-indexed, anchor first).
    fn live_view(&self) -> Vec<bool> {
        self.ring.iter().map(|&s| self.node_up(s)).collect()
    }

    /// Re-derive the degraded-service segment count after a liveness or
    /// geometry change; a decrease is a merge-on-heal (two arcs re-joined,
    /// retiring the higher-anchor walker).
    fn note_liveness_change(&mut self) {
        let segments = live_segments(&self.live_view()).len().max(1);
        if segments < self.segments_last {
            self.walker_merges += (self.segments_last - segments) as u64;
        }
        self.segments_last = segments;
    }

    /// Current degraded-service segment count (1 while the ring is intact).
    pub fn fallback_segments(&self) -> usize {
        self.segments_last
    }

    /// Lifetime count of merge-on-heal events for this tenant.
    pub fn walker_merges(&self) -> u64 {
        self.walker_merges
    }

    /// The degraded-service segment currently containing live member
    /// `slot`: an index into the `live_segments` partition of the ring, or
    /// `None` for members that are down or not in the ring. Two slots in
    /// different segments are served by different walkers, so a splice in
    /// one segment does not disturb the other's token service.
    pub fn segment_of(&self, slot: usize) -> Option<usize> {
        let position = self.ring.iter().position(|&s| s == slot)?;
        live_segments(&self.live_view()).into_iter().position(|seg| seg.contains(&position))
    }

    /// Splice one member in at the tail of the ring (between the current
    /// last member and the anchor). Returns the new member's slot id.
    pub fn add_node(&mut self) -> Result<usize, String> {
        let n = self.ring.len();
        let k = self.algo.params().k();
        if (n + 1) as u32 >= k {
            return Err(format!(
                "ring is at K capacity: k={k} must exceed n={} after the add; \
                 create the tenant with a larger k to leave growth headroom",
                n + 1
            ));
        }
        let tail = *self.ring.last().expect("ring is never empty");
        let anchor = self.ring[0];
        if !self.node_up(tail) || !self.node_up(anchor) {
            return Err(format!(
                "an add needs both would-be neighbours up (tail slot {tail}, anchor slot {anchor})"
            ));
        }

        // Fallible setup first, ring untouched: bind the joiner (and its
        // outbound proxies) before parking anyone.
        let slot = self.slots.len();
        let grown = self.metrics.grow();
        debug_assert_eq!(grown, slot);
        let mut t = UdpTransport::<SsrState>::bind(
            slot as u16,
            tail as u16,
            anchor as u16,
            self.spec.tick,
            self.spec.seed.wrapping_add(slot as u64),
            self.metrics.arc_node(slot),
        )
        .map_err(|e| format!("bind joiner sockets: {e}"))?;
        t.set_tenant(self.tenant);
        let j_addrs = t.local_addrs().map_err(|e| format!("joiner local addrs: {e}"))?;
        let tail_addrs = self.slots[tail].addrs;
        let anchor_addrs = self.slots[anchor].addrs;
        let (proxy_succ, proxy_pred) = if self.spec.wants_chaos() {
            let ps = ChaosProxy::spawn(anchor_addrs.pred, self.link_chaos(2 * slot as u64))
                .map_err(|e| format!("spawn joiner chaos proxy: {e}"))?;
            let pp = ChaosProxy::spawn(tail_addrs.succ, self.link_chaos(2 * slot as u64 + 1))
                .map_err(|e| format!("spawn joiner chaos proxy: {e}"))?;
            t.wire(pp.addr(), ps.addr());
            (Some(ps), Some(pp))
        } else {
            t.wire(tail_addrs.succ, anchor_addrs.pred);
            (None, None)
        };

        // Handshake: park both neighbours, re-point their facing link ends
        // at the joiner, seed caches, relaunch everyone.
        let (mut tail_rep, mut tail_tr) = self.park(tail)?;
        let (mut anchor_rep, mut anchor_tr) = match self.park(anchor) {
            Ok(parked) => parked,
            Err(e) => {
                self.relaunch(tail, tail_rep, tail_tr);
                return Err(e);
            }
        };
        let tail_peer = match &self.slots[tail].proxy_succ {
            Some(p) => {
                p.set_dst(j_addrs.pred);
                p.addr()
            }
            None => j_addrs.pred,
        };
        tail_tr.resplice(Neighbor::Succ, slot as u16, tail_peer);
        let anchor_peer = match &self.slots[anchor].proxy_pred {
            Some(p) => {
                p.set_dst(j_addrs.succ);
                p.addr()
            }
            None => j_addrs.succ,
        };
        anchor_tr.resplice(Neighbor::Pred, slot as u16, anchor_peer);

        // Graceful handover: the joiner adopts its predecessor's counter
        // with no token bits, so the splice mints no extra privilege.
        let own = SsrState::new(tail_rep.own.x, 0, 0);
        let replica = Replica::coherent(own, tail_rep.own, anchor_rep.own);
        tail_rep.cache_succ = own;
        anchor_rep.cache_pred = own;

        self.relaunch(tail, tail_rep, tail_tr);
        self.relaunch(anchor, anchor_rep, anchor_tr);
        self.slots.push(NodeSlot {
            kill: Arc::new(AtomicBool::new(false)),
            frozen: Arc::new(AtomicBool::new(false)),
            poison: Arc::new(Mutex::new(None)),
            thread: None,
            parked: None,
            incarnation: 0,
            addrs: j_addrs,
            proxy_succ,
            proxy_pred,
            spliced: false,
        });
        self.launch(slot, replica, t);

        self.ring.push(slot);
        self.ring_size.store(self.ring.len(), Ordering::Relaxed);
        self.resplices += 1;
        self.note_liveness_change();
        Ok(slot)
    }

    /// Splice the member in `slot` out of the ring: wait (bounded) for it
    /// to hand any privilege downstream, stop it, and have its neighbours
    /// re-splice around it. The slot id is retired forever.
    pub fn remove_node(&mut self, slot: usize) -> Result<String, String> {
        let Some(position) = self.ring.iter().position(|&s| s == slot) else {
            return Err(if self.slot_live(slot) {
                format!("slot {slot} is not in the ring")
            } else {
                format!("slot {slot} is not a live member")
            });
        };
        if position == 0 {
            return Err("slot 0 is the ring anchor (the bottom machine never leaves)".to_string());
        }
        let n = self.ring.len();
        if n - 1 < RingParams::MIN_N {
            return Err(format!(
                "removing a member would splice the ring below n={}",
                RingParams::MIN_N
            ));
        }
        let pred = self.ring[position - 1];
        let succ = self.ring[(position + 1) % n];
        if !self.node_up(pred) || !self.node_up(succ) {
            return Err(format!("a remove needs both neighbours up (slots {pred} and {succ})"));
        }

        // A graceful leaver first hands any privilege downstream; poll its
        // gauge with a Theorem-2-scaled bound, then stop it regardless.
        if self.node_up(slot) {
            let deadline = Instant::now() + convergence_envelope(n, self.spec.tick) * 2;
            while Instant::now() < deadline {
                if NodeMetrics::get(&self.metrics.node(slot).privileged) == 0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            let _remains = self.park(slot)?;
        } else {
            self.slots[slot].parked = None;
        }
        self.slots[slot].spliced = true;
        // The spliced member's privilege is gone with it; zero its gauges so
        // scrapes never report a stale token.
        let m = self.metrics.node(slot);
        NodeMetrics::set(&m.privileged, 0);
        NodeMetrics::set(&m.token_primary, 0);
        NodeMetrics::set(&m.token_secondary, 0);
        if let Some(p) = self.slots[slot].proxy_succ.take() {
            p.shutdown();
        }
        if let Some(p) = self.slots[slot].proxy_pred.take() {
            p.shutdown();
        }
        self.log.lock().push(ActivityEvent { node: slot, at: self.start.elapsed(), active: false });

        // Neighbours handshake around the hole.
        let (mut pred_rep, mut pred_tr) = self.park(pred)?;
        let (mut succ_rep, mut succ_tr) = match self.park(succ) {
            Ok(parked) => parked,
            Err(e) => {
                self.relaunch(pred, pred_rep, pred_tr);
                return Err(e);
            }
        };
        let succ_addrs = self.slots[succ].addrs;
        let pred_addrs = self.slots[pred].addrs;
        let pred_peer = match &self.slots[pred].proxy_succ {
            Some(p) => {
                p.set_dst(succ_addrs.pred);
                p.addr()
            }
            None => succ_addrs.pred,
        };
        pred_tr.resplice(Neighbor::Succ, succ as u16, pred_peer);
        let succ_peer = match &self.slots[succ].proxy_pred {
            Some(p) => {
                p.set_dst(pred_addrs.succ);
                p.addr()
            }
            None => pred_addrs.succ,
        };
        succ_tr.resplice(Neighbor::Pred, pred as u16, succ_peer);
        pred_rep.cache_succ = succ_rep.own;
        succ_rep.cache_pred = pred_rep.own;
        self.relaunch(pred, pred_rep, pred_tr);
        self.relaunch(succ, succ_rep, succ_tr);

        self.ring.remove(position);
        self.ring_size.store(self.ring.len(), Ordering::Relaxed);
        self.resplices += 1;
        self.note_liveness_change();
        Ok(format!("slot {slot} spliced out; ring is now {} nodes", self.ring.len()))
    }

    /// Ask the runner thread in `slot` to exit and hand back its replica
    /// and transport.
    fn park(&mut self, slot: usize) -> Result<(Replica<SsrState>, UdpTransport<SsrState>), String> {
        let s = &mut self.slots[slot];
        let Some(thread) = s.thread.take() else {
            return Err(format!("node {slot} is already down"));
        };
        s.kill.store(true, Ordering::Relaxed);
        let remains = thread.join().map_err(|_| format!("node {slot} thread panicked"))?;
        let s = &mut self.slots[slot];
        s.kill.store(false, Ordering::Relaxed);
        s.frozen.store(false, Ordering::Relaxed);
        Ok(remains)
    }

    /// Relaunch a parked splice participant, bumping its generation floor so
    /// frames from before the splice can never outrank it.
    fn relaunch(
        &mut self,
        slot: usize,
        replica: Replica<SsrState>,
        mut transport: UdpTransport<SsrState>,
    ) {
        self.slots[slot].incarnation += 1;
        let incarnation = self.slots[slot].incarnation;
        transport.advance_generation_to(incarnation.saturating_mul(GENERATION_STRIDE));
        self.launch(slot, replica, transport);
    }

    /// The tenant's current K bound.
    pub fn k(&self) -> u32 {
        self.algo.params().k()
    }

    /// Lifetime count of committed K-renegotiations.
    pub fn k_renegotiations(&self) -> u64 {
        self.k_renegotiations
    }

    /// Grow the tenant's K bound past its creation-time value: the same
    /// two-phase K-bump the membership layer performs. **Prepare** parks
    /// every live member under the ring-wide suspension (no rule engine may
    /// execute against half-committed parameters); an abort relaunches the
    /// already-parked members under the old K. **Commit** swaps the
    /// algorithm and relaunches everyone with a generation-floor rebind, so
    /// frames from the old-K ring die on the staleness filters. Returns the
    /// committed K.
    pub fn renegotiate_k(&mut self, new_k: u32) -> Result<u32, String> {
        let old_k = self.algo.params().k();
        let n = self.ring.len();
        if new_k <= old_k {
            return Err(format!("new k={new_k} does not exceed the current k={old_k}"));
        }
        let params = RingParams::new(n, new_k)
            .map_err(|e| format!("invalid parameters n={n}, k={new_k}: {e}"))?;
        self.suspended.store(true, Ordering::Relaxed);
        let mut parked = Vec::new();
        let order = self.ring.clone();
        for &slot in &order {
            if !self.node_up(slot) {
                continue;
            }
            match self.park(slot) {
                Ok((replica, transport)) => parked.push((slot, replica, transport)),
                Err(e) => {
                    for (s, replica, transport) in parked {
                        self.relaunch(s, replica, transport);
                    }
                    self.suspended.store(false, Ordering::Relaxed);
                    return Err(format!(
                        "k renegotiation aborted: could not park slot {slot}: {e}"
                    ));
                }
            }
        }
        self.algo = SsrMin::new(params);
        self.spec.k = new_k;
        for (slot, replica, transport) in parked {
            self.relaunch(slot, replica, transport);
        }
        self.suspended.store(false, Ordering::Relaxed);
        self.k_renegotiations += 1;
        Ok(new_k)
    }

    /// Apply a runtime chaos adjustment to the tenant's links.
    pub fn chaos(&self, cmd: ChaosCmd) -> Result<String, String> {
        if !self.spec.wants_chaos() {
            return Err("tenant has no chaos layer (created without loss/corrupt)".to_string());
        }
        let live_handles = || {
            self.slots
                .iter()
                .flat_map(|s| [s.proxy_succ.as_ref(), s.proxy_pred.as_ref()])
                .flatten()
                .map(ChaosProxy::handle)
        };
        match cmd {
            ChaosCmd::Partition { from, to, cut } => {
                let handle = self.directed_link(from, to)?;
                handle.set_partitioned(cut);
                Ok(format!("link {from}->{to} {}", if cut { "partitioned" } else { "healed" }))
            }
            ChaosCmd::Loss(p) => {
                for h in live_handles() {
                    h.set_loss_override(p);
                }
                Ok(format!("loss override {p:?} on all links"))
            }
            ChaosCmd::Corrupt(p) => {
                for h in live_handles() {
                    h.set_corrupt_override(p);
                }
                Ok(format!("corrupt override {p:?} on all links"))
            }
            ChaosCmd::Truncate(p) => {
                for h in live_handles() {
                    h.set_truncate_override(p);
                }
                Ok(format!("truncate override {p:?} on all links"))
            }
            ChaosCmd::Netem(name) => match name {
                Some(name) => {
                    let profile =
                        ssr_netem::LinkProfile::resolve(&name).map_err(|e| e.to_string())?;
                    // proxy_succ carries the forward (i -> succ) half of the
                    // profile, proxy_pred the reverse half.
                    let mut paced = 0usize;
                    for s in &self.slots {
                        if let Some(p) = s.proxy_succ.as_ref() {
                            p.handle()
                                .set_netem(Some(profile.forward))
                                .map_err(|e| e.to_string())?;
                            paced += 1;
                        }
                        if let Some(p) = s.proxy_pred.as_ref() {
                            p.handle()
                                .set_netem(Some(profile.reverse))
                                .map_err(|e| e.to_string())?;
                            paced += 1;
                        }
                    }
                    Ok(format!("netem profile '{}' pacing {paced} links", profile.name))
                }
                None => {
                    for h in live_handles() {
                        h.set_netem(None).map_err(|e| e.to_string())?;
                    }
                    Ok("netem pacing off on all links".to_string())
                }
            },
        }
    }

    /// Inject one fault into this tenant, supervisor-style.
    pub fn inject(&mut self, fault: FaultKind) -> Result<String, String> {
        let check = |ring: &HostedRing, node: usize| -> Result<usize, String> {
            if ring.slot_live(node) && ring.ring.contains(&node) {
                Ok(node)
            } else {
                Err(format!("node {node} is not a live member of the ring"))
            }
        };
        match fault {
            FaultKind::Crash { node, .. } => {
                let node = check(self, node)?;
                self.crash(node)
            }
            FaultKind::Restart { node } => {
                let node = check(self, node)?;
                self.restart(node)
            }
            FaultKind::FreezeNode { node } => {
                let node = check(self, node)?;
                self.slots[node].frozen.store(true, Ordering::Relaxed);
                Ok(format!("node {node} frozen (watchdog stage-2 will thaw it)"))
            }
            FaultKind::CorruptState { node } => {
                let node = check(self, node)?;
                let params = self.algo.params();
                let mut sample = ssr_adversary(
                    params,
                    self.spec.seed ^ u64::from(self.slots[node].incarnation).wrapping_add(0xC0),
                );
                let poisoned = sample(node, self.slots[node].incarnation);
                *self.slots[node].poison.lock() = Some(poisoned.snapshot());
                Ok(format!("node {node} state poisoned"))
            }
            FaultKind::Partition { from, to } => {
                self.chaos(ChaosCmd::Partition { from, to, cut: true })
            }
            FaultKind::Heal { from, to } => {
                self.chaos(ChaosCmd::Partition { from, to, cut: false })
            }
            FaultKind::Join { node } => {
                if node != self.ring.len() {
                    return Err(format!(
                        "join as node {node} does not extend the tail of a {}-ring",
                        self.ring.len()
                    ));
                }
                let slot = self.add_node()?;
                Ok(format!("slot {slot} joined; ring is now {} nodes", self.ring.len()))
            }
            FaultKind::Leave { node } => {
                let slot = *self
                    .ring
                    .get(node)
                    .ok_or_else(|| format!("ring position {node} is out of range"))?;
                self.remove_node(slot)
            }
            other => Err(format!("fault '{other}' is not supported on hosted tenants")),
        }
    }

    fn crash(&mut self, node: usize) -> Result<String, String> {
        let remains = self.park(node)?;
        self.slots[node].parked = Some(remains);
        // The privilege this node was logging is gone with the process.
        self.log.lock().push(ActivityEvent { node, at: self.start.elapsed(), active: false });
        self.note_liveness_change();
        Ok(format!("node {node} crashed"))
    }

    fn restart(&mut self, node: usize) -> Result<String, String> {
        let slot = &mut self.slots[node];
        let Some((_, mut transport)) = slot.parked.take() else {
            return Err(format!("node {node} is not down"));
        };
        slot.incarnation += 1;
        transport.advance_generation_to(slot.incarnation.saturating_mul(GENERATION_STRIDE));
        let mut amnesia = ssr_amnesia(self.algo.params(), self.spec.seed);
        let replica = amnesia(node, slot.incarnation);
        let incarnation = slot.incarnation;
        self.launch(node, replica, transport);
        self.note_liveness_change();
        Ok(format!("node {node} restarted (amnesia, incarnation {incarnation})"))
    }

    /// Chaos handle of the directed link `from → to`, if they are *current*
    /// ring neighbours (slot ids).
    fn directed_link(&self, from: usize, to: usize) -> Result<ChaosHandle, String> {
        let n = self.ring.len();
        let Some(pos) = self.ring.iter().position(|&s| s == from) else {
            return Err(format!("node {from} is not a live member of the ring"));
        };
        let proxy = if self.ring[(pos + 1) % n] == to {
            self.slots[from].proxy_succ.as_ref()
        } else if self.ring[(pos + n - 1) % n] == to {
            self.slots[from].proxy_pred.as_ref()
        } else {
            return Err(format!("{from}->{to} is not a ring link"));
        };
        proxy.map(ChaosProxy::handle).ok_or_else(|| format!("link {from}->{to} has no proxy"))
    }

    /// Stop every node thread and shut the chaos layer down. Idempotent;
    /// called on tenant deletion (and by drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for slot in &mut self.slots {
            if let Some(thread) = slot.thread.take() {
                let _ = thread.join();
            }
            slot.parked = None;
            if let Some(proxy) = slot.proxy_succ.take() {
                proxy.shutdown();
            }
            if let Some(proxy) = slot.proxy_pred.take() {
                proxy.shutdown();
            }
        }
    }
}

impl Drop for HostedRing {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_until(deadline_ms: u64, mut ok: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        while Instant::now() < deadline {
            if ok() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    #[test]
    fn hosts_a_ring_that_circulates_and_stops() {
        let mut ring = HostedRing::spawn(7, TenantSpec::named("t")).unwrap();
        assert_eq!(ring.n(), 5);
        assert_eq!(ring.tenant(), 7);
        assert!(
            wait_until(5_000, || {
                ring.metrics().node(0).rule_firings.load(std::sync::atomic::Ordering::Relaxed) > 3
            }),
            "node 0 never fired rules"
        );
        assert!(
            wait_until(2_000, || (1..=2).contains(&ring.privileged_count())),
            "privileged count never entered the (1,2) band"
        );
        ring.stop();
        ring.stop(); // idempotent
    }

    #[test]
    fn crash_restart_cycle_brings_the_node_back() {
        let mut ring = HostedRing::spawn(1, TenantSpec::named("t")).unwrap();
        assert!(ring.inject("crash 2".parse().unwrap()).is_ok());
        assert!(!ring.node_up(2));
        assert!(ring.inject("crash 2".parse().unwrap()).is_err(), "already down");
        assert!(ring.inject("restart 2".parse().unwrap()).is_ok());
        assert!(ring.node_up(2));
        assert_eq!(ring.incarnation(2), 1);
        // The restarted incarnation rejoins: its rule engine fires again.
        assert!(
            wait_until(5_000, || {
                ring.metrics().node(2).rule_firings.load(std::sync::atomic::Ordering::Relaxed) > 0
            }),
            "restarted node never fired a rule"
        );
        assert!(ring.inject("babble 0".parse().unwrap()).is_err(), "unsupported fault");
        ring.stop();
    }

    #[test]
    fn chaos_commands_need_a_chaos_layer() {
        let mut ring = HostedRing::spawn(2, TenantSpec::named("clean")).unwrap();
        assert!(ring.chaos(ChaosCmd::Loss(Some(0.5))).is_err());
        ring.stop();

        let spec = TenantSpec { loss: 0.1, ..TenantSpec::named("lossy") };
        let mut ring = HostedRing::spawn(3, spec).unwrap();
        assert!(ring.chaos(ChaosCmd::Loss(Some(0.5))).is_ok());
        assert!(ring.chaos(ChaosCmd::Partition { from: 0, to: 1, cut: true }).is_ok());
        assert!(ring.chaos(ChaosCmd::Partition { from: 0, to: 2, cut: true }).is_err());
        ring.stop();
    }

    #[test]
    fn add_and_remove_resize_the_hosted_ring() {
        // k=12 leaves growth headroom over the default 5 nodes.
        let spec = TenantSpec { k: 12, ..TenantSpec::named("elastic") };
        let mut ring = HostedRing::spawn(9, spec).unwrap();
        assert!(
            wait_until(5_000, || (1..=2).contains(&ring.privileged_count())),
            "never converged"
        );

        let slot = ring.add_node().expect("add");
        assert_eq!(slot, 5);
        assert_eq!(ring.n(), 6);
        assert_eq!(ring.resplices(), 1);
        assert!(
            wait_until(5_000, || (1..=2).contains(&ring.privileged_count())),
            "never reconverged after add"
        );

        let msg = ring.remove_node(2).expect("remove");
        assert!(msg.contains("spliced out"), "{msg}");
        assert_eq!(ring.n(), 5);
        assert!(!ring.slot_live(2));
        assert_eq!(ring.ring_order(), vec![0, 1, 3, 4, 5]);
        assert!(
            wait_until(5_000, || (1..=2).contains(&ring.privileged_count())),
            "never reconverged after remove"
        );

        // Guards: the anchor never leaves, retired slots stay retired, and
        // shrinking below n=3 is refused.
        assert!(ring.remove_node(0).unwrap_err().contains("anchor"));
        assert!(ring.remove_node(2).unwrap_err().contains("not a live member"));
        for slot in [1, 3] {
            ring.remove_node(slot).expect("shrink");
        }
        assert_eq!(ring.n(), 3);
        assert!(ring.remove_node(4).unwrap_err().contains("below n=3"));
        ring.stop();
    }

    #[test]
    fn membership_events_arrive_via_fault_injection_too() {
        let spec = TenantSpec { k: 9, ..TenantSpec::named("churny") };
        let mut ring = HostedRing::spawn(4, spec).unwrap();
        assert!(ring.inject("join 5".parse().unwrap()).is_ok());
        assert_eq!(ring.n(), 6);
        assert!(ring.inject("join 4".parse().unwrap()).is_err(), "must extend the tail");
        assert!(ring.inject("leave 3".parse().unwrap()).is_ok());
        assert_eq!(ring.n(), 5);
        assert!(ring.inject("leave 0".parse().unwrap()).is_err(), "anchor");
        ring.stop();
    }
}
