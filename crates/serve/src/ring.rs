//! One hosted tenant ring: n `run_node` threads over tenant-stamped
//! [`UdpTransport`]s, optionally behind per-link chaos proxies, living
//! until the tenant is deleted.
//!
//! This is `ssr_net::cluster`'s three-phase bring-up (bind → wire → spawn)
//! rebuilt for indefinite runs: instead of a fixed measurement window the
//! ring runs until its stop flag flips, and the supervisor machinery is
//! folded in per node — every node carries the two-stage convergence
//! watchdog, and the registry can crash, restart (amnesia + generation
//! overshoot past the staleness filters), freeze or state-corrupt
//! individual nodes at runtime, exactly like `ssrmin soak`'s fault
//! injector but scoped to one tenant.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use ssr_core::{Replica, SsrMin, SsrState};
use ssr_ctl::ChaosCmd;
use ssr_mpnet::FaultKind;
use ssr_net::chaos::{ChaosConfig, ChaosHandle, ChaosProxy};
use ssr_net::metrics::{MetricsRegistry, NodeMetrics};
use ssr_net::runner::{run_node, NodeConfig, NodeControl, Watchdog, WatchdogEvent};
use ssr_net::transport::UdpTransport;
use ssr_net::{ssr_adversary, ssr_amnesia};
use ssr_runtime::activity::ActivityEvent;

use crate::tenant::TenantSpec;

/// Generation overshoot per incarnation, mirroring the supervisor's rebind
/// floor: far larger than any generation a previous incarnation can have
/// stamped within its lifetime.
const GENERATION_STRIDE: u32 = 1 << 24;

/// One node's control surface and (when crashed) its parked remains.
struct NodeSlot {
    kill: Arc<AtomicBool>,
    frozen: Arc<AtomicBool>,
    poison: Arc<Mutex<Option<Vec<u8>>>>,
    thread: Option<JoinHandle<(Replica<SsrState>, UdpTransport<SsrState>)>>,
    /// Replica + transport handed back by a crashed node's thread, reused
    /// on restart so the ring keeps its wiring.
    parked: Option<(Replica<SsrState>, UdpTransport<SsrState>)>,
    incarnation: u32,
}

/// A live tenant ring.
pub struct HostedRing {
    algo: SsrMin,
    tenant: u16,
    spec: TenantSpec,
    start: Instant,
    stop: Arc<AtomicBool>,
    slots: Vec<NodeSlot>,
    metrics: MetricsRegistry,
    log: Arc<Mutex<Vec<ActivityEvent>>>,
    initial_active: Vec<bool>,
    /// Directed-link proxies (2n when the spec wants chaos, else empty);
    /// link `2i` is `i → succ(i)`, link `2i+1` is `i → pred(i)`.
    proxies: Vec<ChaosProxy>,
    handles: Vec<ChaosHandle>,
    watchdog_outbox: Arc<Mutex<Vec<WatchdogEvent>>>,
}

impl HostedRing {
    /// Bind, wire and start a tenant ring. `tenant` is the wire-level ring
    /// id stamped on every frame.
    pub fn spawn(tenant: u16, spec: TenantSpec) -> io::Result<HostedRing> {
        let params = spec.params().map_err(io::Error::other)?;
        let algo = SsrMin::new(params);
        let n = spec.nodes;
        let metrics = MetricsRegistry::new(n);
        let stop = Arc::new(AtomicBool::new(false));
        let log = Arc::new(Mutex::new(Vec::new()));
        let watchdog_outbox = Arc::new(Mutex::new(Vec::new()));
        let start = Instant::now();

        // Phase 1: bind every node's sockets, joined to the tenant.
        let mut transports = Vec::with_capacity(n);
        for i in 0..n {
            let pred = (i + n - 1) % n;
            let succ = (i + 1) % n;
            let mut t = UdpTransport::<SsrState>::bind(
                i as u16,
                pred as u16,
                succ as u16,
                spec.tick,
                spec.seed.wrapping_add(i as u64),
                metrics.arc_node(i),
            )?;
            t.set_tenant(tenant);
            transports.push(t);
        }
        let addrs = transports.iter().map(|t| t.local_addrs()).collect::<io::Result<Vec<_>>>()?;

        // Phase 2: wire the ring, through chaos proxies when asked for.
        let mut proxies = Vec::new();
        let mut handles = Vec::new();
        for (i, t) in transports.iter_mut().enumerate() {
            let pred = (i + n - 1) % n;
            let succ = (i + 1) % n;
            // Destination of states this node sends *to* each neighbour:
            // the neighbour's socket facing back at us.
            let to_succ = addrs[succ].pred;
            let to_pred = addrs[pred].succ;
            if spec.wants_chaos() {
                let mk = |dst, link_idx: u64| -> io::Result<ChaosProxy> {
                    let cfg = ChaosConfig {
                        seed: spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(link_idx),
                        loss: spec.loss,
                        corrupt: spec.corrupt,
                        ..ChaosConfig::default()
                    };
                    ChaosProxy::spawn(dst, cfg)
                };
                let p_succ = mk(to_succ, 2 * i as u64)?;
                let p_pred = mk(to_pred, 2 * i as u64 + 1)?;
                t.wire(p_pred.addr(), p_succ.addr());
                handles.push(p_succ.handle());
                handles.push(p_pred.handle());
                proxies.push(p_succ);
                proxies.push(p_pred);
            } else {
                t.wire(to_pred, to_succ);
            }
        }

        // Phase 3: spawn the node threads from the legitimate anchor with
        // coherent caches — a freshly provisioned tenant is immediately in
        // service; self-stabilization is for what the world does later.
        let initial = algo.legitimate_anchor(0);
        let mut ring = HostedRing {
            algo,
            tenant,
            spec,
            start,
            stop,
            slots: Vec::with_capacity(n),
            metrics,
            log,
            initial_active: Vec::with_capacity(n),
            proxies,
            handles,
            watchdog_outbox,
        };
        for (i, transport) in transports.into_iter().enumerate() {
            let pred = (i + n - 1) % n;
            let succ = (i + 1) % n;
            let replica = Replica::coherent(initial[i], initial[pred], initial[succ]);
            ring.initial_active.push(replica.is_privileged(&ring.algo, i));
            let slot = ring.make_slot(i);
            ring.slots.push(slot);
            ring.launch(i, replica, transport);
        }
        Ok(ring)
    }

    fn make_slot(&self, _i: usize) -> NodeSlot {
        NodeSlot {
            kill: Arc::new(AtomicBool::new(false)),
            frozen: Arc::new(AtomicBool::new(false)),
            poison: Arc::new(Mutex::new(None)),
            thread: None,
            parked: None,
            incarnation: 0,
        }
    }

    /// The per-node convergence-watchdog budget: the Lemma 5 `3n`-step
    /// bound scaled by the retransmit period, with the same slack and floor
    /// the soak supervisor uses.
    fn watchdog_budget(&self) -> Duration {
        let steps = (3 * self.spec.nodes).max(1) as u32;
        self.spec.tick.saturating_mul(steps.saturating_mul(16)).max(Duration::from_millis(400))
    }

    fn launch(&mut self, i: usize, replica: Replica<SsrState>, transport: UdpTransport<SsrState>) {
        let control = NodeControl {
            stop: Arc::clone(&self.stop),
            kill: Arc::clone(&self.slots[i].kill),
            snapshot: None,
            poison: Arc::clone(&self.slots[i].poison),
            frozen: Arc::clone(&self.slots[i].frozen),
            watchdog: Some(Watchdog {
                budget: self.watchdog_budget(),
                generation_bump: GENERATION_STRIDE,
                outbox: Arc::clone(&self.watchdog_outbox),
            }),
        };
        let algo = self.algo;
        let cfg = NodeConfig { exec_delay: self.spec.exec_delay, ..NodeConfig::default() };
        let log = Arc::clone(&self.log);
        let start = self.start;
        let metrics = self.metrics.arc_node(i);
        self.slots[i].thread = Some(std::thread::spawn(move || {
            run_node(algo, i, replica, transport, cfg, control, log, start, metrics)
        }));
    }

    /// Ring size.
    pub fn n(&self) -> usize {
        self.spec.nodes
    }

    /// The wire-level tenant id.
    pub fn tenant(&self) -> u16 {
        self.tenant
    }

    /// Time since the ring started.
    pub fn age(&self) -> Duration {
        self.start.elapsed()
    }

    /// The ring's start instant (activity-event timestamps are relative to
    /// it).
    pub fn started(&self) -> Instant {
        self.start
    }

    /// Initial privilege vector (the trace auditor's starting point).
    pub fn initial_active(&self) -> &[bool] {
        &self.initial_active
    }

    /// Drain recorded activity events older than `horizon` (ring-relative),
    /// leaving newer ones for the next drain so late-arriving transitions
    /// from other node threads keep their time order.
    pub fn drain_activity(&self, horizon: Duration) -> Vec<ActivityEvent> {
        let mut log = self.log.lock();
        let mut drained = Vec::new();
        let mut keep = Vec::with_capacity(log.len());
        for event in log.drain(..) {
            if event.at <= horizon {
                drained.push(event);
            } else {
                keep.push(event);
            }
        }
        *log = keep;
        drained.sort_by_key(|e| e.at);
        drained
    }

    /// Per-node metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of nodes currently evaluating themselves privileged (gauge
    /// scan; the authoritative audit replays the activity trace).
    pub fn privileged_count(&self) -> usize {
        (0..self.n()).filter(|&i| NodeMetrics::get(&self.metrics.node(i).privileged) == 1).count()
    }

    /// The node currently holding the primary token, if exactly visible.
    pub fn primary_holder(&self) -> Option<usize> {
        (0..self.n()).find(|&i| {
            self.slots[i].thread.is_some()
                && NodeMetrics::get(&self.metrics.node(i).token_primary) == 1
        })
    }

    /// Whether node `i`'s thread is up (not crashed).
    pub fn node_up(&self, i: usize) -> bool {
        self.slots[i].thread.is_some()
    }

    /// Node `i`'s incarnation count (restarts).
    pub fn incarnation(&self, i: usize) -> u32 {
        self.slots[i].incarnation
    }

    /// Total watchdog escalations reported by this ring's nodes.
    pub fn watchdog_escalations(&self) -> u64 {
        self.watchdog_outbox.lock().len() as u64
    }

    /// Apply a runtime chaos adjustment to the tenant's links.
    pub fn chaos(&self, cmd: ChaosCmd) -> Result<String, String> {
        if self.handles.is_empty() {
            return Err("tenant has no chaos layer (created without loss/corrupt)".to_string());
        }
        match cmd {
            ChaosCmd::Partition { from, to, cut } => {
                let link = self.directed_link(from, to)?;
                self.handles[link].set_partitioned(cut);
                Ok(format!("link {from}->{to} {}", if cut { "partitioned" } else { "healed" }))
            }
            ChaosCmd::Loss(p) => {
                for h in &self.handles {
                    h.set_loss_override(p);
                }
                Ok(format!("loss override {p:?} on all links"))
            }
            ChaosCmd::Corrupt(p) => {
                for h in &self.handles {
                    h.set_corrupt_override(p);
                }
                Ok(format!("corrupt override {p:?} on all links"))
            }
            ChaosCmd::Truncate(p) => {
                for h in &self.handles {
                    h.set_truncate_override(p);
                }
                Ok(format!("truncate override {p:?} on all links"))
            }
        }
    }

    /// Inject one fault into this tenant, supervisor-style.
    pub fn inject(&mut self, fault: FaultKind) -> Result<String, String> {
        let n = self.n();
        let check = |node: usize| -> Result<usize, String> {
            if node < n {
                Ok(node)
            } else {
                Err(format!("node {node} outside ring of {n}"))
            }
        };
        match fault {
            FaultKind::Crash { node, .. } => {
                let node = check(node)?;
                self.crash(node)
            }
            FaultKind::Restart { node } => {
                let node = check(node)?;
                self.restart(node)
            }
            FaultKind::FreezeNode { node } => {
                let node = check(node)?;
                self.slots[node].frozen.store(true, Ordering::Relaxed);
                Ok(format!("node {node} frozen (watchdog stage-2 will thaw it)"))
            }
            FaultKind::CorruptState { node } => {
                let node = check(node)?;
                let params = self.algo.params();
                let mut sample = ssr_adversary(
                    params,
                    self.spec.seed ^ u64::from(self.slots[node].incarnation).wrapping_add(0xC0),
                );
                let poisoned = sample(node, self.slots[node].incarnation);
                *self.slots[node].poison.lock() = Some(poisoned.snapshot());
                Ok(format!("node {node} state poisoned"))
            }
            FaultKind::Partition { from, to } => {
                self.chaos(ChaosCmd::Partition { from, to, cut: true })
            }
            FaultKind::Heal { from, to } => {
                self.chaos(ChaosCmd::Partition { from, to, cut: false })
            }
            other => Err(format!("fault '{other}' is not supported on hosted tenants")),
        }
    }

    fn crash(&mut self, node: usize) -> Result<String, String> {
        let slot = &mut self.slots[node];
        let Some(thread) = slot.thread.take() else {
            return Err(format!("node {node} is already down"));
        };
        slot.kill.store(true, Ordering::Relaxed);
        let remains = thread.join().map_err(|_| format!("node {node} thread panicked"))?;
        slot.kill.store(false, Ordering::Relaxed);
        slot.frozen.store(false, Ordering::Relaxed);
        slot.parked = Some(remains);
        // The privilege this node was logging is gone with the process.
        self.log.lock().push(ActivityEvent { node, at: self.start.elapsed(), active: false });
        Ok(format!("node {node} crashed"))
    }

    fn restart(&mut self, node: usize) -> Result<String, String> {
        let slot = &mut self.slots[node];
        let Some((_, mut transport)) = slot.parked.take() else {
            return Err(format!("node {node} is not down"));
        };
        slot.incarnation += 1;
        transport.advance_generation_to(slot.incarnation.saturating_mul(GENERATION_STRIDE));
        let mut amnesia = ssr_amnesia(self.algo.params(), self.spec.seed);
        let replica = amnesia(node, slot.incarnation);
        let incarnation = slot.incarnation;
        self.launch(node, replica, transport);
        Ok(format!("node {node} restarted (amnesia, incarnation {incarnation})"))
    }

    /// Index of the directed chaos link `from → to`, if they are ring
    /// neighbours.
    fn directed_link(&self, from: usize, to: usize) -> Result<usize, String> {
        let n = self.n();
        if from >= n || to >= n {
            return Err(format!("link {from}->{to} outside ring of {n}"));
        }
        if to == (from + 1) % n {
            Ok(2 * from)
        } else if to == (from + n - 1) % n {
            Ok(2 * from + 1)
        } else {
            Err(format!("{from}->{to} is not a ring link"))
        }
    }

    /// Stop every node thread and shut the chaos layer down. Idempotent;
    /// called on tenant deletion (and by drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for slot in &mut self.slots {
            if let Some(thread) = slot.thread.take() {
                let _ = thread.join();
            }
            slot.parked = None;
        }
        for proxy in self.proxies.drain(..) {
            proxy.shutdown();
        }
        self.handles.clear();
    }
}

impl Drop for HostedRing {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_until(deadline_ms: u64, mut ok: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        while Instant::now() < deadline {
            if ok() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    #[test]
    fn hosts_a_ring_that_circulates_and_stops() {
        let mut ring = HostedRing::spawn(7, TenantSpec::named("t")).unwrap();
        assert_eq!(ring.n(), 5);
        assert_eq!(ring.tenant(), 7);
        assert!(
            wait_until(5_000, || {
                ring.metrics().node(0).rule_firings.load(std::sync::atomic::Ordering::Relaxed) > 3
            }),
            "node 0 never fired rules"
        );
        assert!(
            wait_until(2_000, || (1..=2).contains(&ring.privileged_count())),
            "privileged count never entered the (1,2) band"
        );
        ring.stop();
        ring.stop(); // idempotent
    }

    #[test]
    fn crash_restart_cycle_brings_the_node_back() {
        let mut ring = HostedRing::spawn(1, TenantSpec::named("t")).unwrap();
        assert!(ring.inject("crash 2".parse().unwrap()).is_ok());
        assert!(!ring.node_up(2));
        assert!(ring.inject("crash 2".parse().unwrap()).is_err(), "already down");
        assert!(ring.inject("restart 2".parse().unwrap()).is_ok());
        assert!(ring.node_up(2));
        assert_eq!(ring.incarnation(2), 1);
        // The restarted incarnation rejoins: its rule engine fires again.
        assert!(
            wait_until(5_000, || {
                ring.metrics().node(2).rule_firings.load(std::sync::atomic::Ordering::Relaxed) > 0
            }),
            "restarted node never fired a rule"
        );
        assert!(ring.inject("babble 0".parse().unwrap()).is_err(), "unsupported fault");
        ring.stop();
    }

    #[test]
    fn chaos_commands_need_a_chaos_layer() {
        let mut ring = HostedRing::spawn(2, TenantSpec::named("clean")).unwrap();
        assert!(ring.chaos(ChaosCmd::Loss(Some(0.5))).is_err());
        ring.stop();

        let spec = TenantSpec { loss: 0.1, ..TenantSpec::named("lossy") };
        let mut ring = HostedRing::spawn(3, spec).unwrap();
        assert!(ring.chaos(ChaosCmd::Loss(Some(0.5))).is_ok());
        assert!(ring.chaos(ChaosCmd::Partition { from: 0, to: 1, cut: true }).is_ok());
        assert!(ring.chaos(ChaosCmd::Partition { from: 0, to: 2, cut: true }).is_err());
        ring.stop();
    }
}
