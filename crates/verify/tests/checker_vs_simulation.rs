//! The model checker's exact worst-case bound must dominate anything a
//! simulated adversary achieves — and the checker's legitimate census must
//! match the analytic enumeration.

use ssr_core::{legitimacy, RingAlgorithm, RingParams, SsrMin};
use ssr_verify::{space::ssrmin, verify};

#[test]
fn exact_bound_dominates_simulated_adversaries() {
    let algo = ssrmin(3, 4);
    let report = verify(&algo, 100_000).unwrap();
    assert!(report.converges);
    let exact = report.worst_case_steps as u64;

    // Drive every configuration under several adversarial schedules and
    // confirm none needs more steps than the checker's exact bound (a
    // strictly stronger check than Theorem 2's envelope).
    use ssr_daemon::daemons::{CentralLast, DelayDijkstra, Synchronous};
    use ssr_daemon::measure_convergence;
    let mut hardest_seen = 0u64;
    for idx in 0..algo.alphabet_count_pow() {
        let cfg = index_config(&algo, idx);
        for daemon_id in 0..3 {
            let steps = match daemon_id {
                0 => measure_convergence(algo, cfg.clone(), &mut CentralLast, exact + 1, 0),
                1 => measure_convergence(algo, cfg.clone(), &mut Synchronous, exact + 1, 0),
                _ => measure_convergence(
                    algo,
                    cfg.clone(),
                    &mut DelayDijkstra::seeded(idx),
                    exact + 1,
                    0,
                ),
            }
            .unwrap_or_else(|| panic!("config {idx} exceeded the exact bound {exact}"))
            .steps;
            hardest_seen = hardest_seen.max(steps);
        }
    }
    assert!(hardest_seen <= exact);
    // The simulated adversaries should come close to the bound (the bound
    // is tight over SOME schedule; ours reach at least half of it).
    assert!(hardest_seen * 2 >= exact, "adversaries too weak: saw {hardest_seen}, exact {exact}");
}

/// Helpers re-deriving the checker's indexing without exposing internals.
trait IndexExt {
    fn alphabet_count_pow(&self) -> u64;
}
impl IndexExt for SsrMin {
    fn alphabet_count_pow(&self) -> u64 {
        use ssr_verify::StateAlphabet;
        self.config_count().unwrap()
    }
}

fn index_config(algo: &SsrMin, idx: u64) -> Vec<ssr_core::SsrState> {
    use ssr_verify::StateAlphabet;
    algo.config_at(idx)
}

#[test]
fn checker_legitimate_census_matches_enumeration() {
    for (n, k) in [(3usize, 4u32), (3, 5), (4, 5)] {
        let params = RingParams::new(n, k).unwrap();
        let algo = SsrMin::new(params);
        let report = verify(&algo, 1_000_000).unwrap();
        let enumerated = legitimacy::enumerate_legitimate(params);
        assert_eq!(report.legitimate, enumerated.len() as u64);
        // Every enumerated configuration is indeed counted legitimate by the
        // algorithm the checker used.
        for cfg in &enumerated {
            assert!(algo.is_legitimate(cfg));
        }
    }
}

#[test]
fn worst_case_is_k_invariant_for_small_n() {
    // Empirical finding surfaced by the checker (see EXPERIMENTS.md): the
    // exact worst-case stabilization time does not depend on K.
    let r4 = verify(&ssrmin(3, 4), 1_000_000).unwrap();
    let r5 = verify(&ssrmin(3, 5), 1_000_000).unwrap();
    let r6 = verify(&ssrmin(3, 6), 1_000_000).unwrap();
    assert_eq!(r4.worst_case_steps, r5.worst_case_steps);
    assert_eq!(r5.worst_case_steps, r6.worst_case_steps);
}
