//! The exhaustive checker: explores the *entire* transition relation of the
//! unfair distributed daemon (every non-empty subset of enabled processes at
//! every configuration) and verifies the paper's properties mechanically.

use crate::space::StateAlphabet;

/// Which scheduler's transition relation to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonClass {
    /// One enabled process moves per step (the central daemon).
    Central,
    /// Any non-empty subset of enabled processes moves per step — the full
    /// unfair distributed daemon.
    Distributed,
}

/// Why verification could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The configuration space exceeds the given limit.
    SpaceTooLarge {
        /// Actual size (`None` if it overflows `u64`).
        size: Option<u64>,
        /// The caller's limit.
        limit: u64,
    },
    /// More processes were simultaneously enabled than the subset
    /// enumerator supports (2^e daemon choices; e capped at 20).
    TooManyEnabled {
        /// Enabled count encountered.
        enabled: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::SpaceTooLarge { size, limit } => match size {
                Some(s) => write!(f, "state space of {s} configurations exceeds limit {limit}"),
                None => write!(f, "state space overflows u64 (limit {limit})"),
            },
            VerifyError::TooManyEnabled { enabled } => {
                write!(f, "{enabled} simultaneously enabled processes exceed the subset cap")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The outcome of exhaustive verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Total configurations explored.
    pub configs: u64,
    /// Number of legitimate configurations.
    pub legitimate: u64,
    /// Lemma 4: every configuration has at least one enabled process.
    pub deadlock_free: bool,
    /// Lemma 1: every daemon choice from a legitimate configuration leads
    /// to a legitimate configuration.
    pub closure_holds: bool,
    /// Lemma 6 under the *full* unfair distributed daemon: no infinite
    /// execution stays illegitimate (the illegitimate sub-graph is acyclic).
    pub converges: bool,
    /// Exact worst-case stabilization time in steps: the longest possible
    /// schedule (over all initial configurations and all daemon choices)
    /// before the first legitimate configuration. Meaningful only when
    /// `converges` is true.
    pub worst_case_steps: u32,
    /// Minimum privileged-process count over ALL configurations (Lemma 3
    /// predicts ≥ 1 for SSRmin — mutual inclusion holds even while
    /// stabilizing in the state-reading model).
    pub min_privileged_all: usize,
    /// Maximum privileged-process count over all configurations.
    pub max_privileged_all: usize,
    /// Minimum privileged count over legitimate configurations (Theorem 1: 1).
    pub min_privileged_legit: usize,
    /// Maximum privileged count over legitimate configurations (Theorem 1: 2).
    pub max_privileged_legit: usize,
    /// Largest simultaneously-enabled set encountered.
    pub max_enabled: usize,
    /// Histogram of worst-case stabilization distances: `histogram[d]` is
    /// the number of configurations whose worst schedule needs exactly `d`
    /// steps to reach Λ (`histogram[0]` counts Λ itself). Empty when
    /// `converges` is false.
    pub dist_histogram: Vec<u64>,
}

/// All configurations reachable in one step: one entry per non-empty subset
/// of the enabled processes (the distributed daemon's choices).
pub fn successor_indices<A: StateAlphabet>(
    algo: &A,
    config: &[A::State],
    daemon: DaemonClass,
) -> Result<Vec<u64>, VerifyError> {
    let enabled: Vec<usize> = algo.enabled_processes(config);
    if enabled.len() > 20 {
        return Err(VerifyError::TooManyEnabled { enabled: enabled.len() });
    }
    match daemon {
        DaemonClass::Central => {
            let mut out = Vec::with_capacity(enabled.len());
            for &p in &enabled {
                let next = algo.step_set(config, &[p]).expect("enabled");
                out.push(algo.config_index(&next));
            }
            Ok(out)
        }
        DaemonClass::Distributed => {
            let mut out = Vec::with_capacity((1usize << enabled.len()).saturating_sub(1));
            for mask in 1u32..(1u32 << enabled.len()) {
                let subset: Vec<usize> = enabled
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| mask & (1 << j) != 0)
                    .map(|(_, &p)| p)
                    .collect();
                let next = algo.step_set(config, &subset).expect("subset of enabled");
                out.push(algo.config_index(&next));
            }
            Ok(out)
        }
    }
}

/// Exhaustively verify `algo` over its whole configuration space (refused
/// above `limit` configurations).
/// Exhaustively verify `algo` under the **distributed** daemon (the paper's
/// model). Shorthand for [`verify_under`] with [`DaemonClass::Distributed`].
pub fn verify<A: StateAlphabet + Sync>(algo: &A, limit: u64) -> Result<Report, VerifyError> {
    verify_under(algo, limit, DaemonClass::Distributed)
}

/// Exhaustively verify `algo` over its whole configuration space under the
/// chosen scheduler class (refused above `limit` configurations).
pub fn verify_under<A: StateAlphabet + Sync>(
    algo: &A,
    limit: u64,
    daemon: DaemonClass,
) -> Result<Report, VerifyError> {
    let total = match algo.config_count() {
        Some(t) if t <= limit => t,
        other => return Err(VerifyError::SpaceTooLarge { size: other, limit }),
    };
    let total_usize = total as usize;

    // Pass 1: legitimacy, deadlock, token bounds, closure. The per-index
    // work is independent, so the scan is data-parallel: each scoped thread
    // owns a disjoint chunk of the `legit` array and folds its own partial
    // aggregate; partials merge at join. (Pass 2's longest-path DFS is
    // inherently sequential.)
    #[derive(Clone, Copy)]
    struct Partial {
        legit_count: u64,
        deadlock_free: bool,
        closure_holds: bool,
        min_priv_all: usize,
        max_priv_all: usize,
        min_priv_legit: usize,
        max_priv_legit: usize,
        max_enabled: usize,
        error: bool,
    }
    impl Partial {
        fn identity() -> Self {
            Partial {
                legit_count: 0,
                deadlock_free: true,
                closure_holds: true,
                min_priv_all: usize::MAX,
                max_priv_all: 0,
                min_priv_legit: usize::MAX,
                max_priv_legit: 0,
                max_enabled: 0,
                error: false,
            }
        }
        fn merge(self, o: Self) -> Self {
            Partial {
                legit_count: self.legit_count + o.legit_count,
                deadlock_free: self.deadlock_free && o.deadlock_free,
                closure_holds: self.closure_holds && o.closure_holds,
                min_priv_all: self.min_priv_all.min(o.min_priv_all),
                max_priv_all: self.max_priv_all.max(o.max_priv_all),
                min_priv_legit: self.min_priv_legit.min(o.min_priv_legit),
                max_priv_legit: self.max_priv_legit.max(o.max_priv_legit),
                max_enabled: self.max_enabled.max(o.max_enabled),
                error: self.error || o.error,
            }
        }
    }

    let scan_range = |start: u64, legit_chunk: &mut [bool]| -> Partial {
        let mut p = Partial::identity();
        for (off, slot) in legit_chunk.iter_mut().enumerate() {
            let idx = start + off as u64;
            let cfg = algo.config_at(idx);
            let enabled = algo.enabled_processes(&cfg);
            p.max_enabled = p.max_enabled.max(enabled.len());
            if enabled.is_empty() {
                p.deadlock_free = false;
            }
            let privileged = algo.token_holders(&cfg).len();
            p.min_priv_all = p.min_priv_all.min(privileged);
            p.max_priv_all = p.max_priv_all.max(privileged);
            if algo.is_legitimate(&cfg) {
                *slot = true;
                p.legit_count += 1;
                p.min_priv_legit = p.min_priv_legit.min(privileged);
                p.max_priv_legit = p.max_priv_legit.max(privileged);
                match successor_indices(algo, &cfg, daemon) {
                    Ok(succs) => {
                        for succ in succs {
                            if !algo.is_legitimate(&algo.config_at(succ)) {
                                p.closure_holds = false;
                            }
                        }
                    }
                    Err(_) => p.error = true,
                }
            }
        }
        p
    };

    let mut legit = vec![false; total_usize];
    let threads = std::thread::available_parallelism().map(|x| x.get()).unwrap_or(1);
    let partial = if total < 65_536 || threads <= 1 {
        scan_range(0, &mut legit)
    } else {
        let chunk = total_usize.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (c, legit_chunk) in legit.chunks_mut(chunk).enumerate() {
                let start = (c * chunk) as u64;
                handles.push(scope.spawn(move || scan_range(start, legit_chunk)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("scan thread panicked"))
                .fold(Partial::identity(), Partial::merge)
        })
    };
    if partial.error {
        // Re-run the failing check sequentially to surface the exact error.
        for idx in 0..total {
            let cfg = algo.config_at(idx);
            if algo.is_legitimate(&cfg) {
                successor_indices(algo, &cfg, daemon)?;
            }
        }
    }
    let legit_count = partial.legit_count;
    let deadlock_free = partial.deadlock_free;
    let closure_holds = partial.closure_holds;
    let min_priv_all = partial.min_priv_all;
    let max_priv_all = partial.max_priv_all;
    let min_priv_legit = partial.min_priv_legit;
    let max_priv_legit = partial.max_priv_legit;
    let max_enabled = partial.max_enabled;

    // Pass 2: convergence + exact worst-case steps via longest-path DP on
    // the illegitimate sub-graph (iterative DFS with cycle detection).
    const UNSEEN: u8 = 0;
    const ON_STACK: u8 = 1;
    const DONE: u8 = 2;
    let mut color = vec![UNSEEN; total_usize];
    let mut dist = vec![0u32; total_usize]; // worst steps to reach Λ
    let mut converges = true;

    // Explicit DFS stack: (node, successors, next successor position).
    struct Frame {
        node: u64,
        succs: Vec<u64>,
        pos: usize,
        best: u32,
    }

    'outer: for start in 0..total {
        if color[start as usize] != UNSEEN || legit[start as usize] {
            continue;
        }
        let mut stack: Vec<Frame> = Vec::new();
        color[start as usize] = ON_STACK;
        let cfg = algo.config_at(start);
        stack.push(Frame {
            node: start,
            succs: successor_indices(algo, &cfg, daemon)?,
            pos: 0,
            best: 0,
        });

        while let Some(frame) = stack.last_mut() {
            if frame.pos < frame.succs.len() {
                let child = frame.succs[frame.pos];
                frame.pos += 1;
                let ci = child as usize;
                if legit[ci] {
                    // One step into Λ.
                    frame.best = frame.best.max(1);
                    continue;
                }
                match color[ci] {
                    UNSEEN => {
                        color[ci] = ON_STACK;
                        let ccfg = algo.config_at(child);
                        let succs = successor_indices(algo, &ccfg, daemon)?;
                        stack.push(Frame { node: child, succs, pos: 0, best: 0 });
                    }
                    ON_STACK => {
                        // An illegitimate cycle: the daemon can keep the
                        // system illegitimate forever — convergence broken.
                        converges = false;
                        break 'outer;
                    }
                    _ => {
                        frame.best = frame.best.max(1 + dist[ci]);
                    }
                }
            } else {
                let node = frame.node;
                let best = frame.best;
                dist[node as usize] = best;
                color[node as usize] = DONE;
                stack.pop();
                if let Some(parent) = stack.last_mut() {
                    parent.best = parent.best.max(1 + best);
                }
            }
        }
    }

    let worst_case_steps = if converges { dist.iter().copied().max().unwrap_or(0) } else { 0 };
    let dist_histogram = if converges {
        let mut h = vec![0u64; worst_case_steps as usize + 1];
        for (idx, &d) in dist.iter().enumerate() {
            // Λ members were never visited by the DFS (dist 0 is correct
            // for them); everything else carries its computed distance.
            let d = if legit[idx] { 0 } else { d };
            h[d as usize] += 1;
        }
        h
    } else {
        Vec::new()
    };

    Ok(Report {
        configs: total,
        legitimate: legit_count,
        deadlock_free,
        closure_holds,
        converges,
        worst_case_steps,
        min_privileged_all: if min_priv_all == usize::MAX { 0 } else { min_priv_all },
        max_privileged_all: max_priv_all,
        min_privileged_legit: if min_priv_legit == usize::MAX { 0 } else { min_priv_legit },
        max_privileged_legit: max_priv_legit,
        max_enabled,
        dist_histogram,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ssrmin;
    use ssr_core::{RingAlgorithm, RingParams, SsToken};

    #[test]
    fn ssrmin_n3_k4_fully_verified() {
        let a = ssrmin(3, 4);
        let r = verify(&a, 10_000).unwrap();
        assert_eq!(r.configs, 4096);
        assert_eq!(r.legitimate, 3 * 3 * 4); // 3nK
        assert!(r.deadlock_free, "{r:?}"); // Lemma 4
        assert!(r.closure_holds, "{r:?}"); // Lemma 1
        assert!(r.converges, "{r:?}"); // Lemma 6, full unfair daemon
        assert!(r.min_privileged_all >= 1, "{r:?}"); // Lemma 3: inclusion always
        assert_eq!(r.min_privileged_legit, 1); // Theorem 1
        assert_eq!(r.max_privileged_legit, 2); // Theorem 1
        assert!(r.worst_case_steps > 0);
        // Theorem 2 envelope for n = 3: comfortably below 40n² + 1000.
        assert!(r.worst_case_steps as u64 <= 40 * 9 + 1000, "{r:?}");
    }

    #[test]
    fn ssrmin_n3_k5_converges() {
        let a = ssrmin(3, 5);
        let r = verify(&a, 100_000).unwrap();
        assert_eq!(r.configs, 8000);
        assert!(r.converges && r.closure_holds && r.deadlock_free);
        assert!(r.min_privileged_all >= 1);
    }

    #[test]
    fn distance_histogram_is_consistent() {
        let a = ssrmin(3, 4);
        let r = verify(&a, 10_000).unwrap();
        let total: u64 = r.dist_histogram.iter().sum();
        assert_eq!(total, r.configs);
        assert_eq!(r.dist_histogram.len() as u32, r.worst_case_steps + 1);
        // Distance-0 bucket is exactly the legitimate set (no illegitimate
        // configuration is already "there").
        assert_eq!(r.dist_histogram[0], r.legitimate);
        // The worst bucket is non-empty by construction.
        assert!(*r.dist_histogram.last().unwrap() > 0);
    }

    #[test]
    fn dijkstra_n3_k4_verified() {
        let a = SsToken::new(RingParams::new(3, 4).unwrap());
        let r = verify(&a, 10_000).unwrap();
        assert_eq!(r.configs, 64);
        assert!(r.deadlock_free);
        assert!(r.closure_holds);
        assert!(r.converges);
        // Dijkstra: ≥1 token everywhere (his original theorem), exactly 1
        // in legitimate configurations.
        assert!(r.min_privileged_all >= 1);
        assert_eq!(r.min_privileged_legit, 1);
        assert_eq!(r.max_privileged_legit, 1);
    }

    #[test]
    fn dijkstra_k_equal_n_violates_convergence_under_distributed_daemon() {
        // The classic counterexample: with K = n the distributed daemon can
        // cycle forever outside Λ. Our RingParams refuses K <= n, so build
        // the check indirectly: K = n + 1 must converge...
        let good = SsToken::new(RingParams::new(3, 4).unwrap());
        assert!(verify(&good, 10_000).unwrap().converges);
        // ...and the checker must be *able* to detect non-convergence: a
        // fabricated broken algorithm cycles forever.
        struct Spinner;
        impl RingAlgorithm for Spinner {
            type State = u32;
            type Rule = ();
            fn n(&self) -> usize {
                3
            }
            fn enabled_rule(&self, _i: usize, _o: &u32, _p: &u32, _s: &u32) -> Option<()> {
                Some(())
            }
            fn execute(&self, _i: usize, _r: (), own: &u32, _p: &u32, _s: &u32) -> u32 {
                1 - *own // flip forever
            }
            fn tokens_at(&self, _i: usize, _o: &u32, _p: &u32, _s: &u32) -> ssr_core::TokenSet {
                ssr_core::TokenSet::new(true, false)
            }
            fn is_legitimate(&self, _c: &[u32]) -> bool {
                false // nothing is ever legitimate
            }
            fn validate_config(&self, _c: &[u32]) -> ssr_core::Result<()> {
                Ok(())
            }
        }
        impl StateAlphabet for Spinner {
            fn alphabet_size(&self) -> usize {
                2
            }
            fn state_index(&self, s: &u32) -> usize {
                *s as usize
            }
            fn state_at(&self, idx: usize) -> u32 {
                idx as u32
            }
        }
        let r = verify(&Spinner, 1_000).unwrap();
        assert!(!r.converges, "the checker must detect livelock");
    }

    #[test]
    fn dijkstra4_verified_under_both_daemon_classes() {
        use ssr_core::Dijkstra4;
        let a = Dijkstra4::new(6).unwrap();
        let central = verify_under(&a, 1_000_000, DaemonClass::Central).unwrap();
        let dist = verify_under(&a, 1_000_000, DaemonClass::Distributed).unwrap();
        for r in [&central, &dist] {
            assert!(r.deadlock_free && r.closure_holds && r.converges, "{r:?}");
            assert_eq!(r.min_privileged_legit, 1);
            assert_eq!(r.max_privileged_legit, 1);
        }
        // The distributed daemon can only be faster or equal per step count
        // (it may fire several privileges at once).
        assert!(dist.worst_case_steps <= central.worst_case_steps);
        assert_eq!(central.configs, 4u64.pow(6));
    }

    #[test]
    fn central_relation_is_a_subset_of_distributed() {
        let a = ssrmin(3, 4);
        for idx in [0u64, 100, 2048, 4095] {
            let cfg = a.config_at(idx);
            let c = successor_indices(&a, &cfg, DaemonClass::Central).unwrap();
            let d = successor_indices(&a, &cfg, DaemonClass::Distributed).unwrap();
            for s in &c {
                assert!(d.contains(s), "central successor missing from distributed");
            }
            assert!(d.len() >= c.len());
        }
    }

    #[test]
    fn space_limit_is_enforced() {
        let a = ssrmin(5, 7);
        match verify(&a, 1_000) {
            Err(VerifyError::SpaceTooLarge { size, limit }) => {
                assert_eq!(size, Some(28u64.pow(5)));
                assert_eq!(limit, 1_000);
            }
            other => panic!("expected SpaceTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        let e = VerifyError::SpaceTooLarge { size: Some(99), limit: 10 };
        assert!(e.to_string().contains("99"));
        let e = VerifyError::TooManyEnabled { enabled: 25 };
        assert!(e.to_string().contains("25"));
    }
}
