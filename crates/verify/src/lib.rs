//! # ssr-verify — explicit-state model checking of the ring algorithms
//!
//! Simulation samples executions; this crate checks **all** of them. For
//! rings small enough to enumerate, it explores the complete transition
//! relation of the *unfair distributed daemon* — every non-empty subset of
//! enabled processes at every one of the `(4K)^n` configurations — and
//! mechanically verifies:
//!
//! * **Lemma 1** (closure): every daemon choice maps Λ into Λ;
//! * **Lemma 3** (mutual inclusion everywhere): ≥ 1 privileged process in
//!   every configuration, legitimate or not;
//! * **Lemma 4** (no deadlock): every configuration has an enabled process;
//! * **Lemma 6 / Theorem 2** (convergence): the illegitimate sub-graph is
//!   acyclic — no scheduler can keep the system illegitimate forever — and,
//!   as a by-product of the longest-path computation, the **exact**
//!   worst-case stabilization time over all initial configurations and all
//!   daemon schedules;
//! * **Theorem 1**: privileged-count bounds over legitimate configurations.
//!
//! ```
//! use ssr_verify::{space::ssrmin, verify};
//!
//! let algo = ssrmin(3, 4); // 4096 configurations — fully checkable
//! let report = verify(&algo, 100_000).unwrap();
//! assert!(report.converges && report.closure_holds && report.deadlock_free);
//! assert!(report.min_privileged_all >= 1); // inclusion even while stabilizing
//! println!("exact worst-case stabilization: {} steps", report.worst_case_steps);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod space;

pub use checker::{successor_indices, verify, verify_under, DaemonClass, Report, VerifyError};
pub use space::StateAlphabet;
