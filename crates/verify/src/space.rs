//! State-space indexing: bijections between configurations and dense `u64`
//! indices, so the checker can colour the whole space with flat arrays.

use ssr_core::{Config, RingAlgorithm, RingParams, SsrState};

/// The per-process state alphabet of an algorithm, with a dense index.
pub trait StateAlphabet: RingAlgorithm {
    /// Number of distinct per-process states.
    fn alphabet_size(&self) -> usize;
    /// Dense index of a state, in `0..alphabet_size()`.
    fn state_index(&self, s: &Self::State) -> usize;
    /// Inverse of [`StateAlphabet::state_index`].
    fn state_at(&self, idx: usize) -> Self::State;

    /// Total number of configurations, `alphabet_size()^n`, if it fits.
    fn config_count(&self) -> Option<u64> {
        let a = self.alphabet_size() as u64;
        let mut total: u64 = 1;
        for _ in 0..self.n() {
            total = total.checked_mul(a)?;
        }
        Some(total)
    }

    /// Mixed-radix index of a configuration (process 0 least significant).
    fn config_index(&self, config: &[Self::State]) -> u64 {
        let a = self.alphabet_size() as u64;
        let mut idx: u64 = 0;
        for s in config.iter().rev() {
            idx = idx * a + self.state_index(s) as u64;
        }
        idx
    }

    /// Inverse of [`StateAlphabet::config_index`].
    fn config_at(&self, mut idx: u64) -> Config<Self::State> {
        let a = self.alphabet_size() as u64;
        (0..self.n())
            .map(|_| {
                let d = (idx % a) as usize;
                idx /= a;
                self.state_at(d)
            })
            .collect()
    }
}

/// SSRmin's alphabet: `4K` states per process (Theorem 1).
impl StateAlphabet for ssr_core::SsrMin {
    fn alphabet_size(&self) -> usize {
        4 * self.params().k() as usize
    }

    fn state_index(&self, s: &SsrState) -> usize {
        (s.x as usize) * 4 + s.flag_code() as usize
    }

    fn state_at(&self, idx: usize) -> SsrState {
        let x = (idx / 4) as u32;
        let flags = idx % 4;
        SsrState::new(x, (flags >> 1) as u8, (flags & 1) as u8)
    }
}

/// Dijkstra's four-state alphabet: `x` and `up` bits.
impl StateAlphabet for ssr_core::Dijkstra4 {
    fn alphabet_size(&self) -> usize {
        4
    }

    fn state_index(&self, s: &ssr_core::D4State) -> usize {
        (s.x as usize) << 1 | s.up as usize
    }

    fn state_at(&self, idx: usize) -> ssr_core::D4State {
        ssr_core::D4State::new((idx >> 1) as u8, (idx & 1) as u8)
    }
}

/// Dijkstra's alphabet: `K` counter values.
impl StateAlphabet for ssr_core::SsToken {
    fn alphabet_size(&self) -> usize {
        self.params().k() as usize
    }

    fn state_index(&self, s: &u32) -> usize {
        *s as usize
    }

    fn state_at(&self, idx: usize) -> u32 {
        idx as u32
    }
}

/// Helper: ring parameters small enough for exhaustive checking. Returns
/// the configuration count or `None` if above `limit`.
pub fn exhaustive_size<A: StateAlphabet>(algo: &A, limit: u64) -> Option<u64> {
    algo.config_count().filter(|&c| c <= limit)
}

/// Convenience constructor used by tests and experiment binaries.
pub fn ssrmin(n: usize, k: u32) -> ssr_core::SsrMin {
    ssr_core::SsrMin::new(RingParams::new(n, k).expect("valid parameters"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::SsToken;

    #[test]
    fn ssrmin_state_index_roundtrip() {
        let a = ssrmin(3, 4);
        assert_eq!(a.alphabet_size(), 16);
        for idx in 0..16 {
            let s = a.state_at(idx);
            assert_eq!(a.state_index(&s), idx);
        }
    }

    #[test]
    fn ssrmin_config_index_roundtrip() {
        let a = ssrmin(3, 4);
        assert_eq!(a.config_count(), Some(4096));
        for idx in [0u64, 1, 17, 4095, 2048] {
            let cfg = a.config_at(idx);
            assert_eq!(a.config_index(&cfg), idx);
        }
        // And the other direction on a known config.
        let cfg = a.legitimate_anchor(2);
        let idx = a.config_index(&cfg);
        assert_eq!(a.config_at(idx), cfg);
    }

    #[test]
    fn dijkstra_alphabet() {
        let a = SsToken::new(RingParams::new(4, 5).unwrap());
        assert_eq!(a.alphabet_size(), 5);
        assert_eq!(a.config_count(), Some(625));
        let cfg = vec![4u32, 0, 3, 2];
        assert_eq!(a.config_at(a.config_index(&cfg)), cfg);
    }

    #[test]
    fn config_count_overflow_returns_none() {
        let a = ssrmin(64, 65);
        assert_eq!(a.config_count(), None);
    }

    #[test]
    fn exhaustive_size_respects_limit() {
        let a = ssrmin(3, 4);
        assert_eq!(exhaustive_size(&a, 10_000), Some(4096));
        assert_eq!(exhaustive_size(&a, 1_000), None);
    }
}
