//! Runtime configuration.

use std::time::Duration;

/// Parameters of the threaded ring runtime.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Periodic retransmission interval (CST timer). Every node rebroadcasts
    /// its state at least this often, which is what repairs lost messages
    /// and stale caches.
    pub tick: Duration,
    /// Critical-section dwell time: how long a node works before executing
    /// the enabled rule that hands its token on.
    pub exec_delay: Duration,
    /// Probability that an incoming message is dropped (simulated wireless
    /// loss, decided by the receiving node's seeded RNG).
    pub loss: f64,
    /// Base RNG seed; node `i` uses `seed + i`.
    pub seed: u64,
    /// Neighbour-silence suspicion threshold: if a node hears nothing from
    /// a neighbour for this long, it counts a suspected failure
    /// (`NodeStats::suspicions`). `Duration::ZERO` disables the watchdog.
    pub suspicion: std::time::Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            tick: Duration::from_millis(5),
            exec_delay: Duration::ZERO,
            loss: 0.0,
            seed: 0,
            suspicion: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_lossless_and_fast() {
        let c = RuntimeConfig::default();
        assert_eq!(c.loss, 0.0);
        assert_eq!(c.exec_delay, Duration::ZERO);
        assert!(c.tick > Duration::ZERO);
        assert_eq!(c.suspicion, Duration::ZERO, "watchdog off by default");
    }
}
