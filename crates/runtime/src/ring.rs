//! The threaded ring: one OS thread per node, crossbeam channels as links,
//! CST gossip (send-on-update + periodic resend), and a shared activity log.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ssr_core::{Config, Replica, RingAlgorithm};

use crate::activity::ActivityEvent;
use crate::config::RuntimeConfig;

/// Per-node runtime statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Rules executed.
    pub rules_executed: u64,
    /// Messages received and processed.
    pub messages_received: u64,
    /// Messages dropped by the simulated loss process.
    pub messages_dropped: u64,
    /// Broadcasts attempted (each reaches up to two neighbours).
    pub broadcasts: u64,
    /// Watchdog alarms: times a neighbour stayed silent beyond the
    /// suspicion threshold (see `RuntimeConfig::suspicion`).
    pub suspicions: u64,
}

/// Everything a finished run yields.
#[derive(Debug, Clone)]
pub struct RunOutcome<S> {
    /// Each node's final algorithm state.
    pub final_states: Config<S>,
    /// Each node's activity at time zero (for coverage analysis).
    pub initial_active: Vec<bool>,
    /// Privilege transitions, sorted by time.
    pub events: Vec<ActivityEvent>,
    /// Per-node statistics.
    pub stats: Vec<NodeStats>,
    /// Actual observed duration.
    pub observed: Duration,
}

/// A message delivered to a node's inbox.
#[derive(Debug, Clone)]
enum NodeMsg<S> {
    /// A neighbour's state broadcast: `(sender index, state)`.
    State(usize, S),
    /// A fault-injector command: overwrite this node's own state.
    Corrupt(S),
}

/// Run a ring of `algo.n()` threads for `duration`, starting from `initial`
/// with coherent caches, and collect the activity log.
///
/// Each thread owns a [`Replica`]; on receipt it refreshes the cache, logs
/// any privilege change, optionally dwells `exec_delay` in the critical
/// section, executes one enabled rule and rebroadcasts; on a `tick` timeout
/// it rebroadcasts regardless (the CST periodic timer).
pub fn run_ring<A>(
    algo: A,
    initial: Config<A::State>,
    cfg: RuntimeConfig,
    duration: Duration,
) -> ssr_core::Result<RunOutcome<A::State>>
where
    A: RingAlgorithm + Clone + Send + Sync + 'static,
    A::State: Send + 'static,
{
    run_ring_with_faults(algo, initial, cfg, duration, Vec::new())
}

/// [`run_ring`] plus a transient-fault schedule: at each `(when, node,
/// state)` an injector thread overwrites `node`'s protocol state with
/// `state` — soft errors striking a live deployment. The schedule must be
/// sorted by time.
pub fn run_ring_with_faults<A>(
    algo: A,
    initial: Config<A::State>,
    cfg: RuntimeConfig,
    duration: Duration,
    faults: Vec<(Duration, usize, A::State)>,
) -> ssr_core::Result<RunOutcome<A::State>>
where
    A: RingAlgorithm + Clone + Send + Sync + 'static,
    A::State: Send + 'static,
{
    algo.validate_config(&initial)?;
    let n = algo.n();
    for &(_, node, _) in &faults {
        if node >= n {
            return Err(ssr_core::CoreError::ProcessOutOfRange { process: node, n });
        }
    }

    // One inbound channel per node, fed by both neighbours. A small bound
    // plus drop-on-full gives the "one message in flight" flavour of the
    // paper's links without blocking senders.
    let mut txs: Vec<Sender<NodeMsg<A::State>>> = Vec::with_capacity(n);
    let mut rxs: Vec<Option<Receiver<NodeMsg<A::State>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded::<NodeMsg<A::State>>(4);
        txs.push(tx);
        rxs.push(Some(rx));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let log: Arc<Mutex<Vec<ActivityEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();

    let mut initial_active = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let pred = if i == 0 { n - 1 } else { i - 1 };
        let succ = if i + 1 == n { 0 } else { i + 1 };
        let replica: Replica<A::State> =
            Replica::coherent(initial[i].clone(), initial[pred].clone(), initial[succ].clone());
        initial_active.push(replica.is_privileged(&algo, i));

        let rx = rxs[i].take().expect("receiver taken once");
        let tx_pred = txs[pred].clone();
        let tx_succ = txs[succ].clone();
        let algo = algo.clone();
        let stop = Arc::clone(&stop);
        let log = Arc::clone(&log);
        let node_cfg = cfg;

        handles.push(thread::spawn(move || {
            node_main(algo, i, replica, rx, tx_pred, tx_succ, node_cfg, stop, log, start)
        }));
    }
    // Fault injector: replay the schedule against the live ring.
    let injector = if faults.is_empty() {
        None
    } else {
        let fault_txs = txs.clone();
        Some(thread::spawn(move || {
            for (when, node, state) in faults {
                let elapsed = start.elapsed();
                if when > elapsed {
                    thread::sleep(when - elapsed);
                }
                // Blocking send: the fault must land even if the inbox is
                // momentarily full.
                let _ = fault_txs[node].send(NodeMsg::Corrupt(state));
            }
        }))
    };
    drop(txs);

    thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = injector {
        h.join().expect("fault injector panicked");
    }

    let mut final_states = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(n);
    for h in handles {
        let (state, st) = h.join().expect("node thread panicked");
        final_states.push(state);
        stats.push(st);
    }
    let observed = start.elapsed();

    let mut events = Arc::try_unwrap(log).expect("all threads joined").into_inner();
    events.sort_by_key(|e| e.at);

    Ok(RunOutcome { final_states, initial_active, events, stats, observed })
}

#[allow(clippy::too_many_arguments)]
fn node_main<A>(
    algo: A,
    i: usize,
    mut replica: Replica<A::State>,
    rx: Receiver<NodeMsg<A::State>>,
    tx_pred: Sender<NodeMsg<A::State>>,
    tx_succ: Sender<NodeMsg<A::State>>,
    cfg: RuntimeConfig,
    stop: Arc<AtomicBool>,
    log: Arc<Mutex<Vec<ActivityEvent>>>,
    start: Instant,
) -> (A::State, NodeStats)
where
    A: RingAlgorithm,
{
    let n = algo.n();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(i as u64));
    let mut stats = NodeStats::default();
    let mut last_privileged = replica.is_privileged(&algo, i);
    let pred = if i == 0 { n - 1 } else { i - 1 };
    let succ = if i + 1 == n { 0 } else { i + 1 };
    let mut last_heard = [Instant::now(); 2]; // [pred, succ]
    let mut suspected = [false; 2];

    let broadcast = |replica: &Replica<A::State>, stats: &mut NodeStats| {
        // try_send drops when the neighbour's queue is full — the periodic
        // timer guarantees a fresh state arrives eventually, mirroring the
        // paper's single-capacity links with coalescing.
        let _ = tx_pred.try_send(NodeMsg::State(i, replica.own.clone()));
        let _ = tx_succ.try_send(NodeMsg::State(i, replica.own.clone()));
        stats.broadcasts += 1;
    };

    let log_transition = |replica: &Replica<A::State>, last: &mut bool| {
        let now_privileged = replica.is_privileged(&algo, i);
        if now_privileged != *last {
            *last = now_privileged;
            let mut guard = log.lock();
            guard.push(ActivityEvent { node: i, at: start.elapsed(), active: now_privileged });
        }
    };

    // Announce the initial state so coherent peers stay coherent and
    // incoherent ones converge.
    broadcast(&replica, &mut stats);

    while !stop.load(Ordering::Relaxed) {
        match rx.recv_timeout(cfg.tick) {
            Ok(NodeMsg::Corrupt(state)) => {
                // A transient fault: the protocol state is overwritten; the
                // node keeps running and self-stabilization takes over.
                replica.own = state;
                log_transition(&replica, &mut last_privileged);
                broadcast(&replica, &mut stats);
            }
            Ok(NodeMsg::State(from, state)) => {
                if cfg.loss > 0.0 && rng.random_bool(cfg.loss) {
                    stats.messages_dropped += 1;
                    continue;
                }
                stats.messages_received += 1;
                let slot = if from == pred { 0 } else { 1 };
                last_heard[slot] = Instant::now();
                suspected[slot] = false;
                replica.update_cache(n, i, from, state);
                // Privilege may change on a pure cache refresh (e.g. the
                // primary token arriving) — log before any dwell.
                log_transition(&replica, &mut last_privileged);
                if replica.enabled_rule(&algo, i).is_some() {
                    if !cfg.exec_delay.is_zero() {
                        // Critical-section dwell: the node stays privileged
                        // while it does its work.
                        thread::sleep(cfg.exec_delay);
                    }
                    if replica.execute_one(&algo, i).is_some() {
                        stats.rules_executed += 1;
                        broadcast(&replica, &mut stats);
                    }
                    log_transition(&replica, &mut last_privileged);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                broadcast(&replica, &mut stats);
                // Watchdog: flag neighbours that have gone silent.
                if !cfg.suspicion.is_zero() {
                    for (slot, _neighbour) in [(0usize, pred), (1, succ)] {
                        if !suspected[slot] && last_heard[slot].elapsed() > cfg.suspicion {
                            suspected[slot] = true;
                            stats.suspicions += 1;
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    (replica.own.clone(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::analyze;
    use ssr_core::{RingParams, SsToken, SsrMin};

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn ssrmin_ring_runs_and_circulates() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let cfg = RuntimeConfig { tick: ms(2), ..RuntimeConfig::default() };
        let out = run_ring(a, a.legitimate_anchor(0), cfg, ms(300)).unwrap();
        let total_rules: u64 = out.stats.iter().map(|s| s.rules_executed).sum();
        assert!(total_rules > 10, "tokens must circulate ({total_rules} rules)");
        assert!(!out.events.is_empty(), "privilege must change hands");
        // Events sorted.
        for w in out.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn ssrmin_coverage_has_no_gap_from_legitimate_start() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let cfg = RuntimeConfig { tick: ms(2), exec_delay: ms(1), ..RuntimeConfig::default() };
        let out = run_ring(a, a.legitimate_anchor(0), cfg, ms(400)).unwrap();
        let report = analyze(&out.initial_active, &out.events, out.observed, ms(0));
        assert_eq!(
            report.uncovered,
            Duration::ZERO,
            "graceful handover must leave no gap: {report:?}"
        );
        assert!(report.min_active >= 1);
        assert!(report.max_active <= 2, "(1,2)-CS bound: {report:?}");
        assert!(report.activations > 2, "handovers must actually happen");
    }

    #[test]
    fn dijkstra_ring_has_coverage_gaps() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsToken::new(p);
        let cfg = RuntimeConfig { tick: ms(2), exec_delay: ms(1), ..RuntimeConfig::default() };
        let out = run_ring(a, a.uniform_config(0), cfg, ms(400)).unwrap();
        let report = analyze(&out.initial_active, &out.events, out.observed, ms(0));
        assert!(
            report.uncovered > Duration::ZERO,
            "token-in-flight instants must show up as gaps: {report:?}"
        );
    }

    #[test]
    fn converges_from_random_start_with_loss() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let initial = vec![
            "6.1.1".parse().unwrap(),
            "2.0.1".parse().unwrap(),
            "4.1.0".parse().unwrap(),
            "0.0.0".parse().unwrap(),
            "3.1.1".parse().unwrap(),
        ];
        let cfg = RuntimeConfig { tick: ms(2), loss: 0.1, seed: 42, ..RuntimeConfig::default() };
        let out = run_ring(a, initial, cfg, ms(600)).unwrap();
        // After the run, the final snapshot must be a legitimate
        // configuration (the ring can only be caught mid-handover, and all
        // mid-handover ground configurations of SSRmin are legitimate).
        assert!(
            a.is_legitimate(&out.final_states),
            "final states {:?}",
            out.final_states.iter().map(|s| s.to_string()).collect::<Vec<_>>()
        );
        let dropped: u64 = out.stats.iter().map(|s| s.messages_dropped).sum();
        assert!(dropped > 0, "loss process must fire");
    }

    #[test]
    fn injected_faults_are_healed_live() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let faults: Vec<(Duration, usize, ssr_core::SsrState)> = vec![
            (ms(100), 2, "6.1.1".parse().unwrap()),
            (ms(160), 4, "1.0.1".parse().unwrap()),
            (ms(220), 0, "5.1.0".parse().unwrap()),
        ];
        // exec_delay keeps the handover overlap long relative to OS
        // scheduling skew, so the wall-clock log stays gap-free even on a
        // single-core runner (see CONTRIBUTING.md).
        let cfg =
            RuntimeConfig { tick: ms(2), exec_delay: ms(1), seed: 3, ..RuntimeConfig::default() };
        let out = run_ring_with_faults(a, a.legitimate_anchor(0), cfg, ms(700), faults).unwrap();
        // Well after the last fault the snapshot is legitimate again.
        assert!(
            a.is_legitimate(&out.final_states),
            "failed to heal: {:?}",
            out.final_states.iter().map(|s| s.to_string()).collect::<Vec<_>>()
        );
        // And the post-fault tail shows coverage (generous warmup past the
        // last fault + recovery time).
        let report = analyze(&out.initial_active, &out.events, out.observed, ms(400));
        assert_eq!(report.uncovered, Duration::ZERO, "{report:?}");
    }

    #[test]
    fn watchdog_stays_quiet_on_a_healthy_ring() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let cfg = RuntimeConfig {
            tick: ms(2),
            suspicion: Duration::from_millis(120),
            ..RuntimeConfig::default()
        };
        let out = run_ring(a, a.legitimate_anchor(0), cfg, ms(400)).unwrap();
        let total: u64 = out.stats.iter().map(|s| s.suspicions).sum();
        assert_eq!(total, 0, "healthy neighbours must not be suspected");
    }

    #[test]
    fn watchdog_fires_under_total_loss() {
        // 100% inbound loss: every node drops everything it receives, so
        // every node eventually suspects both neighbours.
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let cfg = RuntimeConfig {
            tick: ms(2),
            loss: 1.0,
            suspicion: Duration::from_millis(40),
            ..RuntimeConfig::default()
        };
        let out = run_ring(a, a.legitimate_anchor(0), cfg, ms(400)).unwrap();
        let total: u64 = out.stats.iter().map(|s| s.suspicions).sum();
        assert!(total >= 5, "watchdog must notice the dead air: {total}");
    }

    #[test]
    fn fault_schedule_rejects_bad_node() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let faults = vec![(ms(10), 9usize, "0.0.0".parse().unwrap())];
        assert!(run_ring_with_faults(
            a,
            a.legitimate_anchor(0),
            RuntimeConfig::default(),
            ms(10),
            faults
        )
        .is_err());
    }

    #[test]
    fn sixteen_node_ring_covers_continuously() {
        let p = RingParams::minimal(16).unwrap();
        let a = SsrMin::new(p);
        let cfg = RuntimeConfig { tick: ms(2), exec_delay: ms(1), ..RuntimeConfig::default() };
        let out = run_ring(a, a.legitimate_anchor(0), cfg, ms(600)).unwrap();
        let report = analyze(&out.initial_active, &out.events, out.observed, ms(0));
        assert_eq!(report.uncovered, Duration::ZERO, "{report:?}");
        assert!(report.max_active <= 2);
    }

    /// Long soak for manual runs: `cargo test -p ssr-runtime -- --ignored`.
    #[test]
    #[ignore = "multi-second soak; run explicitly"]
    fn soak_thirty_two_nodes_ten_seconds() {
        let p = RingParams::minimal(32).unwrap();
        let a = SsrMin::new(p);
        let cfg = RuntimeConfig {
            tick: ms(2),
            exec_delay: ms(1),
            loss: 0.05,
            seed: 99,
            suspicion: Duration::from_millis(250),
        };
        let out = run_ring(a, a.legitimate_anchor(0), cfg, Duration::from_secs(10)).unwrap();
        let report = analyze(&out.initial_active, &out.events, out.observed, ms(100));
        assert_eq!(report.uncovered, Duration::ZERO, "{report:?}");
        assert!(a.is_legitimate(&out.final_states));
        let suspicions: u64 = out.stats.iter().map(|s| s.suspicions).sum();
        assert_eq!(suspicions, 0, "no healthy neighbour should be suspected");
    }

    #[test]
    fn rejects_invalid_initial_config() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        assert!(run_ring(a, vec![], RuntimeConfig::default(), ms(10)).is_err());
    }
}
