//! # ssr-runtime — a real threaded message-passing deployment of SSRmin
//!
//! Where `ssr-mpnet` simulates the message-passing system deterministically,
//! this crate *runs* it: one OS thread per ring node, crossbeam channels as
//! links, CST gossip (send-on-update plus a periodic retransmission timer),
//! genuine wall-clock asynchrony, and optional message loss. On top sits the
//! paper's motivating application — a self-organizing camera network with
//! guaranteed continuous observation ([`camera`]).
//!
//! ```no_run
//! use std::time::Duration;
//! use ssr_runtime::camera::CameraNetwork;
//!
//! let net = CameraNetwork::new(8).unwrap();
//! let report = net
//!     .observe(Duration::from_secs(2), Duration::from_millis(100))
//!     .unwrap();
//! assert!(report.continuous(), "at least one camera was on at all times");
//! println!("mean duty cycle: {:.2}", report.mean_duty_cycle());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod camera;
pub mod config;
pub mod energy;
pub mod ring;

pub use activity::{analyze, ActivityEvent, CoverageReport};
pub use camera::{dijkstra_camera_observe, CameraNetwork, CameraReport};
pub use config::RuntimeConfig;
pub use energy::{estimate as estimate_energy, min_sustainable_ring, EnergyReport, PowerProfile};
pub use ring::{run_ring, run_ring_with_faults, NodeStats, RunOutcome};
pub use ssr_core::Replica;
