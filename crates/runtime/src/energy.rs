//! The energy model behind the paper's motivation: active (monitoring)
//! nodes burn power; inactive nodes idle and recharge. Given a coverage
//! report's duty cycles, estimate per-node consumption and whether a solar
//! / harvesting budget sustains the deployment indefinitely.

use std::time::Duration;

use crate::activity::CoverageReport;

/// Power profile of a node, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Draw while the camera records (privileged / in critical section).
    pub active_mw: f64,
    /// Draw while idle (radio duty-cycled, camera off).
    pub idle_mw: f64,
    /// Mean harvest rate (solar / scavenging), available in both states.
    pub harvest_mw: f64,
}

impl PowerProfile {
    /// A plausible battery camera node: 900 mW recording, 45 mW idle,
    /// 120 mW average harvest.
    pub fn typical_camera() -> Self {
        PowerProfile { active_mw: 900.0, idle_mw: 45.0, harvest_mw: 120.0 }
    }
}

/// Per-deployment energy estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Mean net power draw per node (negative = net charging), mW.
    pub net_mw: Vec<f64>,
    /// The worst (most-draining) node's net draw, mW.
    pub worst_net_mw: f64,
    /// True iff every node's harvest covers its mean consumption — the
    /// deployment runs indefinitely.
    pub sustainable: bool,
    /// Estimated battery life of the worst node for the given capacity
    /// (mWh), if not sustainable.
    pub worst_battery_life: Option<Duration>,
}

/// Estimate energy from measured duty cycles.
///
/// `battery_mwh` is each node's battery capacity; used only for the
/// battery-life estimate when the deployment is not sustainable.
pub fn estimate(report: &CoverageReport, profile: PowerProfile, battery_mwh: f64) -> EnergyReport {
    let net_mw: Vec<f64> = report
        .duty_cycle
        .iter()
        .map(|&d| {
            let draw = d * profile.active_mw + (1.0 - d) * profile.idle_mw;
            draw - profile.harvest_mw
        })
        .collect();
    let worst = net_mw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sustainable = worst <= 0.0;
    let worst_battery_life = if sustainable || worst <= 0.0 {
        None
    } else {
        let hours = battery_mwh / worst;
        Some(Duration::from_secs_f64(hours * 3600.0))
    };
    EnergyReport { net_mw, worst_net_mw: worst, sustainable, worst_battery_life }
}

/// The break-even network size: with a fair rotation, each node's duty
/// cycle is between `1/n` and `2/n`, so the largest sustainable duty cycle
/// determines the minimum ring size for perpetual operation.
pub fn min_sustainable_ring(profile: PowerProfile) -> Option<usize> {
    // Solve duty * active + (1 - duty) * idle <= harvest for duty.
    let denom = profile.active_mw - profile.idle_mw;
    if denom <= 0.0 {
        // Active costs no more than idle: sustainable iff idle is covered.
        return (profile.idle_mw <= profile.harvest_mw).then_some(3);
    }
    let duty_max = (profile.harvest_mw - profile.idle_mw) / denom;
    if duty_max <= 0.0 {
        return None; // even 0% duty drains the battery
    }
    // Worst-case duty in a (1,2)-CS ring is 2/n ⇒ need n >= 2 / duty_max.
    let n = (2.0 / duty_max).ceil() as usize;
    Some(n.max(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cov(duty: Vec<f64>) -> CoverageReport {
        CoverageReport {
            window: Duration::from_secs(1),
            uncovered: Duration::ZERO,
            longest_gap: Duration::ZERO,
            gaps: 0,
            min_active: 1,
            max_active: 2,
            activations: 10,
            duty_cycle: duty,
        }
    }

    #[test]
    fn balanced_large_ring_is_sustainable() {
        // duty 0.1 at 900/45/120 mW: draw = 90 + 40.5 = 130.5 > 120 — not
        // quite; duty 0.08: 72 + 41.4 = 113.4 < 120 — sustainable.
        let r = estimate(&cov(vec![0.08; 10]), PowerProfile::typical_camera(), 10_000.0);
        assert!(r.sustainable, "{r:?}");
        assert!(r.worst_net_mw < 0.0);
        assert!(r.worst_battery_life.is_none());
    }

    #[test]
    fn small_ring_drains_batteries() {
        // n = 3 → duty ~ 0.33: draw = 300 + 30 = 330 mW, net +210 mW.
        let r = estimate(&cov(vec![0.33, 0.33, 0.34]), PowerProfile::typical_camera(), 1_000.0);
        assert!(!r.sustainable);
        let life = r.worst_battery_life.unwrap();
        // 1000 mWh / ~213 mW ≈ 4.7 h.
        assert!(life > Duration::from_secs(3 * 3600) && life < Duration::from_secs(7 * 3600));
    }

    #[test]
    fn min_sustainable_ring_matches_profile() {
        let p = PowerProfile::typical_camera();
        // duty_max = (120 - 45) / 855 ≈ 0.0877 → n ≥ 2/0.0877 ≈ 22.8 → 23.
        assert_eq!(min_sustainable_ring(p), Some(23));
        // Harvest below idle: never sustainable.
        let dead = PowerProfile { active_mw: 900.0, idle_mw: 45.0, harvest_mw: 10.0 };
        assert_eq!(min_sustainable_ring(dead), None);
        // Active no costlier than idle, idle covered: any size works.
        let flat = PowerProfile { active_mw: 45.0, idle_mw: 45.0, harvest_mw: 100.0 };
        assert_eq!(min_sustainable_ring(flat), Some(3));
    }

    #[test]
    fn per_node_net_is_reported() {
        let r = estimate(&cov(vec![0.0, 1.0]), PowerProfile::typical_camera(), 1_000.0);
        assert!((r.net_mw[0] - (45.0 - 120.0)).abs() < 1e-9);
        assert!((r.net_mw[1] - (900.0 - 120.0)).abs() < 1e-9);
    }
}
