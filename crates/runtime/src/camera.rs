//! The paper's motivating application: a self-organizing multi-node
//! security-camera system with guaranteed continuous observation.
//!
//! A node whose local token predicate holds is *active* (its camera
//! records); all other nodes idle and recharge. SSRmin guarantees that at
//! least one and at most two cameras are active at every instant, that the
//! active role rotates around the ring (every camera gets duty and every
//! camera gets rest), and that the system self-heals after arbitrary
//! transient faults.

use std::time::Duration;

use ssr_core::{RingParams, SsToken, SsrMin, SsrState};

use crate::activity::{analyze, CoverageReport};
use crate::config::RuntimeConfig;
use crate::ring::{run_ring, NodeStats, RunOutcome};

/// A camera deployment report: coverage analysis plus runtime statistics.
#[derive(Debug, Clone)]
pub struct CameraReport {
    /// Coverage analysis over the observation window.
    pub coverage: CoverageReport,
    /// Per-node runtime statistics.
    pub stats: Vec<NodeStats>,
    /// Final protocol states (diagnostic).
    pub final_states: Vec<SsrState>,
    /// Actual observed duration.
    pub observed: Duration,
}

impl CameraReport {
    /// True iff observation was continuous: never a moment with all
    /// cameras off (after the warmup used in the analysis).
    pub fn continuous(&self) -> bool {
        self.coverage.uncovered.is_zero()
    }

    /// Mean duty cycle across cameras — the energy-saving headline: with
    /// `n` cameras each is on roughly `1/n`–`2/n` of the time.
    pub fn mean_duty_cycle(&self) -> f64 {
        if self.coverage.duty_cycle.is_empty() {
            0.0
        } else {
            self.coverage.duty_cycle.iter().sum::<f64>() / self.coverage.duty_cycle.len() as f64
        }
    }
}

/// A ring of camera nodes running SSRmin over the threaded runtime.
#[derive(Debug, Clone)]
pub struct CameraNetwork {
    algo: SsrMin,
    cfg: RuntimeConfig,
}

impl CameraNetwork {
    /// A network of `n` cameras with default runtime parameters
    /// (`K = n + 1`).
    pub fn new(n: usize) -> ssr_core::Result<Self> {
        Ok(CameraNetwork {
            algo: SsrMin::new(RingParams::minimal(n)?),
            cfg: RuntimeConfig::default(),
        })
    }

    /// Override the runtime configuration.
    pub fn with_config(mut self, cfg: RuntimeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The protocol instance.
    pub fn algorithm(&self) -> &SsrMin {
        &self.algo
    }

    /// Run the deployment for `duration` from a clean (legitimate) start
    /// and analyze coverage after `warmup`.
    pub fn observe(&self, duration: Duration, warmup: Duration) -> ssr_core::Result<CameraReport> {
        self.observe_from(self.algo.legitimate_anchor(0), duration, warmup)
    }

    /// Run the deployment from an arbitrary initial protocol state — e.g.
    /// freshly unboxed nodes with garbage memory, the self-stabilization
    /// selling point: no global reset needed.
    pub fn observe_from(
        &self,
        initial: Vec<SsrState>,
        duration: Duration,
        warmup: Duration,
    ) -> ssr_core::Result<CameraReport> {
        let out: RunOutcome<SsrState> = run_ring(self.algo, initial, self.cfg, duration)?;
        let coverage = analyze(&out.initial_active, &out.events, out.observed, warmup);
        Ok(CameraReport {
            coverage,
            stats: out.stats,
            final_states: out.final_states,
            observed: out.observed,
        })
    }
}

/// The same deployment driven by plain Dijkstra mutual exclusion — the
/// baseline whose coverage has holes (Figure 11 made physical).
pub fn dijkstra_camera_observe(
    n: usize,
    cfg: RuntimeConfig,
    duration: Duration,
    warmup: Duration,
) -> ssr_core::Result<CoverageReport> {
    let algo = SsToken::new(RingParams::minimal(n)?);
    let out = run_ring(algo, algo.uniform_config(0), cfg, duration)?;
    Ok(analyze(&out.initial_active, &out.events, out.observed, warmup))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn camera_network_provides_continuous_coverage() {
        let net = CameraNetwork::new(5).unwrap().with_config(RuntimeConfig {
            tick: ms(2),
            exec_delay: ms(1),
            ..RuntimeConfig::default()
        });
        let report = net.observe(ms(400), ms(0)).unwrap();
        assert!(report.continuous(), "{:?}", report.coverage);
        assert!(report.coverage.max_active <= 2);
        assert!(report.coverage.activations > 2);
    }

    #[test]
    fn duty_cycle_is_shared() {
        let net = CameraNetwork::new(4)
            .unwrap()
            .with_config(RuntimeConfig { tick: ms(2), ..RuntimeConfig::default() });
        let report = net.observe(ms(500), ms(50)).unwrap();
        // Mean duty cycle is between 1/n and 2/n (1..=2 active among n).
        let mean = report.mean_duty_cycle();
        assert!(mean > 0.0 && mean < 0.9, "mean duty cycle {mean}");
    }

    #[test]
    fn recovers_from_garbage_initial_memory() {
        // exec_delay keeps handover overlap long relative to scheduling
        // skew on single-core runners (see CONTRIBUTING.md).
        let net = CameraNetwork::new(5).unwrap().with_config(RuntimeConfig {
            tick: ms(2),
            exec_delay: ms(1),
            seed: 7,
            ..RuntimeConfig::default()
        });
        let initial: Vec<SsrState> = ["5.1.1", "0.0.1", "3.1.0", "3.1.1", "1.0.0"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        // Generous warmup for stabilization, then coverage must be total.
        let report = net.observe_from(initial, ms(700), ms(350)).unwrap();
        assert!(report.continuous(), "{:?}", report.coverage);
    }

    #[test]
    fn rejects_too_small_network() {
        assert!(CameraNetwork::new(2).is_err());
    }
}
