//! The per-thread protocol replica: the node's own algorithm state plus
//! caches of both neighbours (the CST working set).

use ssr_core::{RingAlgorithm, TokenSet};

/// A node's protocol state as maintained by its thread.
#[derive(Debug, Clone)]
pub struct Replica<A: RingAlgorithm> {
    /// Ring index of this node.
    pub index: usize,
    /// Own algorithm state `q_i`.
    pub own: A::State,
    /// Cached predecessor state `Z_i[v_{i-1}]`.
    pub cache_pred: A::State,
    /// Cached successor state `Z_i[v_{i+1}]`.
    pub cache_succ: A::State,
    /// Rules executed by this replica.
    pub rules_executed: u64,
}

impl<A: RingAlgorithm> Replica<A> {
    /// Create a replica with the given initial own state and caches.
    pub fn new(index: usize, own: A::State, cache_pred: A::State, cache_succ: A::State) -> Self {
        Replica { index, own, cache_pred, cache_succ, rules_executed: 0 }
    }

    /// Update the cache corresponding to the neighbour `from` (must be the
    /// ring predecessor or successor of `self.index`).
    pub fn update_cache(&mut self, n: usize, from: usize, state: A::State) {
        let pred = if self.index == 0 { n - 1 } else { self.index - 1 };
        let succ = if self.index + 1 == n { 0 } else { self.index + 1 };
        if from == pred {
            self.cache_pred = state;
        } else if from == succ {
            self.cache_succ = state;
        } else {
            panic!("message from non-neighbour {from} delivered to {}", self.index);
        }
    }

    /// The enabled rule on the cached view, if any.
    pub fn enabled_rule(&self, algo: &A) -> Option<A::Rule> {
        algo.enabled_rule(self.index, &self.own, &self.cache_pred, &self.cache_succ)
    }

    /// Execute one enabled rule on the cached view; returns the fired rule.
    pub fn execute_one(&mut self, algo: &A) -> Option<A::Rule> {
        let rule = self.enabled_rule(algo)?;
        self.own = algo.execute(self.index, rule, &self.own, &self.cache_pred, &self.cache_succ);
        self.rules_executed += 1;
        Some(rule)
    }

    /// The node's locally evaluated token set — the predicate that drives
    /// the application layer (camera on/off).
    pub fn tokens(&self, algo: &A) -> TokenSet {
        algo.tokens_at(self.index, &self.own, &self.cache_pred, &self.cache_succ)
    }

    /// True iff the node is privileged (holds at least one token).
    pub fn is_privileged(&self, algo: &A) -> bool {
        self.tokens(algo).any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{RingParams, SsrMin, SsrRule, SsrState};

    fn algo() -> SsrMin {
        SsrMin::new(RingParams::new(5, 7).unwrap())
    }

    fn st(s: &str) -> SsrState {
        s.parse().unwrap()
    }

    #[test]
    fn cache_update_routes_by_neighbour() {
        let a = algo();
        let mut r: Replica<SsrMin> = Replica::new(2, st("3.0.0"), st("3.0.0"), st("3.0.0"));
        r.update_cache(a.n(), 1, st("3.1.0"));
        assert_eq!(r.cache_pred, st("3.1.0"));
        r.update_cache(a.n(), 3, st("4.0.0"));
        assert_eq!(r.cache_succ, st("4.0.0"));
    }

    #[test]
    fn wraparound_neighbours() {
        let a = algo();
        let mut r: Replica<SsrMin> = Replica::new(0, st("3.0.0"), st("3.0.0"), st("3.0.0"));
        r.update_cache(a.n(), 4, st("2.0.0")); // P4 is P0's predecessor
        assert_eq!(r.cache_pred, st("2.0.0"));
        let mut r4: Replica<SsrMin> = Replica::new(4, st("3.0.0"), st("3.0.0"), st("3.0.0"));
        r4.update_cache(a.n(), 0, st("2.0.0")); // P0 is P4's successor
        assert_eq!(r4.cache_succ, st("2.0.0"));
    }

    #[test]
    #[should_panic(expected = "non-neighbour")]
    fn non_neighbour_message_panics() {
        let a = algo();
        let mut r: Replica<SsrMin> = Replica::new(2, st("3.0.0"), st("3.0.0"), st("3.0.0"));
        r.update_cache(a.n(), 0, st("3.0.0"));
    }

    #[test]
    fn execute_and_privilege_follow_the_handshake() {
        let a = algo();
        // P1's view when P0 offers the secondary token.
        let mut r: Replica<SsrMin> = Replica::new(1, st("3.0.0"), st("3.1.0"), st("3.0.0"));
        assert!(!r.is_privileged(&a));
        assert_eq!(r.execute_one(&a), Some(SsrRule::R3));
        assert!(r.is_privileged(&a), "after Rule 3 the node holds the secondary token");
        assert_eq!(r.rules_executed, 1);
        assert_eq!(r.execute_one(&a), None);
    }
}
