//! Activity logging and coverage analysis for the monitoring application.
//!
//! Every node logs a timestamped event whenever its privilege (camera
//! active/inactive) changes; the [`CoverageReport`] then reconstructs the
//! step function of "how many cameras are on" over wall-clock time and
//! quantifies the paper's headline guarantee: the environment is *never*
//! unobserved.

use std::time::Duration;

/// One privilege transition of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivityEvent {
    /// Node index.
    pub node: usize,
    /// Time since observation start.
    pub at: Duration,
    /// New activity state (`true` = privileged / camera on).
    pub active: bool,
}

/// Coverage analysis of an activity log over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Analysis window length.
    pub window: Duration,
    /// Total time with zero active nodes — mutual-inclusion violation time.
    pub uncovered: Duration,
    /// Longest single uncovered gap.
    pub longest_gap: Duration,
    /// Number of maximal uncovered gaps.
    pub gaps: usize,
    /// Minimum simultaneous active nodes observed.
    pub min_active: usize,
    /// Maximum simultaneous active nodes observed.
    pub max_active: usize,
    /// Number of activations (a node turning on) — a proxy for handovers.
    pub activations: usize,
    /// Per-node fraction of the window spent active (duty cycle).
    pub duty_cycle: Vec<f64>,
}

/// Compute a [`CoverageReport`] from a log.
///
/// `initial_active` gives each node's activity at time zero; `events` must
/// be sorted by time (the runtime's shared log guarantees this); `window`
/// is the observation length; events beyond it are ignored. `warmup` clips
/// the start of the analysis (convergence time should not count against a
/// run that started from an illegitimate configuration).
pub fn analyze(
    initial_active: &[bool],
    events: &[ActivityEvent],
    window: Duration,
    warmup: Duration,
) -> CoverageReport {
    let n = initial_active.len();
    let mut state: Vec<bool> = initial_active.to_vec();
    let mut active_count = state.iter().filter(|&&a| a).count();

    let mut uncovered = Duration::ZERO;
    let mut longest_gap = Duration::ZERO;
    let mut gaps = 0usize;
    let mut in_gap = false;
    let mut gap_start = Duration::ZERO;
    let mut min_active = usize::MAX;
    let mut max_active = 0usize;
    let mut activations = 0usize;
    let mut active_time: Vec<Duration> = vec![Duration::ZERO; n];

    let mut cursor = Duration::ZERO;

    let account = |from: Duration,
                   to: Duration,
                   count: usize,
                   state: &[bool],
                   uncovered: &mut Duration,
                   active_time: &mut Vec<Duration>,
                   min_active: &mut usize,
                   max_active: &mut usize| {
        let lo = from.max(warmup);
        let hi = to.max(warmup).min(window.max(warmup));
        if hi <= lo {
            return;
        }
        let dur = hi - lo;
        *min_active = (*min_active).min(count);
        *max_active = (*max_active).max(count);
        if count == 0 {
            *uncovered += dur;
        }
        for (i, &a) in state.iter().enumerate() {
            if a {
                active_time[i] += dur;
            }
        }
    };

    for ev in events {
        if ev.at > window {
            break;
        }
        account(
            cursor,
            ev.at,
            active_count,
            &state,
            &mut uncovered,
            &mut active_time,
            &mut min_active,
            &mut max_active,
        );
        // Gap bookkeeping at the transition boundary (only within window).
        if active_count == 0 && !in_gap && ev.at > warmup {
            in_gap = true;
            gap_start = cursor.max(warmup);
        }
        if ev.node < n && state[ev.node] != ev.active {
            state[ev.node] = ev.active;
            if ev.active {
                active_count += 1;
                activations += 1;
                if in_gap {
                    let gap = ev.at.saturating_sub(gap_start);
                    longest_gap = longest_gap.max(gap);
                    gaps += 1;
                    in_gap = false;
                }
            } else {
                active_count -= 1;
            }
        }
        cursor = ev.at;
    }
    account(
        cursor,
        window,
        active_count,
        &state,
        &mut uncovered,
        &mut active_time,
        &mut min_active,
        &mut max_active,
    );
    if in_gap || (active_count == 0 && window > cursor.max(warmup)) {
        let start = if in_gap { gap_start } else { cursor.max(warmup) };
        let gap = window.saturating_sub(start);
        if gap > Duration::ZERO {
            longest_gap = longest_gap.max(gap);
            gaps += 1;
        }
    }

    let effective = window.saturating_sub(warmup);
    let duty_cycle = active_time
        .iter()
        .map(|t| if effective.is_zero() { 0.0 } else { t.as_secs_f64() / effective.as_secs_f64() })
        .collect();

    CoverageReport {
        window: effective,
        uncovered,
        longest_gap,
        gaps,
        min_active: if min_active == usize::MAX { active_count } else { min_active },
        max_active,
        activations,
        duty_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn ev(node: usize, at: u64, active: bool) -> ActivityEvent {
        ActivityEvent { node, at: ms(at), active }
    }

    #[test]
    fn continuous_coverage_reports_zero_uncovered() {
        // Node 0 active throughout; node 1 toggles.
        let events = vec![ev(1, 10, true), ev(1, 20, false)];
        let r = analyze(&[true, false, false], &events, ms(100), Duration::ZERO);
        assert_eq!(r.uncovered, Duration::ZERO);
        assert_eq!(r.gaps, 0);
        assert_eq!(r.min_active, 1);
        assert_eq!(r.max_active, 2);
        assert_eq!(r.activations, 1);
        assert!((r.duty_cycle[0] - 1.0).abs() < 1e-9);
        assert!((r.duty_cycle[1] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn gap_is_measured() {
        // Node 0 turns off at 30, node 1 turns on at 45: 15ms gap.
        let events = vec![ev(0, 30, false), ev(1, 45, true)];
        let r = analyze(&[true, false], &events, ms(100), Duration::ZERO);
        assert_eq!(r.uncovered, ms(15));
        assert_eq!(r.longest_gap, ms(15));
        assert_eq!(r.gaps, 1);
        assert_eq!(r.min_active, 0);
    }

    #[test]
    fn trailing_gap_counts() {
        let events = vec![ev(0, 80, false)];
        let r = analyze(&[true], &events, ms(100), Duration::ZERO);
        assert_eq!(r.uncovered, ms(20));
        assert_eq!(r.gaps, 1);
        assert_eq!(r.longest_gap, ms(20));
    }

    #[test]
    fn warmup_excludes_initial_chaos() {
        // Nothing active until 50ms — all inside the warmup.
        let events = vec![ev(0, 50, true)];
        let r = analyze(&[false], &events, ms(100), ms(50));
        assert_eq!(r.uncovered, Duration::ZERO);
        assert_eq!(r.window, ms(50));
        assert!((r.duty_cycle[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_gaps_counted_separately() {
        let events = vec![ev(0, 10, false), ev(0, 20, true), ev(0, 40, false), ev(0, 70, true)];
        let r = analyze(&[true], &events, ms(100), Duration::ZERO);
        assert_eq!(r.gaps, 2);
        assert_eq!(r.uncovered, ms(40));
        assert_eq!(r.longest_gap, ms(30));
        assert_eq!(r.activations, 2);
    }

    #[test]
    fn duplicate_state_events_are_idempotent() {
        let events = vec![ev(0, 10, true), ev(0, 20, true)];
        let r = analyze(&[true], &events, ms(100), Duration::ZERO);
        assert_eq!(r.max_active, 1);
        assert_eq!(r.activations, 0, "no transition happened");
    }

    #[test]
    fn all_inactive_whole_window() {
        let r = analyze(&[false, false], &[], ms(60), Duration::ZERO);
        assert_eq!(r.uncovered, ms(60));
        assert_eq!(r.gaps, 1);
        assert_eq!(r.longest_gap, ms(60));
        assert_eq!(r.min_active, 0);
    }
}
