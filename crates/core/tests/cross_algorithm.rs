//! Cross-algorithm consistency: SSRmin is Dijkstra's ring plus a handshake,
//! and that relationship must be visible in the code — the `x`-component of
//! any SSRmin execution is a legal (slowed-down) execution of `SsToken`.

use proptest::prelude::*;

use ssr_core::{RingAlgorithm, RingParams, SsToken, SsrMin, SsrRule, SsrState};

fn arb_params() -> impl Strategy<Value = RingParams> {
    (3usize..8).prop_flat_map(|n| {
        ((n as u32 + 1)..(n as u32 + 5)).prop_map(move |k| RingParams::new(n, k).unwrap())
    })
}

fn arb_config(params: RingParams) -> impl Strategy<Value = Vec<SsrState>> {
    proptest::collection::vec(
        (0..params.k(), any::<bool>(), any::<bool>()).prop_map(|(x, rts, tra)| SsrState {
            x,
            rts,
            tra,
        }),
        params.n(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The primary-token condition of SSRmin IS Dijkstra's guard.
    #[test]
    fn primary_condition_equals_dijkstra_guard(
        pc in arb_params().prop_flat_map(|p| (Just(p), arb_config(p))),
    ) {
        let (params, cfg) = pc;
        let ssr = SsrMin::new(params);
        let dij = SsToken::new(params);
        let xs: Vec<u32> = cfg.iter().map(|s| s.x).collect();
        for i in 0..params.n() {
            let (own, pred, _) = ssr.view(&cfg, i);
            let pred_x = xs[params.pred(i)];
            prop_assert_eq!(
                ssr.holds_primary(i, own, pred),
                dij.guard(i, xs[i], pred_x)
            );
        }
    }

    /// Executing SSRmin Rules 2/4 performs exactly Dijkstra's command on the
    /// x component; Rules 1/3/5 leave x untouched.
    #[test]
    fn rules_partition_into_counter_and_flag_moves(
        pc in arb_params().prop_flat_map(|p| (Just(p), arb_config(p))),
    ) {
        let (params, cfg) = pc;
        let ssr = SsrMin::new(params);
        let dij = SsToken::new(params);
        for i in 0..params.n() {
            let (own, pred, succ) = ssr.view(&cfg, i);
            if let Some(rule) = ssr.enabled(i, own, pred, succ) {
                let next = ssr.apply(i, rule, own, pred);
                match rule {
                    SsrRule::R2 | SsrRule::R4 => {
                        prop_assert_eq!(next.x, dij.command(i, pred.x));
                        prop_assert!(!next.rts && !next.tra);
                    }
                    _ => prop_assert_eq!(next.x, own.x, "flag rules must not move x"),
                }
            }
        }
    }

    /// Projecting a whole SSRmin execution onto its x components yields a
    /// sequence in which every change is a legal Dijkstra move.
    #[test]
    fn x_projection_is_a_dijkstra_execution(
        pcs in arb_params().prop_flat_map(|p| (
            Just(p),
            arb_config(p),
            proptest::collection::vec(any::<u8>(), 100),
        )),
    ) {
        let (params, mut cfg, choices) = pcs;
        let ssr = SsrMin::new(params);
        let dij = SsToken::new(params);
        for pick in choices {
            let enabled = ssr.enabled_processes(&cfg);
            prop_assert!(!enabled.is_empty(), "Lemma 4");
            let mover = enabled[pick as usize % enabled.len()];
            let before: Vec<u32> = cfg.iter().map(|s| s.x).collect();
            cfg = ssr.step_process(&cfg, mover).unwrap();
            let after: Vec<u32> = cfg.iter().map(|s| s.x).collect();
            if before != after {
                // Exactly the mover changed, and exactly per Dijkstra.
                for i in 0..params.n() {
                    if i == mover {
                        prop_assert!(dij.guard(i, before[i], before[params.pred(i)]),
                            "x moved without Dijkstra's guard");
                        prop_assert_eq!(after[i], dij.command(i, before[params.pred(i)]));
                    } else {
                        prop_assert_eq!(after[i], before[i]);
                    }
                }
            }
        }
    }

    /// Token conservation along legitimate executions: stepping never
    /// changes the (1 primary, 1 secondary) census.
    #[test]
    fn legitimate_steps_conserve_token_census(
        params in arb_params(),
        x_raw in 0u32..64,
        picks in proptest::collection::vec(any::<u8>(), 50),
    ) {
        let ssr = SsrMin::new(params);
        let mut cfg = ssr.legitimate_anchor(x_raw % params.k());
        for pick in picks {
            let enabled = ssr.enabled_processes(&cfg);
            let mover = enabled[pick as usize % enabled.len()];
            cfg = ssr.step_process(&cfg, mover).unwrap();
            prop_assert_eq!(ssr.primary_count(&cfg), 1);
            prop_assert_eq!(ssr.secondary_count(&cfg), 1);
        }
    }
}
