//! Metamorphic properties of SSRmin: transformations of the configuration
//! that must commute with execution. These catch whole classes of bugs
//! (an accidental absolute comparison, a hard-coded counter value) that
//! point tests cannot.

use proptest::prelude::*;

use ssr_core::{legitimacy, RingAlgorithm, RingParams, SsrMin, SsrState};

fn arb_params() -> impl Strategy<Value = RingParams> {
    (3usize..8).prop_flat_map(|n| {
        ((n as u32 + 1)..(n as u32 + 6)).prop_map(move |k| RingParams::new(n, k).unwrap())
    })
}

fn arb_config(params: RingParams) -> impl Strategy<Value = Vec<SsrState>> {
    proptest::collection::vec(
        (0..params.k(), any::<bool>(), any::<bool>()).prop_map(|(x, rts, tra)| SsrState {
            x,
            rts,
            tra,
        }),
        params.n(),
    )
}

/// Shift every counter by `c` (mod K), leaving flags untouched.
fn shift(params: RingParams, config: &[SsrState], c: u32) -> Vec<SsrState> {
    config.iter().map(|s| s.with_x(params.add(s.x, c))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Value-shift symmetry: SSRmin's guards only ever compare counters
    /// for equality or successorship, so adding a constant to every `x`
    /// (mod K) must leave the enabled structure untouched...
    #[test]
    fn shift_preserves_enabled_rules(
        pcc in arb_params().prop_flat_map(|p| (Just(p), arb_config(p), 0u32..64)),
    ) {
        let (params, cfg, c_raw) = pcc;
        let c = c_raw % params.k();
        let algo = SsrMin::new(params);
        let shifted = shift(params, &cfg, c);
        for i in 0..params.n() {
            prop_assert_eq!(
                algo.enabled_rule_in(&cfg, i),
                algo.enabled_rule_in(&shifted, i),
                "process {} enabled-rule changed under shift by {}",
                i,
                c
            );
        }
    }

    /// ...and stepping must commute with the shift: step(shift(cfg)) =
    /// shift(step(cfg)).
    #[test]
    fn shift_commutes_with_stepping(
        pccs in arb_params().prop_flat_map(|p| (
            Just(p),
            arb_config(p),
            0u32..64,
            proptest::collection::vec(any::<u8>(), 40),
        )),
    ) {
        let (params, cfg, c_raw, picks) = pccs;
        let c = c_raw % params.k();
        let algo = SsrMin::new(params);
        let mut plain = cfg.clone();
        let mut shifted = shift(params, &cfg, c);
        for pick in picks {
            let e = algo.enabled_processes(&plain);
            prop_assert_eq!(&e, &algo.enabled_processes(&shifted));
            let mover = e[pick as usize % e.len()];
            plain = algo.step_process(&plain, mover).unwrap();
            shifted = algo.step_process(&shifted, mover).unwrap();
            prop_assert_eq!(&shift(params, &plain, c), &shifted);
        }
    }

    /// Shift preserves legitimacy and the token census.
    #[test]
    fn shift_preserves_legitimacy_and_tokens(
        pcc in arb_params().prop_flat_map(|p| (Just(p), arb_config(p), 0u32..64)),
    ) {
        let (params, cfg, c_raw) = pcc;
        let c = c_raw % params.k();
        let algo = SsrMin::new(params);
        let shifted = shift(params, &cfg, c);
        prop_assert_eq!(
            legitimacy::classify(params, &cfg).map(|f| f.position()),
            legitimacy::classify(params, &shifted).map(|f| f.position())
        );
        prop_assert_eq!(algo.token_holders(&cfg), algo.token_holders(&shifted));
        prop_assert_eq!(algo.primary_count(&cfg), algo.primary_count(&shifted));
        prop_assert_eq!(algo.secondary_count(&cfg), algo.secondary_count(&shifted));
    }

    /// Flags-only involution: flipping `rts`/`tra` of a process that holds
    /// neither token and is not adjacent to a token holder cannot create a
    /// *primary* token anywhere (the primary depends only on counters).
    #[test]
    fn flag_noise_cannot_mint_primary_tokens(
        pcv in arb_params().prop_flat_map(|p| (Just(p), arb_config(p), 0usize..64, any::<bool>(), any::<bool>())),
    ) {
        let (params, cfg, victim_raw, r, t) = pcv;
        let victim = victim_raw % params.n();
        let algo = SsrMin::new(params);
        let before = algo.primary_count(&cfg);
        let mut mutated = cfg;
        mutated[victim] = SsrState { x: mutated[victim].x, rts: r, tra: t };
        prop_assert_eq!(algo.primary_count(&mutated), before);
    }
}
