//! The five guarded-command rules of SSRmin (Algorithm 3) as a first-class
//! type, plus the rule classification used by the convergence proof.

use std::fmt;

/// A rule of Algorithm 3. Smaller rule numbers have higher priority, so a
/// process is enabled by at most one rule at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SsrRule {
    /// Rule 1 (abstract action α₁): *ready to send the secondary token* —
    /// when `G_i` holds and `⟨rts_i.tra_i⟩ ∈ {0.0, 0.1, 1.1}`, set `⟨1.0⟩`.
    R1,
    /// Rule 2 (abstract action α₂): *send the primary token* — when `G_i`
    /// holds, `⟨rts_i.tra_i⟩ = 1.0` and `⟨rts_{i+1}.tra_{i+1}⟩ = 0.1`, set
    /// `⟨0.0⟩` and execute `C_i` (the Dijkstra move).
    R2,
    /// Rule 3 (abstract action β): *receive the secondary token* — when
    /// `¬G_i`, `⟨rts_{i-1}.tra_{i-1}⟩ = 1.0` and `⟨rts_i.tra_i⟩ ∈
    /// {0.0, 1.0, 1.1}`, set `⟨0.1⟩`.
    R3,
    /// Rule 4: *fix inconsistent local state while `G_i` holds* — when `G_i`
    /// holds, `⟨rts_i.tra_i⟩ = 1.0`, and the neighbourhood is not the
    /// legitimate waiting pattern `⟨0.0, 1.0, 0.0⟩` (nor Rule 2's pattern),
    /// set `⟨0.0⟩` and execute `C_i`.
    R4,
    /// Rule 5: *fix inconsistent local state while `¬G_i` holds* — when
    /// `¬G_i`, `⟨rts_i.tra_i⟩ ≠ 0.0`, and the state is not the legitimate
    /// "holding received secondary" pattern `⟨1.0, 0.1⟩` (nor receivable by
    /// Rule 3), set `⟨0.0⟩`.
    R5,
}

impl SsrRule {
    /// All rules in priority order (highest first).
    pub const ALL: [SsrRule; 5] = [SsrRule::R1, SsrRule::R2, SsrRule::R3, SsrRule::R4, SsrRule::R5];

    /// The paper's rule number, 1–5.
    #[inline]
    pub fn number(self) -> u8 {
        match self {
            SsrRule::R1 => 1,
            SsrRule::R2 => 2,
            SsrRule::R3 => 3,
            SsrRule::R4 => 4,
            SsrRule::R5 => 5,
        }
    }

    /// True iff this rule performs the Dijkstra move `C_i` — Rules 2 and 4.
    /// These are the `W₂₄` events of the Lemma 8 domination argument; the
    /// others form `W₁₃₅`.
    #[inline]
    pub fn is_dijkstra_move(self) -> bool {
        matches!(self, SsrRule::R2 | SsrRule::R4)
    }

    /// True iff the rule requires `G_i` to hold (Rules 1, 2, 4); Rules 3 and
    /// 5 require `¬G_i`.
    #[inline]
    pub fn requires_guard(self) -> bool {
        matches!(self, SsrRule::R1 | SsrRule::R2 | SsrRule::R4)
    }

    /// Short human-readable action label as used in trace output.
    pub fn label(self) -> &'static str {
        match self {
            SsrRule::R1 => "ready-to-send-secondary",
            SsrRule::R2 => "send-primary",
            SsrRule::R3 => "receive-secondary",
            SsrRule::R4 => "fix-with-guard",
            SsrRule::R5 => "fix-without-guard",
        }
    }
}

impl fmt::Display for SsrRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rule {}", self.number())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_match_priority_order() {
        let nums: Vec<u8> = SsrRule::ALL.iter().map(|r| r.number()).collect();
        assert_eq!(nums, vec![1, 2, 3, 4, 5]);
        // Ord follows priority (R1 < R2 < ... < R5).
        let mut sorted = SsrRule::ALL;
        sorted.sort();
        assert_eq!(sorted, SsrRule::ALL);
    }

    #[test]
    fn dijkstra_move_classification_splits_w24_w135() {
        assert!(SsrRule::R2.is_dijkstra_move());
        assert!(SsrRule::R4.is_dijkstra_move());
        assert!(!SsrRule::R1.is_dijkstra_move());
        assert!(!SsrRule::R3.is_dijkstra_move());
        assert!(!SsrRule::R5.is_dijkstra_move());
    }

    #[test]
    fn guard_polarity() {
        assert!(SsrRule::R1.requires_guard());
        assert!(SsrRule::R2.requires_guard());
        assert!(SsrRule::R4.requires_guard());
        assert!(!SsrRule::R3.requires_guard());
        assert!(!SsrRule::R5.requires_guard());
    }

    #[test]
    fn display_uses_paper_numbering() {
        assert_eq!(SsrRule::R3.to_string(), "Rule 3");
        assert_eq!(SsrRule::R5.label(), "fix-without-guard");
    }
}
