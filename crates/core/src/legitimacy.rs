//! Definition 1 of the paper: the legitimate configurations of SSRmin, as a
//! classifier, a constructor and an exhaustive enumerator.

use crate::params::RingParams;
use crate::state::SsrState;

/// The syntactic shape of a legitimate SSRmin configuration (Definition 1).
///
/// Every legitimate configuration has a *token position* `i` and a *low
/// counter value* `x`: processes `P_0 .. P_{i-1}` hold `x+1 mod K`, processes
/// `P_i .. P_{n-1}` hold `x` (for `i = 0` all processes hold `x`), and the
/// handshake flags identify one of three phases of the handover at `P_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LegitimateForm {
    /// `P_i` holds both tokens with `⟨rts.tra⟩ = ⟨0.1⟩` — it has just
    /// acknowledged receipt of the secondary token.
    BothTra {
        /// Token position.
        i: usize,
        /// Low counter value.
        x: u32,
    },
    /// `P_i` holds both tokens with `⟨rts.tra⟩ = ⟨1.0⟩` — it has offered the
    /// secondary token and the successor has not yet received it.
    BothRts {
        /// Token position.
        i: usize,
        /// Low counter value.
        x: u32,
    },
    /// `P_i` holds the primary token (`⟨1.0⟩`) and `P_{i+1 mod n}` holds the
    /// secondary token (`⟨0.1⟩`).
    Split {
        /// Primary-token position.
        i: usize,
        /// Low counter value.
        x: u32,
    },
}

impl LegitimateForm {
    /// The token position `i`.
    pub fn position(&self) -> usize {
        match *self {
            LegitimateForm::BothTra { i, .. }
            | LegitimateForm::BothRts { i, .. }
            | LegitimateForm::Split { i, .. } => i,
        }
    }

    /// The low counter value `x`.
    pub fn x(&self) -> u32 {
        match *self {
            LegitimateForm::BothTra { x, .. }
            | LegitimateForm::BothRts { x, .. }
            | LegitimateForm::Split { x, .. } => x,
        }
    }
}

/// Classify `config` against Definition 1, returning its form or `None` if
/// it is illegitimate.
///
/// ```
/// use ssr_core::{legitimacy::{classify, LegitimateForm}, RingParams, SsrState};
/// let p = RingParams::new(5, 7).unwrap();
/// let cfg: Vec<SsrState> = ["4.0.0", "4.0.0", "3.1.0", "3.0.1", "3.0.0"]
///     .iter().map(|s| s.parse().unwrap()).collect();
/// assert_eq!(classify(p, &cfg), Some(LegitimateForm::Split { i: 2, x: 3 }));
/// ```
pub fn classify(params: RingParams, config: &[SsrState]) -> Option<LegitimateForm> {
    let n = params.n();
    if config.len() != n {
        return None;
    }
    if config.iter().any(|s| s.x >= params.k()) {
        return None;
    }

    // Counter component: all equal (i = 0), or a prefix of i copies of
    // x+1 followed by n-i copies of x (1 <= i <= n-1).
    let x = config[n - 1].x;
    let upper = params.inc(x);
    let i = config.iter().take_while(|s| s.x == upper).count();
    // `i == n` can only happen when K divides into upper == x, impossible
    // since K >= 2; but for i in 1..n we still must check the tail.
    if i >= n {
        return None;
    }
    if !config[i..].iter().all(|s| s.x == x) {
        return None;
    }
    if i > 0 && config[..i].iter().any(|s| s.x != upper) {
        return None;
    }
    // When i == 0 the take_while found no upper prefix; all entries are x.
    debug_assert!(i == 0 || (1..n).contains(&i));

    // Flag component: all ⟨0.0⟩ except at the token position(s).
    let succ = params.succ(i);
    let flags_clear_except = |keep: &[usize]| {
        config.iter().enumerate().all(|(j, s)| keep.contains(&j) || s.flags_are(0, 0))
    };

    let at = config[i];
    if at.flags_are(0, 1) && flags_clear_except(&[i]) {
        return Some(LegitimateForm::BothTra { i, x });
    }
    if at.flags_are(1, 0) {
        if flags_clear_except(&[i]) {
            return Some(LegitimateForm::BothRts { i, x });
        }
        if config[succ].flags_are(0, 1) && flags_clear_except(&[i, succ]) {
            return Some(LegitimateForm::Split { i, x });
        }
    }
    None
}

/// True iff `config` is legitimate per Definition 1.
pub fn is_legitimate_ssrmin(params: RingParams, config: &[SsrState]) -> bool {
    classify(params, config).is_some()
}

/// Construct the configuration described by `form`.
pub fn build(params: RingParams, form: LegitimateForm) -> Vec<SsrState> {
    let n = params.n();
    let i = form.position();
    let x = form.x();
    assert!(i < n, "token position out of range");
    assert!(x < params.k(), "x out of range");
    let upper = params.inc(x);
    let mut cfg: Vec<SsrState> =
        (0..n).map(|j| SsrState::new(if j < i { upper } else { x }, 0, 0)).collect();
    match form {
        LegitimateForm::BothTra { .. } => cfg[i] = cfg[i].with_flags(false, true),
        LegitimateForm::BothRts { .. } => cfg[i] = cfg[i].with_flags(true, false),
        LegitimateForm::Split { .. } => {
            cfg[i] = cfg[i].with_flags(true, false);
            let s = params.succ(i);
            cfg[s] = cfg[s].with_flags(false, true);
        }
    }
    cfg
}

/// Enumerate *all* legitimate configurations for the given parameters:
/// `3 · n · K` of them (three phases × n token positions × K counter values).
pub fn enumerate_legitimate(params: RingParams) -> Vec<Vec<SsrState>> {
    let mut out = Vec::with_capacity(3 * params.n() * params.k() as usize);
    for x in 0..params.k() {
        for i in 0..params.n() {
            out.push(build(params, LegitimateForm::BothTra { i, x }));
            out.push(build(params, LegitimateForm::BothRts { i, x }));
            out.push(build(params, LegitimateForm::Split { i, x }));
        }
    }
    out
}

/// Service census over one full legitimate cycle: starting from the anchor,
/// walk all `3·n·K` configurations of the cycle and count, per process, in
/// how many of them it is privileged. The result quantifies the fairness of
/// the rotation in the state-reading model: every process is privileged in
/// exactly `4K` of the `3nK` configurations (3 of each lap's own phases
/// plus 1 as the secondary holder of its predecessor's split phase).
pub fn cycle_service_census(algo: &crate::SsrMin) -> Vec<u64> {
    use crate::algorithm::RingAlgorithm;
    let params = algo.params();
    let n = params.n();
    let mut census = vec![0u64; n];
    let mut cfg = algo.legitimate_anchor(0);
    let cycle_len = 3 * n * params.k() as usize;
    for _ in 0..cycle_len {
        for (i, slot) in census.iter_mut().enumerate() {
            if algo.tokens_in(&cfg, i).any() {
                *slot += 1;
            }
        }
        let enabled = algo.enabled_processes(&cfg);
        debug_assert_eq!(enabled.len(), 1);
        cfg = algo.step_process(&cfg, enabled[0]).expect("enabled");
    }
    debug_assert_eq!(cfg, algo.legitimate_anchor(0), "cycle must close");
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::RingAlgorithm;
    use crate::ssrmin::SsrMin;

    fn params(n: usize, k: u32) -> RingParams {
        RingParams::new(n, k).unwrap()
    }

    fn cfg(states: &[&str]) -> Vec<SsrState> {
        states.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn definition1_examples_classify() {
        let p = params(5, 7);
        // P0 holds both (tra form).
        assert_eq!(
            classify(p, &cfg(&["3.0.1", "3.0.0", "3.0.0", "3.0.0", "3.0.0"])),
            Some(LegitimateForm::BothTra { i: 0, x: 3 })
        );
        // P0 holds both (rts form).
        assert_eq!(
            classify(p, &cfg(&["3.1.0", "3.0.0", "3.0.0", "3.0.0", "3.0.0"])),
            Some(LegitimateForm::BothRts { i: 0, x: 3 })
        );
        // P0 primary, P1 secondary.
        assert_eq!(
            classify(p, &cfg(&["3.1.0", "3.0.1", "3.0.0", "3.0.0", "3.0.0"])),
            Some(LegitimateForm::Split { i: 0, x: 3 })
        );
        // P2 holds both.
        assert_eq!(
            classify(p, &cfg(&["4.0.0", "4.0.0", "3.0.1", "3.0.0", "3.0.0"])),
            Some(LegitimateForm::BothTra { i: 2, x: 3 })
        );
        // P2 primary, P3 secondary.
        assert_eq!(
            classify(p, &cfg(&["4.0.0", "4.0.0", "3.1.0", "3.0.1", "3.0.0"])),
            Some(LegitimateForm::Split { i: 2, x: 3 })
        );
    }

    #[test]
    fn wraparound_split_is_legitimate() {
        // γ_{3n-1} of the closure proof: P_{n-1} primary, P_0 secondary.
        let p = params(5, 7);
        let c = cfg(&["4.0.1", "4.0.0", "4.0.0", "4.0.0", "3.1.0"]);
        assert_eq!(classify(p, &c), Some(LegitimateForm::Split { i: 4, x: 3 }));
    }

    #[test]
    fn wraparound_with_modulus() {
        let p = params(5, 7);
        // x = 6, x+1 = 0.
        let c = cfg(&["0.0.0", "0.0.0", "6.0.1", "6.0.0", "6.0.0"]);
        assert_eq!(classify(p, &c), Some(LegitimateForm::BothTra { i: 2, x: 6 }));
    }

    #[test]
    fn illegitimate_examples_rejected() {
        let p = params(5, 7);
        // Two flag positions that are not a split.
        assert!(classify(p, &cfg(&["3.0.1", "3.0.1", "3.0.0", "3.0.0", "3.0.0"])).is_none());
        // Counter jump of 2.
        assert!(classify(p, &cfg(&["5.0.0", "3.0.1", "3.0.0", "3.0.0", "3.0.0"])).is_none());
        // All flags clear (the pre-legitimate state reached during
        // convergence, Lemma 6): NOT legitimate.
        assert!(classify(p, &cfg(&["3.0.0", "3.0.0", "3.0.0", "3.0.0", "3.0.0"])).is_none());
        // 1.1 flags anywhere.
        assert!(classify(p, &cfg(&["3.1.1", "3.0.0", "3.0.0", "3.0.0", "3.0.0"])).is_none());
        // Split with a gap (secondary not at successor).
        assert!(classify(p, &cfg(&["3.1.0", "3.0.0", "3.0.1", "3.0.0", "3.0.0"])).is_none());
        // x out of range.
        assert!(classify(p, &cfg(&["9.0.1", "9.0.0", "9.0.0", "9.0.0", "9.0.0"])).is_none());
        // Wrong length.
        assert!(classify(p, &cfg(&["3.0.1", "3.0.0"])).is_none());
        // Descending pattern (x then x+1) is not of the form.
        assert!(classify(p, &cfg(&["3.0.0", "4.0.0", "4.0.0", "4.0.1", "4.0.0"])).is_none());
    }

    #[test]
    fn build_roundtrips_through_classify() {
        let p = params(6, 8);
        for x in 0..8 {
            for i in 0..6 {
                for form in [
                    LegitimateForm::BothTra { i, x },
                    LegitimateForm::BothRts { i, x },
                    LegitimateForm::Split { i, x },
                ] {
                    let c = build(p, form);
                    assert_eq!(classify(p, &c), Some(form), "form {form:?}");
                }
            }
        }
    }

    #[test]
    fn enumeration_counts_3nk_distinct() {
        let p = params(5, 7);
        let all = enumerate_legitimate(p);
        assert_eq!(all.len(), 3 * 5 * 7);
        let mut dedup = all.clone();
        dedup.sort_by_key(|c| c.iter().map(|s| (s.x, s.rts, s.tra)).collect::<Vec<_>>());
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "enumeration produced duplicates");
    }

    /// Lemma 2: exactly one primary and one secondary token in every
    /// legitimate configuration.
    #[test]
    fn lemma2_token_counts_in_all_legitimate_configs() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        for c in enumerate_legitimate(p) {
            assert_eq!(a.primary_count(&c), 1, "{c:?}");
            assert_eq!(a.secondary_count(&c), 1, "{c:?}");
            let holders = a.token_holders(&c);
            assert!((1..=2).contains(&holders.len()));
        }
    }

    /// Lemma 1 (closure), exhaustively: from every legitimate configuration
    /// exactly one process is enabled and the next configuration is
    /// legitimate.
    #[test]
    fn lemma1_closure_exhaustive() {
        for (n, k) in [(3usize, 4u32), (4, 6), (5, 7)] {
            let p = params(n, k);
            let a = SsrMin::new(p);
            for c in enumerate_legitimate(p) {
                let enabled = a.enabled_processes(&c);
                assert_eq!(enabled.len(), 1, "enabled set in {c:?}");
                let next = a.step_process(&c, enabled[0]).unwrap();
                assert!(classify(p, &next).is_some(), "closure violated: {c:?} -> {next:?}");
            }
        }
    }

    /// Every process gets exactly the same service over a full cycle — 4K
    /// privileged configurations each (Figure 1's fairness, made exact).
    #[test]
    fn cycle_service_is_perfectly_fair() {
        for (n, k) in [(3usize, 4u32), (5, 7), (6, 8)] {
            let algo = SsrMin::new(params(n, k));
            let census = cycle_service_census(&algo);
            assert_eq!(census, vec![4 * k as u64; n], "n={n}, K={k}");
        }
    }

    /// The legitimate set is a single cycle of length 3nK: starting from the
    /// anchor, after 3nK single-process steps we are back at the anchor, and
    /// every legitimate configuration was visited exactly once.
    #[test]
    fn legitimate_set_is_one_cycle() {
        let p = params(4, 5);
        let a = SsrMin::new(p);
        let anchor = a.legitimate_anchor(0);
        let mut seen = std::collections::HashSet::new();
        let mut c = anchor.clone();
        let cycle_len = 3 * p.n() * p.k() as usize;
        for _ in 0..cycle_len {
            assert!(
                seen.insert(c.iter().map(|s| s.to_string()).collect::<Vec<_>>()),
                "revisited a configuration early"
            );
            let e = a.enabled_processes(&c);
            c = a.step_process(&c, e[0]).unwrap();
        }
        assert_eq!(c, anchor, "cycle did not close after 3nK steps");
        assert_eq!(seen.len(), cycle_len);
        assert_eq!(seen.len(), enumerate_legitimate(p).len());
    }
}
