//! Ring parameters `n` (processes) and `K` (state-space modulus).

use crate::error::{CoreError, Result};

/// Parameters of a K-state ring algorithm: the ring size `n` and the modulus
/// `K` of the Dijkstra counter.
///
/// The paper requires `n >= 3` (Algorithm 3, line 1) and `K > n` (line 2);
/// `K > n` is what makes Dijkstra's ring self-stabilizing under the
/// *distributed* daemon, because among `K > n` values at least one is not
/// present in the ring, and the bottom process eventually reaches a fresh
/// value not held by anyone else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RingParams {
    n: usize,
    k: u32,
}

impl RingParams {
    /// Minimum ring size accepted by [`RingParams::new`].
    pub const MIN_N: usize = 3;

    /// Create validated parameters. Fails unless `n >= 3` and `K > n`.
    ///
    /// ```
    /// use ssr_core::RingParams;
    /// let p = RingParams::new(5, 7).unwrap();
    /// assert_eq!((p.n(), p.k()), (5, 7));
    /// assert!(RingParams::new(5, 5).is_err()); // K must exceed n
    /// ```
    pub fn new(n: usize, k: u32) -> Result<Self> {
        if n < Self::MIN_N {
            return Err(CoreError::RingTooSmall { n, min: Self::MIN_N });
        }
        if (k as u64) <= n as u64 {
            return Err(CoreError::InvalidK { k, n });
        }
        Ok(RingParams { n, k })
    }

    /// The smallest legal parameters for a given ring size: `K = n + 1`.
    pub fn minimal(n: usize) -> Result<Self> {
        let k = u32::try_from(n + 1).expect("ring size fits in u32");
        Self::new(n, k)
    }

    /// Number of processes on the ring.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Modulus of the `x` counter; every `x` value lives in `0..K`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Ring-predecessor index of `i` (the neighbour `P_{i-1 mod n}`).
    #[inline]
    pub fn pred(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        if i == 0 {
            self.n - 1
        } else {
            i - 1
        }
    }

    /// Ring-successor index of `i` (the neighbour `P_{i+1 mod n}`).
    #[inline]
    pub fn succ(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        if i + 1 == self.n {
            0
        } else {
            i + 1
        }
    }

    /// `(v + 1) mod K` — the bottom process's counter increment.
    #[inline]
    pub fn inc(&self, v: u32) -> u32 {
        debug_assert!(v < self.k);
        let next = v + 1;
        if next == self.k {
            0
        } else {
            next
        }
    }

    /// `(v + d) mod K` for arbitrary displacement `d`.
    #[inline]
    pub fn add(&self, v: u32, d: u32) -> u32 {
        debug_assert!(v < self.k);
        ((v as u64 + d as u64) % self.k as u64) as u32
    }

    /// Validate that `x` lies in `0..K`, reporting `process` on failure.
    pub fn check_x(&self, x: u32, process: usize) -> Result<()> {
        if x < self.k {
            Ok(())
        } else {
            Err(CoreError::XOutOfRange { x, k: self.k, process })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_parameters() {
        let p = RingParams::new(5, 7).unwrap();
        assert_eq!(p.n(), 5);
        assert_eq!(p.k(), 7);
    }

    #[test]
    fn rejects_small_rings() {
        assert_eq!(RingParams::new(2, 7).unwrap_err(), CoreError::RingTooSmall { n: 2, min: 3 });
        assert_eq!(RingParams::new(0, 7).unwrap_err(), CoreError::RingTooSmall { n: 0, min: 3 });
    }

    #[test]
    fn rejects_k_not_exceeding_n() {
        assert_eq!(RingParams::new(5, 5).unwrap_err(), CoreError::InvalidK { k: 5, n: 5 });
        assert_eq!(RingParams::new(5, 4).unwrap_err(), CoreError::InvalidK { k: 4, n: 5 });
        assert!(RingParams::new(5, 6).is_ok());
    }

    #[test]
    fn minimal_uses_n_plus_one() {
        let p = RingParams::minimal(9).unwrap();
        assert_eq!(p.k(), 10);
    }

    #[test]
    fn ring_indices_wrap() {
        let p = RingParams::new(5, 7).unwrap();
        assert_eq!(p.pred(0), 4);
        assert_eq!(p.pred(3), 2);
        assert_eq!(p.succ(4), 0);
        assert_eq!(p.succ(1), 2);
    }

    #[test]
    fn modular_arithmetic_wraps_at_k() {
        let p = RingParams::new(5, 7).unwrap();
        assert_eq!(p.inc(6), 0);
        assert_eq!(p.inc(0), 1);
        assert_eq!(p.add(5, 4), 2);
        assert_eq!(p.add(0, 0), 0);
    }

    #[test]
    fn check_x_bounds() {
        let p = RingParams::new(5, 7).unwrap();
        assert!(p.check_x(6, 0).is_ok());
        assert_eq!(p.check_x(7, 2).unwrap_err(), CoreError::XOutOfRange { x: 7, k: 7, process: 2 });
    }
}
