//! An m-token circulation baseline: `m` independent copies of Dijkstra's
//! K-state ring layered on the same ring (in the spirit of the
//! Flatebo–Datta–Schoone multi-token rings, reference [3] of the paper).
//!
//! The paper argues (§5, Figure 12) that multi-token circulation does *not*
//! solve mutual inclusion in the message-passing model: if two nodes release
//! their tokens simultaneously, there is an instant with no token anywhere.
//! This module provides that comparator so the claim can be demonstrated
//! (experiments F12 and E7).

use std::fmt;

use crate::algorithm::{RingAlgorithm, TokenSet};
use crate::dijkstra::SsToken;
use crate::error::{CoreError, Result};
use crate::params::RingParams;

/// Local state: one Dijkstra counter per token instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiState(pub Vec<u32>);

impl MultiState {
    /// Counter of instance `j`.
    #[inline]
    pub fn get(&self, j: usize) -> u32 {
        self.0[j]
    }

    /// Number of instances.
    #[inline]
    pub fn instances(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for MultiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (j, x) in self.0.iter().enumerate() {
            if j > 0 {
                write!(f, "|")?;
            }
            write!(f, "{x}")?;
        }
        Ok(())
    }
}

/// Which token instances a process moves in one composite-atomicity step:
/// a bitmask over instances whose guard holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MultiRule {
    /// Bit `j` set ⇔ instance `j`'s Dijkstra rule fires.
    pub mask: u32,
}

impl MultiRule {
    /// True iff instance `j` fires under this rule.
    #[inline]
    pub fn fires(&self, j: usize) -> bool {
        self.mask & (1 << j) != 0
    }
}

/// `m` independent Dijkstra K-state rings sharing one physical ring.
///
/// A process is enabled iff at least one instance's guard holds, and a move
/// executes every enabled instance's command at once (the natural composite
/// reading of running the instances side by side). `P_i` holds instance
/// `j`'s token iff instance `j`'s guard holds at `P_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiSsToken {
    params: RingParams,
    base: SsToken,
    m: usize,
}

impl MultiSsToken {
    /// Create an `m`-token ring. Requires `1 <= m <= 32` and `m < n` (more
    /// tokens than processes is never useful, and the mask is a `u32`).
    pub fn new(params: RingParams, m: usize) -> Result<Self> {
        if m == 0 || m >= params.n() || m > 32 {
            return Err(CoreError::InvalidTokenCount { m, n: params.n() });
        }
        Ok(MultiSsToken { params, base: SsToken::new(params), m })
    }

    /// Ring parameters.
    pub fn params(&self) -> RingParams {
        self.params
    }

    /// Number of token instances.
    pub fn instances(&self) -> usize {
        self.m
    }

    /// Instance `j`'s guard at `P_i`.
    #[inline]
    pub fn instance_guard(&self, j: usize, i: usize, own: &MultiState, pred: &MultiState) -> bool {
        self.base.guard(i, own.get(j), pred.get(j))
    }

    /// A canonical legitimate configuration: every instance uniform at `x`,
    /// so all `m` tokens sit at the bottom process. From here the instances
    /// interleave freely.
    pub fn uniform_config(&self, x: u32) -> Vec<MultiState> {
        assert!(x < self.params.k());
        vec![MultiState(vec![x; self.m]); self.params.n()]
    }

    /// A legitimate configuration with instance `j`'s token at
    /// `positions[j]` — each instance uses the Dijkstra step shape
    /// `(x+1, …, x+1, x, …, x)` with `positions[j]` leading upper values
    /// (position 0 = the uniform shape, token at the bottom).
    pub fn config_with_tokens_at(&self, positions: &[usize], x: u32) -> Vec<MultiState> {
        assert_eq!(positions.len(), self.m, "one position per instance");
        assert!(positions.iter().all(|&p| p < self.params.n()));
        assert!(x < self.params.k());
        let upper = self.params.inc(x);
        (0..self.params.n())
            .map(|idx| {
                MultiState(positions.iter().map(|&p| if idx < p { upper } else { x }).collect())
            })
            .collect()
    }

    /// Token count of instance `j` across the whole configuration.
    pub fn instance_token_count(&self, config: &[MultiState], j: usize) -> usize {
        (0..self.params.n())
            .filter(|&i| {
                let pred = self.params.pred(i);
                self.instance_guard(j, i, &config[i], &config[pred])
            })
            .count()
    }

    /// Total tokens summed over instances.
    pub fn total_instance_tokens(&self, config: &[MultiState]) -> usize {
        (0..self.m).map(|j| self.instance_token_count(config, j)).sum()
    }

    /// Number of processes holding at least one instance token (the
    /// privileged processes).
    pub fn privileged_count(&self, config: &[MultiState]) -> usize {
        (0..self.params.n())
            .filter(|&i| {
                let pred = self.params.pred(i);
                (0..self.m).any(|j| self.instance_guard(j, i, &config[i], &config[pred]))
            })
            .count()
    }
}

impl RingAlgorithm for MultiSsToken {
    type State = MultiState;
    type Rule = MultiRule;

    fn n(&self) -> usize {
        self.params.n()
    }

    fn enabled_rule(
        &self,
        i: usize,
        own: &MultiState,
        pred: &MultiState,
        _succ: &MultiState,
    ) -> Option<MultiRule> {
        let mut mask = 0u32;
        for j in 0..self.m {
            if self.instance_guard(j, i, own, pred) {
                mask |= 1 << j;
            }
        }
        (mask != 0).then_some(MultiRule { mask })
    }

    fn execute(
        &self,
        i: usize,
        rule: MultiRule,
        own: &MultiState,
        pred: &MultiState,
        _succ: &MultiState,
    ) -> MultiState {
        let mut next = own.clone();
        for j in 0..self.m {
            if rule.fires(j) {
                next.0[j] = self.base.command(i, pred.get(j));
            }
        }
        next
    }

    fn tokens_at(
        &self,
        i: usize,
        own: &MultiState,
        pred: &MultiState,
        _succ: &MultiState,
    ) -> TokenSet {
        let primary = self.instance_guard(0, i, own, pred);
        let secondary = (1..self.m).any(|j| self.instance_guard(j, i, own, pred));
        TokenSet::new(primary, secondary)
    }

    fn is_legitimate(&self, config: &[MultiState]) -> bool {
        // Legitimate ⇔ every instance is a legitimate Dijkstra configuration.
        if config.len() != self.params.n() {
            return false;
        }
        (0..self.m).all(|j| {
            let slice: Vec<u32> = config.iter().map(|s| s.get(j)).collect();
            self.base.is_legitimate(&slice)
        })
    }

    fn rule_tag(&self, _rule: MultiRule) -> u8 {
        2 // every move is a counter move
    }

    fn validate_config(&self, config: &[MultiState]) -> Result<()> {
        if config.len() != self.params.n() {
            return Err(CoreError::ConfigLenMismatch {
                expected: self.params.n(),
                actual: config.len(),
            });
        }
        for (i, s) in config.iter().enumerate() {
            if s.instances() != self.m {
                return Err(CoreError::InvalidTokenCount { m: s.instances(), n: self.m });
            }
            for j in 0..self.m {
                self.params.check_x(s.get(j), i)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn algo(n: usize, k: u32, m: usize) -> MultiSsToken {
        MultiSsToken::new(RingParams::new(n, k).unwrap(), m).unwrap()
    }

    #[test]
    fn rejects_bad_token_counts() {
        let p = RingParams::new(5, 7).unwrap();
        assert!(MultiSsToken::new(p, 0).is_err());
        assert!(MultiSsToken::new(p, 5).is_err());
        assert!(MultiSsToken::new(p, 2).is_ok());
    }

    #[test]
    fn uniform_config_is_legitimate_with_m_tokens_at_bottom() {
        let a = algo(5, 7, 3);
        let cfg = a.uniform_config(2);
        assert!(a.is_legitimate(&cfg));
        assert_eq!(a.total_instance_tokens(&cfg), 3);
        assert_eq!(a.privileged_count(&cfg), 1); // all three at P0
        assert_eq!(a.token_holders(&cfg), vec![0]);
    }

    #[test]
    fn instances_circulate_independently() {
        let a = algo(5, 7, 2);
        let mut cfg = a.uniform_config(0);
        // P0 fires both instances at once.
        let e = a.enabled_processes(&cfg);
        assert_eq!(e, vec![0]);
        cfg = a.step_process(&cfg, 0).unwrap();
        assert_eq!(cfg[0], MultiState(vec![1, 1]));
        // Now P1 holds both tokens; fire it only — the tokens stay together
        // unless the daemon separates them, so drive instance separation by
        // stepping: after P1 moves, P2 holds both, etc.
        assert_eq!(a.token_holders(&cfg), vec![1]);
        cfg = a.step_process(&cfg, 1).unwrap();
        assert_eq!(a.token_holders(&cfg), vec![2]);
        assert!(a.is_legitimate(&cfg));
    }

    #[test]
    fn separated_tokens_give_two_privileged_processes() {
        let a = algo(5, 7, 2);
        // Instance 0 token at P2 (step config), instance 1 token at P0
        // (uniform): two privileged processes.
        let cfg: Vec<MultiState> = vec![
            MultiState(vec![1, 4]),
            MultiState(vec![1, 4]),
            MultiState(vec![0, 4]),
            MultiState(vec![0, 4]),
            MultiState(vec![0, 4]),
        ];
        assert!(a.is_legitimate(&cfg));
        assert_eq!(a.instance_token_count(&cfg, 0), 1);
        assert_eq!(a.instance_token_count(&cfg, 1), 1);
        assert_eq!(a.token_holders(&cfg), vec![0, 2]);
        assert_eq!(a.privileged_count(&cfg), 2);
    }

    #[test]
    fn tokens_at_maps_instance0_to_primary() {
        let a = algo(5, 7, 2);
        let cfg: Vec<MultiState> = vec![
            MultiState(vec![1, 4]),
            MultiState(vec![1, 4]),
            MultiState(vec![0, 4]),
            MultiState(vec![0, 4]),
            MultiState(vec![0, 4]),
        ];
        assert_eq!(a.tokens_in(&cfg, 2), TokenSet::new(true, false)); // instance 0
        assert_eq!(a.tokens_in(&cfg, 0), TokenSet::new(false, true)); // instance 1
    }

    #[test]
    fn convergence_of_each_instance_under_central_daemon() {
        let a = algo(4, 5, 2);
        let mut cfg = vec![
            MultiState(vec![3, 1]),
            MultiState(vec![0, 4]),
            MultiState(vec![2, 2]),
            MultiState(vec![1, 0]),
        ];
        for _ in 0..500 {
            if a.is_legitimate(&cfg) {
                break;
            }
            let e = a.enabled_processes(&cfg);
            assert!(!e.is_empty(), "multi-token ring deadlocked");
            cfg = a.step_process(&cfg, e[0]).unwrap();
        }
        assert!(a.is_legitimate(&cfg));
        assert_eq!(a.instance_token_count(&cfg, 0), 1);
        assert_eq!(a.instance_token_count(&cfg, 1), 1);
    }

    #[test]
    fn validate_config_checks_instance_count_and_range() {
        let a = algo(4, 5, 2);
        let good = a.uniform_config(1);
        assert!(a.validate_config(&good).is_ok());
        let short = vec![MultiState(vec![0, 0]); 3];
        assert!(a.validate_config(&short).is_err());
        let wrong_m = vec![MultiState(vec![0]); 4];
        assert!(a.validate_config(&wrong_m).is_err());
        let oob = vec![MultiState(vec![9, 0]); 4];
        assert!(a.validate_config(&oob).is_err());
    }

    #[test]
    fn display_joins_instances() {
        assert_eq!(MultiState(vec![3, 4]).to_string(), "3|4");
        assert_eq!(MultiState(vec![7]).to_string(), "7");
    }
}
