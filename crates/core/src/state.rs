//! The per-process local state `x.rts.tra` of SSRmin.

use std::fmt;
use std::str::FromStr;

/// Local state of one SSRmin process: the Dijkstra counter `x` plus the two
/// handshake bits `rts` ("ready to send" the secondary token) and `tra`
/// ("token receipt acknowledged").
///
/// The paper writes a state as `x.rts.tra`, e.g. `3.0.1`; [`fmt::Display`]
/// and [`FromStr`] use exactly that notation so traces can be compared
/// against the paper's Figure 4 verbatim.
///
/// ```
/// use ssr_core::SsrState;
/// let s: SsrState = "3.0.1".parse().unwrap();
/// assert_eq!(s, SsrState::new(3, 0, 1));
/// assert_eq!(s.to_string(), "3.0.1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SsrState {
    /// Dijkstra K-state counter, `0 <= x < K`.
    pub x: u32,
    /// `rts_i` — process is ready to hand the secondary token to its successor.
    pub rts: bool,
    /// `tra_i` — process has received (acknowledged) the secondary token.
    pub tra: bool,
}

impl SsrState {
    /// Build a state from the paper's notation: `new(3, 0, 1)` is `3.0.1`.
    /// Any nonzero bit value is treated as 1.
    #[inline]
    pub fn new(x: u32, rts: u8, tra: u8) -> Self {
        SsrState { x, rts: rts != 0, tra: tra != 0 }
    }

    /// The `⟨rts.tra⟩` pair as a compact two-bit code `rts * 2 + tra`
    /// (so `0.0 → 0`, `0.1 → 1`, `1.0 → 2`, `1.1 → 3`).
    #[inline]
    pub fn flag_code(&self) -> u8 {
        (self.rts as u8) << 1 | self.tra as u8
    }

    /// True iff `⟨rts.tra⟩ = ⟨r.t⟩` for the given bits.
    #[inline]
    pub fn flags_are(&self, r: u8, t: u8) -> bool {
        self.rts == (r != 0) && self.tra == (t != 0)
    }

    /// Replace the flag pair, keeping `x`.
    #[inline]
    pub fn with_flags(self, rts: bool, tra: bool) -> Self {
        SsrState { rts, tra, ..self }
    }

    /// Replace `x`, keeping the flag pair.
    #[inline]
    pub fn with_x(self, x: u32) -> Self {
        SsrState { x, ..self }
    }

    /// All four flag combinations for a given `x` — handy for exhaustive
    /// enumeration in tests and the Figure 3 rule map.
    pub fn all_flags(x: u32) -> [SsrState; 4] {
        [
            SsrState::new(x, 0, 0),
            SsrState::new(x, 0, 1),
            SsrState::new(x, 1, 0),
            SsrState::new(x, 1, 1),
        ]
    }
}

impl fmt::Display for SsrState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.x, self.rts as u8, self.tra as u8)
    }
}

/// Error parsing the `x.rts.tra` notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStateError(String);

impl fmt::Display for ParseStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SSRmin state literal: {:?}", self.0)
    }
}

impl std::error::Error for ParseStateError {}

impl FromStr for SsrState {
    type Err = ParseStateError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let bad = || ParseStateError(s.to_owned());
        let mut parts = s.split('.');
        let x = parts.next().ok_or_else(bad)?.parse::<u32>().map_err(|_| bad())?;
        let bit = |p: Option<&str>| -> std::result::Result<bool, ParseStateError> {
            match p {
                Some("0") => Ok(false),
                Some("1") => Ok(true),
                _ => Err(bad()),
            }
        };
        let rts = bit(parts.next())?;
        let tra = bit(parts.next())?;
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(SsrState { x, rts, tra })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(SsrState::new(3, 0, 1).to_string(), "3.0.1");
        assert_eq!(SsrState::new(0, 1, 0).to_string(), "0.1.0");
        assert_eq!(SsrState::new(12, 1, 1).to_string(), "12.1.1");
    }

    #[test]
    fn parse_roundtrip() {
        for x in [0, 1, 7, 40] {
            for s in SsrState::all_flags(x) {
                let parsed: SsrState = s.to_string().parse().unwrap();
                assert_eq!(parsed, s);
            }
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<SsrState>().is_err());
        assert!("3".parse::<SsrState>().is_err());
        assert!("3.0".parse::<SsrState>().is_err());
        assert!("3.0.2".parse::<SsrState>().is_err());
        assert!("3.0.1.0".parse::<SsrState>().is_err());
        assert!("a.0.1".parse::<SsrState>().is_err());
        assert!("3.00.1".parse::<SsrState>().is_err());
    }

    #[test]
    fn flag_code_orders_pairs() {
        assert_eq!(SsrState::new(0, 0, 0).flag_code(), 0);
        assert_eq!(SsrState::new(0, 0, 1).flag_code(), 1);
        assert_eq!(SsrState::new(0, 1, 0).flag_code(), 2);
        assert_eq!(SsrState::new(0, 1, 1).flag_code(), 3);
    }

    #[test]
    fn flags_are_matches_exact_pair() {
        let s = SsrState::new(5, 1, 0);
        assert!(s.flags_are(1, 0));
        assert!(!s.flags_are(0, 0));
        assert!(!s.flags_are(1, 1));
    }

    #[test]
    fn with_helpers_preserve_other_fields() {
        let s = SsrState::new(5, 1, 0);
        assert_eq!(s.with_flags(false, true), SsrState::new(5, 0, 1));
        assert_eq!(s.with_x(2), SsrState::new(2, 1, 0));
    }
}
