//! SSRmin — the paper's self-stabilizing mutual-inclusion algorithm
//! (Algorithm 3): two tokens circulating a bidirectional ring like an
//! inchworm, with an `rts`/`tra` handshake providing graceful handover.

use crate::algorithm::{RingAlgorithm, TokenSet};
use crate::dijkstra::SsToken;
use crate::error::{CoreError, Result};
use crate::legitimacy;
use crate::params::RingParams;
use crate::rules::SsrRule;
use crate::state::SsrState;

/// The SSRmin algorithm of the paper (Algorithm 3).
///
/// * The **primary token** is Dijkstra's K-state ring token: `P_i` holds it
///   iff `G_i` holds (bottom: `x_0 = x_{n-1}`; others: `x_i ≠ x_{i-1}`).
/// * The **secondary token** is held iff
///   `tra_i = 1 ∨ (rts_i = 1 ∧ rts_{i+1} = 0 ∧ tra_{i+1} = 0)`.
///
/// In legitimate configurations exactly one primary and one secondary token
/// exist, located at the same or adjacent processes, so the number of
/// *privileged* processes is always 1 or 2 — a solution to the (1, 2)
/// critical-section problem (Theorem 1). The handshake rules are ordered so
/// that under the Cached Sensornet Transform the token-existence predicate
/// never evaluates to zero anywhere, even while state updates are in flight
/// (*model gap tolerance*, Theorem 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsrMin {
    params: RingParams,
    base: SsToken,
}

impl SsrMin {
    /// Create the algorithm for the given ring parameters.
    pub fn new(params: RingParams) -> Self {
        SsrMin { params, base: SsToken::new(params) }
    }

    /// Ring parameters.
    pub fn params(&self) -> RingParams {
        self.params
    }

    /// The underlying Dijkstra ring (shares `G_i`/`C_i`).
    pub fn base(&self) -> &SsToken {
        &self.base
    }

    /// `G_i` — the guard of the underlying Dijkstra ring, which is also the
    /// primary-token condition.
    #[inline]
    pub fn guard(&self, i: usize, own: &SsrState, pred: &SsrState) -> bool {
        self.base.guard(i, own.x, pred.x)
    }

    /// `C_i` — the Dijkstra move on the counter component.
    #[inline]
    pub fn command(&self, i: usize, pred: &SsrState) -> u32 {
        self.base.command(i, pred.x)
    }

    /// Primary-token condition at `P_i` (line 37 of Algorithm 3): `G_i`.
    #[inline]
    pub fn holds_primary(&self, i: usize, own: &SsrState, pred: &SsrState) -> bool {
        self.guard(i, own, pred)
    }

    /// Secondary-token condition at `P_i` (lines 38–40 of Algorithm 3):
    /// `tra_i = 1`, or `rts_i = 1` while the successor shows `⟨0.0⟩`.
    ///
    /// The second disjunct is what makes the algorithm model-gap tolerant:
    /// while `P_i` has offered the token (`rts_i = 1`) and has not yet seen
    /// the successor's acknowledgement, the token is still accounted to
    /// `P_i`, so it never vanishes during the message transit.
    #[inline]
    pub fn holds_secondary(&self, own: &SsrState, succ: &SsrState) -> bool {
        own.tra || (own.rts && !succ.rts && !succ.tra)
    }

    /// The enabled rule at `P_i` for the local view, applying the priority
    /// R1 > R2 > R3 > R4 > R5. Returns at most one rule.
    pub fn enabled(
        &self,
        i: usize,
        own: &SsrState,
        pred: &SsrState,
        succ: &SsrState,
    ) -> Option<SsrRule> {
        if self.guard(i, own, pred) {
            // Rule 1: own flags ∈ {0.0, 0.1, 1.1}.
            if !own.rts || own.tra {
                return Some(SsrRule::R1);
            }
            // From here own flags = ⟨1.0⟩.
            // Rule 2: successor shows ⟨0.1⟩ — the secondary was received.
            if succ.flags_are(0, 1) {
                return Some(SsrRule::R2);
            }
            // Rule 4: anything but the legitimate waiting pattern
            // ⟨0.0, 1.0, 0.0⟩.
            if !(pred.flags_are(0, 0) && succ.flags_are(0, 0)) {
                return Some(SsrRule::R4);
            }
            None
        } else {
            // Rule 3: predecessor offers (⟨1.0⟩) and own flags ∈
            // {0.0, 1.0, 1.1} (everything except ⟨0.1⟩).
            if pred.flags_are(1, 0) && (!own.tra || own.rts) {
                return Some(SsrRule::R3);
            }
            // Rule 5: own flags ≠ ⟨0.0⟩ and not the legitimate
            // "holding received secondary" pattern ⟨1.0, 0.1⟩.
            let waiting_with_secondary = pred.flags_are(1, 0) && own.flags_are(0, 1);
            if (own.rts || own.tra) && !waiting_with_secondary {
                return Some(SsrRule::R5);
            }
            None
        }
    }

    /// Execute `rule`'s command, returning `P_i`'s new state.
    pub fn apply(&self, i: usize, rule: SsrRule, own: &SsrState, pred: &SsrState) -> SsrState {
        match rule {
            SsrRule::R1 => own.with_flags(true, false),
            SsrRule::R2 | SsrRule::R4 => {
                SsrState { x: self.command(i, pred), rts: false, tra: false }
            }
            SsrRule::R3 => own.with_flags(false, true),
            SsrRule::R5 => own.with_flags(false, false),
        }
    }

    /// The anchor legitimate configuration `γ₀ = (x.0.1, x.0.0, …, x.0.0)`
    /// used throughout the closure proof: `P_0` holds both tokens.
    pub fn legitimate_anchor(&self, x: u32) -> Vec<SsrState> {
        assert!(x < self.params.k(), "x must be < K");
        let mut cfg = vec![SsrState::new(x, 0, 0); self.params.n()];
        cfg[0] = SsrState::new(x, 0, 1);
        cfg
    }

    /// Number of processes holding the primary token.
    pub fn primary_count(&self, config: &[SsrState]) -> usize {
        (0..self.params.n())
            .filter(|&i| {
                let (own, pred, _) = self.view(config, i);
                self.holds_primary(i, own, pred)
            })
            .count()
    }

    /// Number of processes holding the secondary token.
    pub fn secondary_count(&self, config: &[SsrState]) -> usize {
        (0..self.params.n())
            .filter(|&i| {
                let (own, _, succ) = self.view(config, i);
                self.holds_secondary(own, succ)
            })
            .count()
    }

    /// The Figure 3 rule map: for a given own flag pair and guard value,
    /// the set of rules that can possibly be enabled, over all neighbour
    /// flag combinations. (Neighbour *counter* values only matter through
    /// `G_i`, which is fixed by `guard`.)
    pub fn possible_rules(&self, own_flags: (u8, u8), guard: bool) -> Vec<SsrRule> {
        // Pick concrete counters realizing the requested guard value for a
        // non-bottom process: guard ⇔ own.x != pred.x.
        let i = 1;
        let own = SsrState::new(if guard { 1 } else { 0 }, own_flags.0, own_flags.1);
        let pred_x = 0;
        let mut out: Vec<SsrRule> = Vec::new();
        for pf in 0..4u8 {
            for sf in 0..4u8 {
                let pred = SsrState::new(pred_x, pf >> 1, pf & 1);
                let succ = SsrState::new(0, sf >> 1, sf & 1);
                if let Some(r) = self.enabled(i, &own, &pred, &succ) {
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
        }
        out.sort();
        out
    }
}

impl RingAlgorithm for SsrMin {
    type State = SsrState;
    type Rule = SsrRule;

    fn n(&self) -> usize {
        self.params.n()
    }

    fn enabled_rule(
        &self,
        i: usize,
        own: &SsrState,
        pred: &SsrState,
        succ: &SsrState,
    ) -> Option<SsrRule> {
        self.enabled(i, own, pred, succ)
    }

    fn execute(
        &self,
        i: usize,
        rule: SsrRule,
        own: &SsrState,
        pred: &SsrState,
        _succ: &SsrState,
    ) -> SsrState {
        self.apply(i, rule, own, pred)
    }

    fn tokens_at(&self, i: usize, own: &SsrState, pred: &SsrState, succ: &SsrState) -> TokenSet {
        TokenSet::new(self.holds_primary(i, own, pred), self.holds_secondary(own, succ))
    }

    fn is_legitimate(&self, config: &[SsrState]) -> bool {
        legitimacy::classify(self.params, config).is_some()
    }

    fn rule_tag(&self, rule: SsrRule) -> u8 {
        rule.number()
    }

    fn validate_config(&self, config: &[SsrState]) -> Result<()> {
        if config.len() != self.params.n() {
            return Err(CoreError::ConfigLenMismatch {
                expected: self.params.n(),
                actual: config.len(),
            });
        }
        for (i, s) in config.iter().enumerate() {
            self.params.check_x(s.x, i)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::RingAlgorithm;

    fn algo(n: usize, k: u32) -> SsrMin {
        SsrMin::new(RingParams::new(n, k).unwrap())
    }

    fn cfg(states: &[&str]) -> Vec<SsrState> {
        states.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn anchor_configuration_is_legitimate_with_both_tokens_at_p0() {
        let a = algo(5, 7);
        let c = a.legitimate_anchor(3);
        assert!(a.is_legitimate(&c));
        assert_eq!(a.token_holders(&c), vec![0]);
        assert_eq!(a.tokens_in(&c, 0), TokenSet::BOTH);
        assert_eq!(a.primary_count(&c), 1);
        assert_eq!(a.secondary_count(&c), 1);
    }

    #[test]
    fn rule1_fires_at_anchor() {
        let a = algo(5, 7);
        let c = a.legitimate_anchor(3);
        assert_eq!(a.enabled_rule_in(&c, 0), Some(SsrRule::R1));
        for i in 1..5 {
            assert_eq!(a.enabled_rule_in(&c, i), None, "P{i} must be disabled");
        }
    }

    /// Replay the handover cycle of Section 3.1 at P0/P1:
    /// R1 at P0 → R3 at P1 → R2 at P0.
    #[test]
    fn handover_cycle_follows_abstract_actions() {
        let a = algo(5, 7);
        let c0 = a.legitimate_anchor(3);

        // α₁: P0 gets ready to send the secondary token.
        let c1 = a.step_process(&c0, 0).unwrap();
        assert_eq!(c1, cfg(&["3.1.0", "3.0.0", "3.0.0", "3.0.0", "3.0.0"]));
        // P0 still holds both tokens (model gap tolerance of Rule 1).
        assert_eq!(a.tokens_in(&c1, 0), TokenSet::BOTH);
        assert_eq!(a.enabled_processes(&c1), vec![1]);
        assert_eq!(a.enabled_rule_in(&c1, 1), Some(SsrRule::R3));

        // β: P1 receives the secondary token.
        let c2 = a.step_process(&c1, 1).unwrap();
        assert_eq!(c2, cfg(&["3.1.0", "3.0.1", "3.0.0", "3.0.0", "3.0.0"]));
        assert_eq!(a.tokens_in(&c2, 0), TokenSet::new(true, false));
        assert_eq!(a.tokens_in(&c2, 1), TokenSet::new(false, true));
        assert_eq!(a.enabled_processes(&c2), vec![0]);
        assert_eq!(a.enabled_rule_in(&c2, 0), Some(SsrRule::R2));

        // α₂: P0 sends the primary token (Dijkstra move).
        let c3 = a.step_process(&c2, 0).unwrap();
        assert_eq!(c3, cfg(&["4.0.0", "3.0.1", "3.0.0", "3.0.0", "3.0.0"]));
        assert_eq!(a.tokens_in(&c3, 1), TokenSet::BOTH);
        assert!(a.is_legitimate(&c3));
    }

    /// The exact 16-step execution of Figure 4 (n = 5, starting at
    /// (3.0.1, 3.0.0, 3.0.0, 3.0.0, 3.0.0)).
    #[test]
    fn figure4_execution_matches_paper() {
        let a = algo(5, 7);
        let expected: [(&[&str; 5], usize, SsrRule); 15] = [
            (&["3.0.1", "3.0.0", "3.0.0", "3.0.0", "3.0.0"], 0, SsrRule::R1),
            (&["3.1.0", "3.0.0", "3.0.0", "3.0.0", "3.0.0"], 1, SsrRule::R3),
            (&["3.1.0", "3.0.1", "3.0.0", "3.0.0", "3.0.0"], 0, SsrRule::R2),
            (&["4.0.0", "3.0.1", "3.0.0", "3.0.0", "3.0.0"], 1, SsrRule::R1),
            (&["4.0.0", "3.1.0", "3.0.0", "3.0.0", "3.0.0"], 2, SsrRule::R3),
            (&["4.0.0", "3.1.0", "3.0.1", "3.0.0", "3.0.0"], 1, SsrRule::R2),
            (&["4.0.0", "4.0.0", "3.0.1", "3.0.0", "3.0.0"], 2, SsrRule::R1),
            (&["4.0.0", "4.0.0", "3.1.0", "3.0.0", "3.0.0"], 3, SsrRule::R3),
            (&["4.0.0", "4.0.0", "3.1.0", "3.0.1", "3.0.0"], 2, SsrRule::R2),
            (&["4.0.0", "4.0.0", "4.0.0", "3.0.1", "3.0.0"], 3, SsrRule::R1),
            (&["4.0.0", "4.0.0", "4.0.0", "3.1.0", "3.0.0"], 4, SsrRule::R3),
            (&["4.0.0", "4.0.0", "4.0.0", "3.1.0", "3.0.1"], 3, SsrRule::R2),
            (&["4.0.0", "4.0.0", "4.0.0", "4.0.0", "3.0.1"], 4, SsrRule::R1),
            (&["4.0.0", "4.0.0", "4.0.0", "4.0.0", "3.1.0"], 0, SsrRule::R3),
            (&["4.0.1", "4.0.0", "4.0.0", "4.0.0", "3.1.0"], 4, SsrRule::R2),
        ];
        let mut c = a.legitimate_anchor(3);
        for (step, (want, mover, rule)) in expected.iter().enumerate() {
            assert_eq!(&c, &cfg(*want), "configuration at step {}", step + 1);
            assert!(a.is_legitimate(&c), "step {} must be legitimate", step + 1);
            assert_eq!(a.enabled_processes(&c), vec![*mover], "enabled set at step {}", step + 1);
            assert_eq!(a.enabled_rule_in(&c, *mover), Some(*rule));
            c = a.step_process(&c, *mover).unwrap();
        }
        // Step 16: the anchor shape again with x+1.
        assert_eq!(c, cfg(&["4.0.1", "4.0.0", "4.0.0", "4.0.0", "4.0.0"]));
        assert!(a.is_legitimate(&c));
    }

    /// Figure 1's claim: the token-holder pattern alternates between one
    /// process holding PS and a neighbouring pair holding P | S.
    #[test]
    fn token_movement_is_inchworm() {
        let a = algo(5, 7);
        let mut c = a.legitimate_anchor(0);
        for _ in 0..60 {
            let holders = a.token_holders(&c);
            match holders.len() {
                1 => assert_eq!(a.tokens_in(&c, holders[0]), TokenSet::BOTH),
                2 => {
                    // Adjacent on the ring, primary behind secondary.
                    let (p, s) = (holders[0], holders[1]);
                    let (front, back) = if a.params().succ(p) == s { (s, p) } else { (p, s) };
                    assert_eq!(a.params().succ(back), front);
                    assert_eq!(a.tokens_in(&c, back), TokenSet::new(true, false));
                    assert_eq!(a.tokens_in(&c, front), TokenSet::new(false, true));
                }
                k => panic!("{k} privileged processes in a legitimate config"),
            }
            let e = a.enabled_processes(&c);
            assert_eq!(e.len(), 1);
            c = a.step_process(&c, e[0]).unwrap();
        }
    }

    #[test]
    fn rule4_fixes_inconsistent_neighbourhood() {
        let a = algo(5, 7);
        // P1 has G (x differs from pred) and flags 1.0, but its predecessor
        // also shows 1.0 — not the legitimate waiting pattern.
        let c = cfg(&["4.1.0", "3.1.0", "3.0.0", "3.0.0", "4.0.0"]);
        assert_eq!(a.enabled_rule_in(&c, 1), Some(SsrRule::R4));
        let next = a.step_process(&c, 1).unwrap();
        assert_eq!(next[1], "4.0.0".parse().unwrap()); // C_i executed, flags reset
    }

    #[test]
    fn rule4_not_enabled_in_legitimate_waiting_pattern() {
        let a = algo(5, 7);
        // P0 offered the secondary (1.0), P1 yet to receive (0.0): P0 must
        // wait, not fire Rule 4.
        let c = cfg(&["3.1.0", "3.0.0", "3.0.0", "3.0.0", "3.0.0"]);
        assert_eq!(a.enabled_rule_in(&c, 0), None);
    }

    #[test]
    fn rule5_resets_stray_flags() {
        let a = algo(5, 7);
        // P2 has ¬G (x equal to pred), flags 0.1, but predecessor is not
        // offering (flags 0.0) — stray tra bit.
        let c = cfg(&["4.0.0", "3.0.0", "3.0.1", "3.0.0", "3.0.0"]);
        assert_eq!(a.enabled_rule_in(&c, 2), Some(SsrRule::R5));
        let next = a.step_process(&c, 2).unwrap();
        assert_eq!(next[2], "3.0.0".parse().unwrap());
    }

    #[test]
    fn rule5_not_enabled_when_holding_received_secondary() {
        let a = algo(5, 7);
        // Legitimate: P0 offered (1.0), P1 received (0.1) — P1 waits.
        let c = cfg(&["3.1.0", "3.0.1", "3.0.0", "3.0.0", "3.0.0"]);
        assert_eq!(a.enabled_rule_in(&c, 1), None);
    }

    #[test]
    fn rule1_covers_flag_pair_11() {
        let a = algo(5, 7);
        // A corrupted 1.1 with G true is recycled through Rule 1.
        let c = cfg(&["4.0.0", "3.1.1", "3.0.0", "3.0.0", "4.0.0"]);
        assert_eq!(a.enabled_rule_in(&c, 1), Some(SsrRule::R1));
    }

    #[test]
    fn rule3_accepts_own_flags_00_10_11() {
        let a = algo(5, 7);
        for own in ["3.0.0", "3.1.0", "3.1.1"] {
            let mut c = cfg(&["3.1.0", own, "3.0.0", "3.0.0", "3.0.0"]);
            // Make sure P1 has ¬G: x1 == x0.
            c[1].x = 3;
            assert_eq!(a.enabled_rule_in(&c, 1), Some(SsrRule::R3), "own flags {own}");
        }
        // ⟨0.1⟩ is excluded (that is the already-received pattern).
        let c = cfg(&["3.1.0", "3.0.1", "3.0.0", "3.0.0", "3.0.0"]);
        assert_eq!(a.enabled_rule_in(&c, 1), None);
    }

    /// Figure 3: the map from ⟨rts.tra⟩ × G to possible rules.
    #[test]
    fn figure3_rule_map() {
        let a = algo(5, 7);
        // G true.
        assert_eq!(a.possible_rules((0, 0), true), vec![SsrRule::R1]);
        assert_eq!(a.possible_rules((0, 1), true), vec![SsrRule::R1]);
        assert_eq!(a.possible_rules((1, 1), true), vec![SsrRule::R1]);
        assert_eq!(a.possible_rules((1, 0), true), vec![SsrRule::R2, SsrRule::R4]);
        // G false.
        assert_eq!(a.possible_rules((0, 0), false), vec![SsrRule::R3]);
        assert_eq!(a.possible_rules((0, 1), false), vec![SsrRule::R5]);
        assert_eq!(a.possible_rules((1, 0), false), vec![SsrRule::R3, SsrRule::R5]);
        assert_eq!(a.possible_rules((1, 1), false), vec![SsrRule::R3, SsrRule::R5]);
    }

    /// Lemma 4 (no deadlock), exhaustively on a small ring: every
    /// configuration has at least one enabled process.
    #[test]
    fn no_deadlock_exhaustive_n3() {
        let a = algo(3, 4);
        let mut checked = 0u64;
        for states in all_configs(3, 4) {
            assert!(
                !a.is_deadlocked(&states),
                "deadlock in {:?}",
                states.iter().map(|s| s.to_string()).collect::<Vec<_>>()
            );
            checked += 1;
        }
        assert_eq!(checked, (4u64 * 4) * (4 * 4) * (4 * 4)); // (K*4)^n
    }

    /// Lemma 3 via SSRmin: the primary token always exists.
    #[test]
    fn primary_token_always_exists_exhaustive_n3() {
        let a = algo(3, 4);
        for states in all_configs(3, 4) {
            assert!(a.primary_count(&states) >= 1);
        }
    }

    /// At most one rule is enabled per process (priority resolution), checked
    /// over every local view.
    #[test]
    fn enabled_returns_unique_rule_for_every_view() {
        let a = algo(5, 7);
        for i in [0usize, 1] {
            for ox in 0..3u32 {
                for px in 0..3u32 {
                    for of in 0..4u8 {
                        for pf in 0..4u8 {
                            for sf in 0..4u8 {
                                let own = SsrState::new(ox, of >> 1, of & 1);
                                let pred = SsrState::new(px, pf >> 1, pf & 1);
                                let succ = SsrState::new(0, sf >> 1, sf & 1);
                                // Must not panic; any Some(rule) must satisfy
                                // the guard polarity.
                                if let Some(r) = a.enabled(i, &own, &pred, &succ) {
                                    assert_eq!(r.requires_guard(), a.guard(i, &own, &pred));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Enumerate all (4K)^n configurations for tiny rings.
    fn all_configs(n: usize, k: u32) -> impl Iterator<Item = Vec<SsrState>> {
        let per = 4 * k as u64;
        let total = per.pow(n as u32);
        (0..total).map(move |mut raw| {
            (0..n)
                .map(|_| {
                    let d = (raw % per) as u32;
                    raw /= per;
                    SsrState::new(d / 4, ((d % 4) >> 1) as u8, (d % 2) as u8)
                })
                .collect()
        })
    }
}
