//! The guarded-command ring-algorithm abstraction shared by every execution
//! substrate (state-reading engine, message-passing simulator, threaded
//! runtime).

use std::fmt;

use crate::error::{CoreError, Result};

/// A configuration is one local state per process, indexed by ring position.
pub type Config<S> = Vec<S>;

/// Which of SSRmin's two tokens a process holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// The token of the underlying Dijkstra ring (the inchworm's tail).
    Primary,
    /// The token moved ahead by the `rts`/`tra` handshake (the head).
    Secondary,
}

/// The set of tokens held by one process at one instant.
///
/// For SSRmin this is at most `{Primary, Secondary}`; baselines reuse the
/// same type by mapping their token(s) onto the two slots (e.g. the dual
/// Dijkstra baseline reports instance 0 as `Primary` and instance 1 as
/// `Secondary`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TokenSet {
    /// Holds the primary token.
    pub primary: bool,
    /// Holds the secondary token.
    pub secondary: bool,
}

impl TokenSet {
    /// Neither token.
    pub const NONE: TokenSet = TokenSet { primary: false, secondary: false };
    /// Both tokens.
    pub const BOTH: TokenSet = TokenSet { primary: true, secondary: true };

    /// Build a set from two flags.
    #[inline]
    pub fn new(primary: bool, secondary: bool) -> Self {
        TokenSet { primary, secondary }
    }

    /// Number of tokens in the set (0, 1 or 2).
    #[inline]
    pub fn count(&self) -> u8 {
        self.primary as u8 + self.secondary as u8
    }

    /// True iff the process holds at least one token — i.e. it is
    /// *privileged* and may stay in the critical section.
    #[inline]
    pub fn any(&self) -> bool {
        self.primary || self.secondary
    }

    /// True iff the given kind is in the set.
    #[inline]
    pub fn holds(&self, kind: TokenKind) -> bool {
        match kind {
            TokenKind::Primary => self.primary,
            TokenKind::Secondary => self.secondary,
        }
    }
}

impl fmt::Display for TokenSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.primary, self.secondary) {
            (true, true) => write!(f, "PS"),
            (true, false) => write!(f, "P"),
            (false, true) => write!(f, "S"),
            (false, false) => write!(f, "-"),
        }
    }
}

/// A self-stabilizing guarded-command algorithm on a bidirectional ring in
/// the state-reading model.
///
/// A process `P_i` can read the local states of `P_{i-1}` and `P_{i+1}` and
/// atomically rewrite its own state (composite atomicity: read, compute and
/// write happen in one step). Guards and commands are pure functions of the
/// triple `(pred, own, succ)`, which is exactly what lets the same value
/// drive both the shared-state engine and the cached message-passing
/// transform (where `pred`/`succ` are the locally cached copies).
///
/// Rule priority is the implementor's concern: [`RingAlgorithm::enabled_rule`]
/// must already return the unique highest-priority enabled rule, so a process
/// is enabled by at most one rule (as in Algorithm 3 of the paper).
pub trait RingAlgorithm {
    /// Per-process local state.
    type State: Clone + PartialEq + fmt::Debug + fmt::Display + Send + Sync;
    /// Identifier of a guarded-command rule.
    type Rule: Copy + Eq + fmt::Debug + Send + Sync;

    /// Number of processes on the ring.
    fn n(&self) -> usize;

    /// The highest-priority rule whose guard holds at `P_i` for the local
    /// view `(own, pred, succ)`, or `None` if `P_i` is disabled.
    fn enabled_rule(
        &self,
        i: usize,
        own: &Self::State,
        pred: &Self::State,
        succ: &Self::State,
    ) -> Option<Self::Rule>;

    /// Execute `rule`'s command at `P_i`, returning the new local state.
    ///
    /// Callers must only pass a rule returned by [`RingAlgorithm::enabled_rule`]
    /// for the same view.
    fn execute(
        &self,
        i: usize,
        rule: Self::Rule,
        own: &Self::State,
        pred: &Self::State,
        succ: &Self::State,
    ) -> Self::State;

    /// The tokens `P_i` holds under its token-condition predicates, evaluated
    /// on the local view `(own, pred, succ)`.
    fn tokens_at(
        &self,
        i: usize,
        own: &Self::State,
        pred: &Self::State,
        succ: &Self::State,
    ) -> TokenSet;

    /// True iff `config` is legitimate for this algorithm.
    fn is_legitimate(&self, config: &[Self::State]) -> bool;

    /// Validate a configuration's shape (length, value ranges).
    fn validate_config(&self, config: &[Self::State]) -> Result<()>;

    /// A small algorithm-defined tag for a rule, used by schedulers and
    /// analysis to classify moves without knowing the concrete rule type
    /// (SSRmin returns the paper's rule number 1–5; the default is 0).
    fn rule_tag(&self, _rule: Self::Rule) -> u8 {
        0
    }

    // ------------------------------------------------------------------
    // Provided ring-level helpers.
    // ------------------------------------------------------------------

    /// The local view of process `i`: `(own, pred, succ)` references.
    fn view<'a>(
        &self,
        config: &'a [Self::State],
        i: usize,
    ) -> (&'a Self::State, &'a Self::State, &'a Self::State) {
        let n = self.n();
        debug_assert_eq!(config.len(), n);
        let pred = if i == 0 { n - 1 } else { i - 1 };
        let succ = if i + 1 == n { 0 } else { i + 1 };
        (&config[i], &config[pred], &config[succ])
    }

    /// The rule enabling process `i` in `config`, if any.
    fn enabled_rule_in(&self, config: &[Self::State], i: usize) -> Option<Self::Rule> {
        let (own, pred, succ) = self.view(config, i);
        self.enabled_rule(i, own, pred, succ)
    }

    /// Indices of all enabled processes, ascending.
    fn enabled_processes(&self, config: &[Self::State]) -> Vec<usize> {
        (0..self.n()).filter(|&i| self.enabled_rule_in(config, i).is_some()).collect()
    }

    /// Move a single enabled process (a central-daemon step). Errors if the
    /// process is out of range or disabled.
    fn step_process(&self, config: &[Self::State], i: usize) -> Result<Config<Self::State>> {
        if i >= self.n() {
            return Err(CoreError::ProcessOutOfRange { process: i, n: self.n() });
        }
        let (own, pred, succ) = self.view(config, i);
        let rule = self
            .enabled_rule(i, own, pred, succ)
            .ok_or(CoreError::ProcessNotEnabled { process: i })?;
        let new_state = self.execute(i, rule, own, pred, succ);
        let mut next = config.to_vec();
        next[i] = new_state;
        Ok(next)
    }

    /// Move a *set* of enabled processes simultaneously (a distributed-daemon
    /// step): every selected process reads the *old* configuration and the
    /// writes land together. Disabled or out-of-range members are rejected.
    fn step_set(&self, config: &[Self::State], set: &[usize]) -> Result<Config<Self::State>> {
        let mut next = config.to_vec();
        for &i in set {
            if i >= self.n() {
                return Err(CoreError::ProcessOutOfRange { process: i, n: self.n() });
            }
            let (own, pred, succ) = self.view(config, i);
            let rule = self
                .enabled_rule(i, own, pred, succ)
                .ok_or(CoreError::ProcessNotEnabled { process: i })?;
            next[i] = self.execute(i, rule, own, pred, succ);
        }
        Ok(next)
    }

    /// Token set of process `i` in `config`.
    fn tokens_in(&self, config: &[Self::State], i: usize) -> TokenSet {
        let (own, pred, succ) = self.view(config, i);
        self.tokens_at(i, own, pred, succ)
    }

    /// Indices of processes holding at least one token (the *privileged*
    /// processes), ascending.
    fn token_holders(&self, config: &[Self::State]) -> Vec<usize> {
        (0..self.n()).filter(|&i| self.tokens_in(config, i).any()).collect()
    }

    /// Total number of tokens present in `config` (counting kinds separately,
    /// so a process holding both contributes 2).
    fn total_tokens(&self, config: &[Self::State]) -> usize {
        (0..self.n()).map(|i| self.tokens_in(config, i).count() as usize).sum()
    }

    /// True iff no process is enabled. A correct self-stabilizing token
    /// circulation never deadlocks (Lemma 4), so this returning `true`
    /// indicates a broken algorithm or configuration; it is exposed for the
    /// test suites of the baselines.
    fn is_deadlocked(&self, config: &[Self::State]) -> bool {
        self.enabled_processes(config).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately trivial algorithm for exercising the provided methods:
    /// states are bits on a ring of fixed size; a process is enabled iff its
    /// bit differs from its predecessor's, and the command copies the
    /// predecessor's bit. Token = enabled.
    struct CopyBit {
        n: usize,
    }

    impl RingAlgorithm for CopyBit {
        type State = u8;
        type Rule = ();

        fn n(&self) -> usize {
            self.n
        }

        fn enabled_rule(&self, _i: usize, own: &u8, pred: &u8, _succ: &u8) -> Option<()> {
            (own != pred).then_some(())
        }

        fn execute(&self, _i: usize, _rule: (), _own: &u8, pred: &u8, _succ: &u8) -> u8 {
            *pred
        }

        fn tokens_at(&self, i: usize, own: &u8, pred: &u8, succ: &u8) -> TokenSet {
            TokenSet::new(self.enabled_rule(i, own, pred, succ).is_some(), false)
        }

        fn is_legitimate(&self, config: &[u8]) -> bool {
            config.windows(2).all(|w| w[0] == w[1])
        }

        fn validate_config(&self, config: &[u8]) -> Result<()> {
            if config.len() != self.n {
                return Err(CoreError::ConfigLenMismatch {
                    expected: self.n,
                    actual: config.len(),
                });
            }
            Ok(())
        }
    }

    #[test]
    fn token_set_counting_and_display() {
        assert_eq!(TokenSet::NONE.count(), 0);
        assert_eq!(TokenSet::BOTH.count(), 2);
        assert_eq!(TokenSet::new(true, false).count(), 1);
        assert!(!TokenSet::NONE.any());
        assert!(TokenSet::new(false, true).any());
        assert!(TokenSet::BOTH.holds(TokenKind::Primary));
        assert!(TokenSet::BOTH.holds(TokenKind::Secondary));
        assert!(!TokenSet::new(true, false).holds(TokenKind::Secondary));
        assert_eq!(TokenSet::BOTH.to_string(), "PS");
        assert_eq!(TokenSet::new(true, false).to_string(), "P");
        assert_eq!(TokenSet::new(false, true).to_string(), "S");
        assert_eq!(TokenSet::NONE.to_string(), "-");
    }

    #[test]
    fn view_wraps_ring_indices() {
        let a = CopyBit { n: 4 };
        let cfg = vec![10u8, 11, 12, 13];
        let (own, pred, succ) = a.view(&cfg, 0);
        assert_eq!((*own, *pred, *succ), (10, 13, 11));
        let (own, pred, succ) = a.view(&cfg, 3);
        assert_eq!((*own, *pred, *succ), (13, 12, 10));
    }

    #[test]
    fn step_process_moves_exactly_one() {
        let a = CopyBit { n: 4 };
        let cfg = vec![1u8, 0, 0, 0];
        // P1 is enabled (own 0 != pred 1); P0 is enabled (own 1 != pred 0).
        let next = a.step_process(&cfg, 1).unwrap();
        assert_eq!(next, vec![1, 1, 0, 0]);
        // P2 is disabled.
        assert_eq!(
            a.step_process(&cfg, 2).unwrap_err(),
            CoreError::ProcessNotEnabled { process: 2 }
        );
        assert_eq!(
            a.step_process(&cfg, 9).unwrap_err(),
            CoreError::ProcessOutOfRange { process: 9, n: 4 }
        );
    }

    #[test]
    fn step_set_reads_old_configuration() {
        let a = CopyBit { n: 4 };
        let cfg = vec![1u8, 0, 0, 1];
        // Enabled: P0 (pred=1 vs 1? pred of 0 is P3=1, own=1 -> disabled).
        // P1: own 0, pred 1 -> enabled. P3: own 1, pred 0 -> enabled.
        let next = a.step_set(&cfg, &[1, 3]).unwrap();
        // Both read the OLD config: P1 copies old P0=1; P3 copies old P2=0.
        assert_eq!(next, vec![1, 1, 0, 0]);
    }

    #[test]
    fn helpers_enumerate_enabled_and_holders() {
        let a = CopyBit { n: 4 };
        let cfg = vec![1u8, 0, 0, 1];
        assert_eq!(a.enabled_processes(&cfg), vec![1, 3]);
        assert_eq!(a.token_holders(&cfg), vec![1, 3]);
        assert_eq!(a.total_tokens(&cfg), 2);
        assert!(!a.is_deadlocked(&cfg));
        let quiet = vec![1u8, 1, 1, 1];
        assert!(a.is_deadlocked(&quiet));
        assert!(a.is_legitimate(&quiet));
    }
}
