//! The CST working set of one node: its own algorithm state plus cached
//! copies of both ring neighbours' states (`Z_i[·]` of Algorithm 4).
//!
//! This is the single replica type shared by every execution engine that
//! runs a [`RingAlgorithm`] in the message-passing model — the
//! discrete-event simulator (`ssr-mpnet`), the threaded loopback runtime
//! (`ssr-runtime`) and the UDP cluster transport (`ssr-net`). All of them
//! evaluate guards *on the cached view*, which is exactly the behaviour
//! whose correctness the paper's Theorem 3 (model gap tolerance) covers.

use crate::algorithm::{RingAlgorithm, TokenSet};

/// One node of the transformed (message-passing) system: its real local
/// state plus cached copies of both ring neighbours' states.
///
/// The ring index is *not* stored: engines pass it explicitly, which keeps
/// the type a plain value (cheap to construct in bulk, trivially comparable
/// in model-gap enumerations).
#[derive(Debug, Clone, PartialEq)]
pub struct Replica<S> {
    /// The algorithm's local variables `q_i`.
    pub own: S,
    /// `Z_i[v_{i-1}]` — cache of the predecessor's state.
    pub cache_pred: S,
    /// `Z_i[v_{i+1}]` — cache of the successor's state.
    pub cache_succ: S,
    /// Statistics: rules executed by this node.
    pub rules_executed: u64,
    /// Statistics: messages received (after any loss process).
    pub messages_received: u64,
}

impl<S> Replica<S> {
    /// A replica whose caches already agree with the given neighbour states
    /// (cache-coherent start).
    pub fn coherent(own: S, pred: S, succ: S) -> Self {
        Replica { own, cache_pred: pred, cache_succ: succ, rules_executed: 0, messages_received: 0 }
    }

    /// Update the cache corresponding to neighbour `from` of node `i` on an
    /// `n`-ring. `from` must be the ring predecessor or successor of `i`.
    pub fn update_cache(&mut self, n: usize, i: usize, from: usize, state: S) {
        let pred = if i == 0 { n - 1 } else { i - 1 };
        let succ = if i + 1 == n { 0 } else { i + 1 };
        if from == pred {
            self.cache_pred = state;
        } else if from == succ {
            self.cache_succ = state;
        } else {
            panic!("message from non-neighbour {from} delivered to {i}");
        }
    }

    /// Evaluate the algorithm's enabled rule *on the cached view* — this is
    /// exactly how the transformed node decides to act (Algorithm 4 line 9).
    pub fn enabled_rule<A>(&self, algo: &A, i: usize) -> Option<A::Rule>
    where
        A: RingAlgorithm<State = S>,
    {
        algo.enabled_rule(i, &self.own, &self.cache_pred, &self.cache_succ)
    }

    /// Execute one enabled rule on the cached view, if any; returns the rule
    /// that fired. The own state is updated in place.
    pub fn execute_one<A>(&mut self, algo: &A, i: usize) -> Option<A::Rule>
    where
        A: RingAlgorithm<State = S>,
    {
        let rule = self.enabled_rule(algo, i)?;
        self.own = algo.execute(i, rule, &self.own, &self.cache_pred, &self.cache_succ);
        self.rules_executed += 1;
        Some(rule)
    }

    /// The node's *local* token evaluation — own state plus caches. This is
    /// the predicate a deployed node uses to decide whether it is privileged
    /// (e.g. whether its camera must stay on), so it is the quantity whose
    /// minimum Theorem 3 bounds below by one.
    pub fn tokens<A>(&self, algo: &A, i: usize) -> TokenSet
    where
        A: RingAlgorithm<State = S>,
    {
        algo.tokens_at(i, &self.own, &self.cache_pred, &self.cache_succ)
    }

    /// True iff the node is privileged (holds at least one token) on its
    /// cached view.
    pub fn is_privileged<A>(&self, algo: &A, i: usize) -> bool
    where
        A: RingAlgorithm<State = S>,
    {
        self.tokens(algo, i).any()
    }

    /// True iff this node's caches agree with the actual neighbour states.
    pub fn is_coherent(&self, actual_pred: &S, actual_succ: &S) -> bool
    where
        S: PartialEq,
    {
        self.cache_pred == *actual_pred && self.cache_succ == *actual_succ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RingParams, SsrMin, SsrRule, SsrState};

    fn algo() -> SsrMin {
        SsrMin::new(RingParams::new(5, 7).unwrap())
    }

    fn st(s: &str) -> SsrState {
        s.parse().unwrap()
    }

    #[test]
    fn cache_update_routes_by_neighbour() {
        let a = algo();
        let mut r: Replica<SsrState> = Replica::coherent(st("3.0.0"), st("3.0.0"), st("3.0.0"));
        r.update_cache(a.n(), 2, 1, st("3.1.0"));
        assert_eq!(r.cache_pred, st("3.1.0"));
        r.update_cache(a.n(), 2, 3, st("4.0.0"));
        assert_eq!(r.cache_succ, st("4.0.0"));
    }

    #[test]
    fn wraparound_neighbours() {
        let a = algo();
        let mut r: Replica<SsrState> = Replica::coherent(st("3.0.0"), st("3.0.0"), st("3.0.0"));
        r.update_cache(a.n(), 0, 4, st("2.0.0")); // P4 is P0's predecessor
        assert_eq!(r.cache_pred, st("2.0.0"));
        let mut r4: Replica<SsrState> = Replica::coherent(st("3.0.0"), st("3.0.0"), st("3.0.0"));
        r4.update_cache(a.n(), 4, 0, st("2.0.0")); // P0 is P4's successor
        assert_eq!(r4.cache_succ, st("2.0.0"));
    }

    #[test]
    #[should_panic(expected = "non-neighbour")]
    fn non_neighbour_message_panics() {
        let a = algo();
        let mut r: Replica<SsrState> = Replica::coherent(st("3.0.0"), st("3.0.0"), st("3.0.0"));
        r.update_cache(a.n(), 2, 0, st("3.0.0"));
    }

    #[test]
    fn execute_and_privilege_follow_the_handshake() {
        let a = algo();
        // P1's view when P0 offers the secondary token.
        let mut r: Replica<SsrState> = Replica::coherent(st("3.0.0"), st("3.1.0"), st("3.0.0"));
        assert!(!r.is_privileged(&a, 1));
        assert_eq!(r.execute_one(&a, 1), Some(SsrRule::R3));
        assert!(r.is_privileged(&a, 1), "after Rule 3 the node holds the secondary token");
        assert_eq!(r.own, st("3.0.1"));
        assert_eq!(r.rules_executed, 1);
        assert_eq!(r.execute_one(&a, 1), None);
    }

    #[test]
    fn coherence_check_compares_both_caches() {
        let r: Replica<SsrState> = Replica::coherent(st("3.0.0"), st("3.1.0"), st("3.0.0"));
        assert!(r.is_coherent(&st("3.1.0"), &st("3.0.0")));
        assert!(!r.is_coherent(&st("4.0.0"), &st("3.0.0")));
        assert!(!r.is_coherent(&st("3.1.0"), &st("4.0.0")));
    }
}
