//! Two independent Dijkstra token rings run side by side — the strawman of
//! Figure 12. In the state-reading model this trivially keeps two tokens in
//! the ring, but under a message-passing transformation both tokens can be
//! in flight simultaneously, leaving an instant with *no* token anywhere.
//! SSRmin exists precisely because this naive construction fails.

use crate::algorithm::{RingAlgorithm, TokenSet};
use crate::error::Result;
use crate::multitoken::{MultiRule, MultiSsToken, MultiState};
use crate::params::RingParams;

/// Two independent instances of Dijkstra's K-state ring on one physical
/// ring; a thin wrapper over [`MultiSsToken`] with `m = 2` and convenience
/// constructors for the Figure 12 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualSsToken {
    inner: MultiSsToken,
}

impl DualSsToken {
    /// Create a dual ring. `n >= 3`, `K > n`.
    pub fn new(params: RingParams) -> Self {
        let inner = MultiSsToken::new(params, 2).expect("m = 2 is always valid for n >= 3");
        DualSsToken { inner }
    }

    /// Ring parameters.
    pub fn params(&self) -> RingParams {
        self.inner.params()
    }

    /// The underlying multi-token algorithm.
    pub fn inner(&self) -> &MultiSsToken {
        &self.inner
    }

    /// A legitimate configuration with instance-0's token at `P_i` and
    /// instance-1's token at `P_j` (so the two privileged processes start
    /// apart, as in Figure 12).
    ///
    /// Built from Dijkstra step-configurations: instance tokens at position
    /// `p > 0` use the shape `(x+1, …, x+1, x, …, x)` with `p` leading
    /// upper values; `p = 0` uses the uniform shape.
    pub fn config_with_tokens_at(&self, i: usize, j: usize, x: u32) -> Vec<MultiState> {
        let p = self.params();
        assert!(i < p.n() && j < p.n());
        assert!(x < p.k());
        let upper = p.inc(x);
        let instance = |pos: usize, idx: usize| -> u32 {
            if pos == 0 {
                x
            } else if idx < pos {
                upper
            } else {
                x
            }
        };
        (0..p.n()).map(|idx| MultiState(vec![instance(i, idx), instance(j, idx)])).collect()
    }

    /// Token count of instance `j` (0 or 1).
    pub fn instance_token_count(&self, config: &[MultiState], j: usize) -> usize {
        self.inner.instance_token_count(config, j)
    }

    /// Number of processes holding at least one of the two tokens.
    pub fn privileged_count(&self, config: &[MultiState]) -> usize {
        self.inner.privileged_count(config)
    }
}

impl RingAlgorithm for DualSsToken {
    type State = MultiState;
    type Rule = MultiRule;

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn enabled_rule(
        &self,
        i: usize,
        own: &MultiState,
        pred: &MultiState,
        succ: &MultiState,
    ) -> Option<MultiRule> {
        self.inner.enabled_rule(i, own, pred, succ)
    }

    fn execute(
        &self,
        i: usize,
        rule: MultiRule,
        own: &MultiState,
        pred: &MultiState,
        succ: &MultiState,
    ) -> MultiState {
        self.inner.execute(i, rule, own, pred, succ)
    }

    fn tokens_at(
        &self,
        i: usize,
        own: &MultiState,
        pred: &MultiState,
        succ: &MultiState,
    ) -> TokenSet {
        self.inner.tokens_at(i, own, pred, succ)
    }

    fn is_legitimate(&self, config: &[MultiState]) -> bool {
        self.inner.is_legitimate(config)
    }

    fn validate_config(&self, config: &[MultiState]) -> Result<()> {
        self.inner.validate_config(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn algo(n: usize, k: u32) -> DualSsToken {
        DualSsToken::new(RingParams::new(n, k).unwrap())
    }

    #[test]
    fn config_with_tokens_at_places_both_tokens() {
        let a = algo(5, 7);
        let cfg = a.config_with_tokens_at(1, 3, 2);
        assert!(a.is_legitimate(&cfg));
        assert_eq!(a.instance_token_count(&cfg, 0), 1);
        assert_eq!(a.instance_token_count(&cfg, 1), 1);
        assert_eq!(a.token_holders(&cfg), vec![1, 3]);
        assert_eq!(a.tokens_in(&cfg, 1), TokenSet::new(true, false));
        assert_eq!(a.tokens_in(&cfg, 3), TokenSet::new(false, true));
    }

    #[test]
    fn coincident_tokens_are_allowed() {
        let a = algo(5, 7);
        let cfg = a.config_with_tokens_at(2, 2, 0);
        assert_eq!(a.token_holders(&cfg), vec![2]);
        assert_eq!(a.tokens_in(&cfg, 2), TokenSet::BOTH);
        assert_eq!(a.privileged_count(&cfg), 1);
    }

    #[test]
    fn in_state_reading_model_two_tokens_always_present() {
        // The strawman IS correct in the state-reading model: drive it for
        // many steps under a greedy daemon; both instance tokens persist.
        let a = algo(5, 7);
        let mut cfg = a.config_with_tokens_at(0, 2, 0);
        for _ in 0..200 {
            assert_eq!(a.instance_token_count(&cfg, 0), 1);
            assert_eq!(a.instance_token_count(&cfg, 1), 1);
            assert!(a.privileged_count(&cfg) >= 1);
            let e = a.enabled_processes(&cfg);
            // Fire ALL enabled processes at once (synchronous daemon) —
            // harmless here, unlike in the message-passing model.
            cfg = a.step_set(&cfg, &e).unwrap();
        }
    }

    #[test]
    fn bottom_wraps_both_instances() {
        let a = algo(3, 4);
        let cfg = vec![MultiState(vec![3, 3]), MultiState(vec![3, 3]), MultiState(vec![3, 3])];
        let next = a.step_process(&cfg, 0).unwrap();
        assert_eq!(next[0], MultiState(vec![0, 0]));
    }
}
