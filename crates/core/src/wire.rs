//! Wire encoding of algorithm states.
//!
//! The real-socket transport (`ssr-net`) ships CST state broadcasts as
//! datagrams; this module defines the *payload* contract: how one algorithm
//! state serialises to bytes and back. Framing (version, sender, generation
//! counter, length, checksum) lives in `ssr-net`; the payload stays here so
//! every [`RingAlgorithm`](crate::RingAlgorithm) state type can declare its
//! encoding next to its definition without the core crate depending on any
//! networking code.
//!
//! Encodings are fixed-width little-endian and carry a one-byte `KIND`
//! discriminator in the frame header, so a receiver can reject a datagram
//! from a ring running a different algorithm before touching the payload.

use crate::dijkstra4::D4State;
use crate::multitoken::MultiState;
use crate::state::SsrState;

/// A state type that can travel in a wire frame.
///
/// `decode_payload` must be total: any byte slice either decodes to a valid
/// state or returns `None` — it must never panic, since the bytes may come
/// off a hostile or corrupted network.
pub trait WireState: Sized {
    /// Payload discriminator carried in the frame header. Distinct per
    /// state type so mixed-algorithm rings fail fast.
    const KIND: u8;

    /// Exact encoded payload length in bytes, if fixed (used by decoders
    /// to reject length mismatches early); `None` for variable-size states.
    const PAYLOAD_LEN: Option<usize>;

    /// Append the encoded payload to `buf`.
    fn encode_payload(&self, buf: &mut Vec<u8>);

    /// Decode a payload produced by [`encode_payload`](Self::encode_payload).
    /// Returns `None` on any malformed input.
    fn decode_payload(bytes: &[u8]) -> Option<Self>;
}

/// SSRmin state `x.rts.tra`: `x` as `u32` LE plus one flag byte
/// (bit 0 = `rts`, bit 1 = `tra`; higher bits must be zero).
impl WireState for SsrState {
    const KIND: u8 = 1;
    const PAYLOAD_LEN: Option<usize> = Some(5);

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.x.to_le_bytes());
        buf.push(u8::from(self.rts) | (u8::from(self.tra) << 1));
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let [x0, x1, x2, x3, flags] = *bytes else {
            return None;
        };
        if flags > 0b11 {
            return None;
        }
        Some(SsrState {
            x: u32::from_le_bytes([x0, x1, x2, x3]),
            rts: flags & 1 != 0,
            tra: flags & 2 != 0,
        })
    }
}

/// Dijkstra K-state counter: bare `u32` LE.
impl WireState for u32 {
    const KIND: u8 = 2;
    const PAYLOAD_LEN: Option<usize> = Some(4);

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let [a, b, c, d] = *bytes else {
            return None;
        };
        Some(u32::from_le_bytes([a, b, c, d]))
    }
}

/// Four-state chain algorithm: one flag byte (bit 0 = `x`, bit 1 = `up`;
/// higher bits must be zero).
impl WireState for D4State {
    const KIND: u8 = 3;
    const PAYLOAD_LEN: Option<usize> = Some(1);

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(self.x) | (u8::from(self.up) << 1));
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let [flags] = *bytes else {
            return None;
        };
        if flags > 0b11 {
            return None;
        }
        Some(D4State { x: flags & 1 != 0, up: flags & 2 != 0 })
    }
}

/// Multi-token state: `u16` LE instance count followed by that many `u32`
/// LE counters (variable length; count capped at 4096 to bound decode-side
/// allocation from untrusted input).
impl WireState for MultiState {
    const KIND: u8 = 4;
    const PAYLOAD_LEN: Option<usize> = None;

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        let m = u16::try_from(self.0.len()).expect("at most 65535 token instances");
        buf.extend_from_slice(&m.to_le_bytes());
        for v in &self.0 {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let (head, rest) = bytes.split_at_checked(2)?;
        let m = u16::from_le_bytes([head[0], head[1]]) as usize;
        if m > 4096 || rest.len() != 4 * m {
            return None;
        }
        let counters =
            rest.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        Some(MultiState(counters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<S: WireState + PartialEq + std::fmt::Debug>(s: S) {
        let mut buf = Vec::new();
        s.encode_payload(&mut buf);
        if let Some(len) = S::PAYLOAD_LEN {
            assert_eq!(buf.len(), len);
        }
        assert_eq!(S::decode_payload(&buf).as_ref(), Some(&s));
    }

    #[test]
    fn ssr_state_round_trips() {
        for x in [0u32, 1, 6, u32::MAX] {
            for rts in [false, true] {
                for tra in [false, true] {
                    round_trip(SsrState { x, rts, tra });
                }
            }
        }
    }

    #[test]
    fn dijkstra_and_d4_round_trip() {
        for x in [0u32, 41, u32::MAX] {
            round_trip(x);
        }
        for flags in 0..4u8 {
            round_trip(D4State { x: flags & 1 != 0, up: flags & 2 != 0 });
        }
    }

    #[test]
    fn multi_state_round_trips() {
        round_trip(MultiState(vec![]));
        round_trip(MultiState(vec![7, 0, u32::MAX]));
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        assert_eq!(SsrState::decode_payload(&[]), None);
        assert_eq!(SsrState::decode_payload(&[1, 2, 3, 4]), None);
        assert_eq!(SsrState::decode_payload(&[1, 2, 3, 4, 0b100]), None, "reserved flag bits");
        assert_eq!(SsrState::decode_payload(&[1, 2, 3, 4, 5, 6]), None);
        assert_eq!(u32::decode_payload(&[1, 2, 3]), None);
        assert_eq!(D4State::decode_payload(&[0b100]), None);
        assert_eq!(MultiState::decode_payload(&[1]), None);
        assert_eq!(MultiState::decode_payload(&[1, 0]), None, "missing counters");
        assert_eq!(MultiState::decode_payload(&[1, 0, 9, 9, 9, 9, 9]), None, "trailing bytes");
        // Huge claimed count must not allocate.
        assert_eq!(MultiState::decode_payload(&[0xff, 0xff, 0, 0]), None);
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [SsrState::KIND, <u32 as WireState>::KIND, D4State::KIND, MultiState::KIND];
        let unique: std::collections::BTreeSet<u8> = kinds.into_iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
