//! Wire encoding of algorithm states.
//!
//! The real-socket transport (`ssr-net`) ships CST state broadcasts as
//! datagrams; this module defines the *payload* contract: how one algorithm
//! state serialises to bytes and back. Framing (version, sender, generation
//! counter, length, checksum) lives in `ssr-net`; the payload stays here so
//! every [`RingAlgorithm`](crate::RingAlgorithm) state type can declare its
//! encoding next to its definition without the core crate depending on any
//! networking code.
//!
//! Encodings are fixed-width little-endian and carry a one-byte `KIND`
//! discriminator in the frame header, so a receiver can reject a datagram
//! from a ring running a different algorithm before touching the payload.

use std::fmt;

use crate::dijkstra4::D4State;
use crate::multitoken::MultiState;
use crate::replica::Replica;
use crate::state::SsrState;

/// A state type that can travel in a wire frame.
///
/// `decode_payload` must be total: any byte slice either decodes to a valid
/// state or returns `None` — it must never panic, since the bytes may come
/// off a hostile or corrupted network.
pub trait WireState: Sized {
    /// Payload discriminator carried in the frame header. Distinct per
    /// state type so mixed-algorithm rings fail fast.
    const KIND: u8;

    /// Exact encoded payload length in bytes, if fixed (used by decoders
    /// to reject length mismatches early); `None` for variable-size states.
    const PAYLOAD_LEN: Option<usize>;

    /// Append the encoded payload to `buf`.
    fn encode_payload(&self, buf: &mut Vec<u8>);

    /// Decode a payload produced by [`encode_payload`](Self::encode_payload).
    /// Returns `None` on any malformed input.
    fn decode_payload(bytes: &[u8]) -> Option<Self>;
}

/// SSRmin state `x.rts.tra`: `x` as `u32` LE plus one flag byte
/// (bit 0 = `rts`, bit 1 = `tra`; higher bits must be zero).
impl WireState for SsrState {
    const KIND: u8 = 1;
    const PAYLOAD_LEN: Option<usize> = Some(5);

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.x.to_le_bytes());
        buf.push(u8::from(self.rts) | (u8::from(self.tra) << 1));
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let [x0, x1, x2, x3, flags] = *bytes else {
            return None;
        };
        if flags > 0b11 {
            return None;
        }
        Some(SsrState {
            x: u32::from_le_bytes([x0, x1, x2, x3]),
            rts: flags & 1 != 0,
            tra: flags & 2 != 0,
        })
    }
}

/// Dijkstra K-state counter: bare `u32` LE.
impl WireState for u32 {
    const KIND: u8 = 2;
    const PAYLOAD_LEN: Option<usize> = Some(4);

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let [a, b, c, d] = *bytes else {
            return None;
        };
        Some(u32::from_le_bytes([a, b, c, d]))
    }
}

/// Four-state chain algorithm: one flag byte (bit 0 = `x`, bit 1 = `up`;
/// higher bits must be zero).
impl WireState for D4State {
    const KIND: u8 = 3;
    const PAYLOAD_LEN: Option<usize> = Some(1);

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(self.x) | (u8::from(self.up) << 1));
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let [flags] = *bytes else {
            return None;
        };
        if flags > 0b11 {
            return None;
        }
        Some(D4State { x: flags & 1 != 0, up: flags & 2 != 0 })
    }
}

/// Multi-token state: `u16` LE instance count followed by that many `u32`
/// LE counters (variable length; count capped at 4096 to bound decode-side
/// allocation from untrusted input).
impl WireState for MultiState {
    const KIND: u8 = 4;
    const PAYLOAD_LEN: Option<usize> = None;

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        let m = u16::try_from(self.0.len()).expect("at most 65535 token instances");
        buf.extend_from_slice(&m.to_le_bytes());
        for v in &self.0 {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let (head, rest) = bytes.split_at_checked(2)?;
        let m = u16::from_le_bytes([head[0], head[1]]) as usize;
        if m > 4096 || rest.len() != 4 * m {
            return None;
        }
        let counters =
            rest.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        Some(MultiState(counters))
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum used by both the datagram frame
/// codec in `ssr-net` and the replica snapshot format below.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Snapshot magic bytes (distinct from the datagram frame magic `b"SR"`).
pub const SNAPSHOT_MAGIC: [u8; 2] = *b"SP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u8 = 1;
/// Fixed bytes before the three length-prefixed payloads.
const SNAPSHOT_HEADER_LEN: usize = 20;
/// Trailing checksum bytes.
const SNAPSHOT_CRC_LEN: usize = 4;

/// Why a byte sequence failed to decode as a replica snapshot.
///
/// A node restarting in snapshot mode treats *any* of these as "the
/// persisted state is unusable" and degrades to an amnesia (arbitrary-state)
/// restart — self-stabilization makes that safe, so snapshot corruption must
/// never abort a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the minimal snapshot.
    TooShort {
        /// Bytes available.
        len: usize,
    },
    /// Magic bytes did not match [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// The two bytes found.
        found: [u8; 2],
    },
    /// Unsupported snapshot version.
    BadVersion {
        /// Version byte found.
        found: u8,
    },
    /// State kind does not match the expected state type.
    WrongKind {
        /// Kind the decoder expected (`S::KIND`).
        expected: u8,
        /// Kind found in the header.
        found: u8,
    },
    /// A length prefix points past the end of the snapshot, or trailing
    /// bytes remain after the last payload.
    BadLength,
    /// Checksum mismatch (bit corruption of the persisted bytes).
    BadChecksum {
        /// CRC-32 over the stored bytes.
        computed: u32,
        /// CRC-32 stored in the snapshot.
        stored: u32,
    },
    /// A payload did not decode as a valid state.
    BadPayload,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SnapshotError::TooShort { len } => write!(f, "snapshot too short: {len} bytes"),
            SnapshotError::BadMagic { found } => {
                write!(f, "bad snapshot magic bytes {found:02x?}")
            }
            SnapshotError::BadVersion { found } => {
                write!(f, "unsupported snapshot version {found} (expected {SNAPSHOT_VERSION})")
            }
            SnapshotError::WrongKind { expected, found } => {
                write!(f, "snapshot state kind {found} does not match expected kind {expected}")
            }
            SnapshotError::BadLength => write!(f, "snapshot length fields are inconsistent"),
            SnapshotError::BadChecksum { computed, stored } => {
                write!(
                    f,
                    "snapshot checksum mismatch: computed {computed:#010x}, stored {stored:#010x}"
                )
            }
            SnapshotError::BadPayload => write!(f, "snapshot payload did not decode"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encode a replica (own state plus both neighbour caches and counters) as
/// a self-contained, checksummed snapshot.
///
/// Layout (integers little-endian):
///
/// ```text
/// offset  size  field
/// 0       2     magic  b"SP"
/// 2       1     version (currently 1)
/// 3       1     state kind (WireState::KIND)
/// 4       8     rules_executed
/// 12      8     messages_received
/// 20      ...   3 × (u16 length, payload) — own, cache_pred, cache_succ
/// end     4     CRC-32 (IEEE) over everything before it
/// ```
pub fn encode_snapshot<S: WireState>(replica: &Replica<S>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(SNAPSHOT_HEADER_LEN + 3 * (2 + S::PAYLOAD_LEN.unwrap_or(16)));
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.push(SNAPSHOT_VERSION);
    buf.push(S::KIND);
    buf.extend_from_slice(&replica.rules_executed.to_le_bytes());
    buf.extend_from_slice(&replica.messages_received.to_le_bytes());
    for state in [&replica.own, &replica.cache_pred, &replica.cache_succ] {
        let at = buf.len();
        buf.extend_from_slice(&[0, 0]); // length, patched below
        state.encode_payload(&mut buf);
        let len = u16::try_from(buf.len() - at - 2).expect("payload length fits u16");
        buf[at..at + 2].copy_from_slice(&len.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decode a snapshot produced by [`encode_snapshot`] (or corrupted at rest).
/// Total: any byte sequence yields a replica or a [`SnapshotError`].
pub fn decode_snapshot<S: WireState>(bytes: &[u8]) -> Result<Replica<S>, SnapshotError> {
    if bytes.len() < SNAPSHOT_HEADER_LEN + SNAPSHOT_CRC_LEN {
        return Err(SnapshotError::TooShort { len: bytes.len() });
    }
    if bytes[0..2] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic { found: [bytes[0], bytes[1]] });
    }
    if bytes[2] != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion { found: bytes[2] });
    }
    if bytes[3] != S::KIND {
        return Err(SnapshotError::WrongKind { expected: S::KIND, found: bytes[3] });
    }
    let body = &bytes[..bytes.len() - SNAPSHOT_CRC_LEN];
    let stored = u32::from_le_bytes(
        bytes[bytes.len() - SNAPSHOT_CRC_LEN..].try_into().expect("exactly 4 bytes remain"),
    );
    let computed = crc32(body);
    if computed != stored {
        return Err(SnapshotError::BadChecksum { computed, stored });
    }
    let rules_executed = u64::from_le_bytes(body[4..12].try_into().expect("8 bytes"));
    let messages_received = u64::from_le_bytes(body[12..20].try_into().expect("8 bytes"));
    let mut at = SNAPSHOT_HEADER_LEN;
    let mut next_state = || -> Result<S, SnapshotError> {
        let head = body.get(at..at + 2).ok_or(SnapshotError::BadLength)?;
        let len = u16::from_le_bytes([head[0], head[1]]) as usize;
        let payload = body.get(at + 2..at + 2 + len).ok_or(SnapshotError::BadLength)?;
        at += 2 + len;
        S::decode_payload(payload).ok_or(SnapshotError::BadPayload)
    };
    let own = next_state()?;
    let cache_pred = next_state()?;
    let cache_succ = next_state()?;
    if at != body.len() {
        return Err(SnapshotError::BadLength);
    }
    Ok(Replica { own, cache_pred, cache_succ, rules_executed, messages_received })
}

impl<S: WireState> Replica<S> {
    /// Persist this replica as a checksummed snapshot ([`encode_snapshot`]).
    pub fn snapshot(&self) -> Vec<u8> {
        encode_snapshot(self)
    }

    /// Restore a replica from snapshot bytes ([`decode_snapshot`]).
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        decode_snapshot(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<S: WireState + PartialEq + std::fmt::Debug>(s: S) {
        let mut buf = Vec::new();
        s.encode_payload(&mut buf);
        if let Some(len) = S::PAYLOAD_LEN {
            assert_eq!(buf.len(), len);
        }
        assert_eq!(S::decode_payload(&buf).as_ref(), Some(&s));
    }

    #[test]
    fn ssr_state_round_trips() {
        for x in [0u32, 1, 6, u32::MAX] {
            for rts in [false, true] {
                for tra in [false, true] {
                    round_trip(SsrState { x, rts, tra });
                }
            }
        }
    }

    #[test]
    fn dijkstra_and_d4_round_trip() {
        for x in [0u32, 41, u32::MAX] {
            round_trip(x);
        }
        for flags in 0..4u8 {
            round_trip(D4State { x: flags & 1 != 0, up: flags & 2 != 0 });
        }
    }

    #[test]
    fn multi_state_round_trips() {
        round_trip(MultiState(vec![]));
        round_trip(MultiState(vec![7, 0, u32::MAX]));
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        assert_eq!(SsrState::decode_payload(&[]), None);
        assert_eq!(SsrState::decode_payload(&[1, 2, 3, 4]), None);
        assert_eq!(SsrState::decode_payload(&[1, 2, 3, 4, 0b100]), None, "reserved flag bits");
        assert_eq!(SsrState::decode_payload(&[1, 2, 3, 4, 5, 6]), None);
        assert_eq!(u32::decode_payload(&[1, 2, 3]), None);
        assert_eq!(D4State::decode_payload(&[0b100]), None);
        assert_eq!(MultiState::decode_payload(&[1]), None);
        assert_eq!(MultiState::decode_payload(&[1, 0]), None, "missing counters");
        assert_eq!(MultiState::decode_payload(&[1, 0, 9, 9, 9, 9, 9]), None, "trailing bytes");
        // Huge claimed count must not allocate.
        assert_eq!(MultiState::decode_payload(&[0xff, 0xff, 0, 0]), None);
    }

    fn sample_replica() -> Replica<SsrState> {
        let mut r = Replica::coherent(
            SsrState { x: 6, rts: true, tra: false },
            SsrState { x: 5, rts: false, tra: false },
            SsrState { x: 6, rts: false, tra: true },
        );
        r.rules_executed = 12345;
        r.messages_received = 99;
        r
    }

    #[test]
    fn snapshot_round_trips() {
        let r = sample_replica();
        let bytes = r.snapshot();
        let back = Replica::<SsrState>::from_snapshot(&bytes).unwrap();
        assert_eq!(back, r);
        // Variable-length states round trip too.
        let m = Replica::coherent(
            MultiState(vec![1, 2, 3]),
            MultiState(vec![]),
            MultiState(vec![u32::MAX]),
        );
        let back = decode_snapshot::<MultiState>(&encode_snapshot(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn snapshot_rejects_every_single_byte_corruption() {
        let bytes = sample_replica().snapshot();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                assert!(
                    decode_snapshot::<SsrState>(&bad).is_err(),
                    "bit {bit} of byte {pos} flipped undetected"
                );
            }
        }
    }

    #[test]
    fn snapshot_rejects_truncation_and_garbage() {
        let bytes = sample_replica().snapshot();
        for cut in 0..bytes.len() {
            assert!(decode_snapshot::<SsrState>(&bytes[..cut]).is_err());
        }
        assert_eq!(
            decode_snapshot::<SsrState>(&[]),
            Err(SnapshotError::TooShort { len: 0 }),
            "empty store means no snapshot was ever persisted"
        );
        // A frame of the wrong state kind is rejected before payload work.
        let d4 = Replica::coherent(
            D4State { x: true, up: false },
            D4State { x: false, up: false },
            D4State { x: false, up: true },
        );
        let err = decode_snapshot::<SsrState>(&encode_snapshot(&d4)).unwrap_err();
        assert_eq!(err, SnapshotError::WrongKind { expected: 1, found: 3 });
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [SsrState::KIND, <u32 as WireState>::KIND, D4State::KIND, MultiState::KIND];
        let unique: std::collections::BTreeSet<u8> = kinds.into_iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
