//! Dijkstra's *four-state* self-stabilizing mutual exclusion — the second of
//! the three algorithms from Dijkstra's 1974 paper that Section 2.3 of the
//! SSRmin paper surveys. It runs on a bidirectional **chain** (array) of
//! machines — here embedded on the ring with the `P_{n-1} ↔ P_0` edge
//! unused — with only four states per machine: `x ∈ {0,1}`, `up ∈ {0,1}`.
//!
//! The *bottom* machine's `up` is hardwired `true` and the *top* machine's
//! `up` is hardwired `false` (they are constants in Dijkstra's formulation;
//! we mask any corrupted stored value, which keeps the state space uniform
//! without admitting unrecoverable configurations).
//!
//! Included because (a) it completes the Dijkstra token-ring substrate the
//! paper builds on, and (b) it is a second target for the `ssr-verify`
//! model checker. Dijkstra stated the algorithm for the central daemon;
//! the checker *mechanically establishes* that (for every chain size we can
//! enumerate, n ≤ 10) it also converges under the full unfair distributed
//! daemon — closure, no-deadlock and convergence all hold in both
//! transition relations. See `exp_model_check`.

use std::fmt;

use crate::algorithm::{RingAlgorithm, TokenSet};
use crate::error::{CoreError, Result};

/// Local state of a four-state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct D4State {
    /// The binary value propagated down and up the chain.
    pub x: bool,
    /// Direction flag (masked to `true` at the bottom, `false` at the top).
    pub up: bool,
}

impl D4State {
    /// Build from bits.
    pub fn new(x: u8, up: u8) -> Self {
        D4State { x: x != 0, up: up != 0 }
    }
}

impl fmt::Display for D4State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.x as u8, if self.up { "↑" } else { "↓" })
    }
}

/// Rules of the four-state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum D4Rule {
    /// Bottom: if `x_0 = x_1 ∧ ¬up_1` then `x_0 ← ¬x_0`.
    Bottom,
    /// Top: if `x_{n-1} ≠ x_{n-2}` then `x_{n-1} ← x_{n-2}`.
    Top,
    /// Inner, downward-moving privilege: if `x_i ≠ x_{i-1}` then
    /// `x_i ← x_{i-1}; up_i ← true`.
    CopyDown,
    /// Inner, upward-moving privilege: if `x_i = x_{i+1} ∧ up_i ∧ ¬up_{i+1}`
    /// then `up_i ← false`.
    Reflect,
}

/// Dijkstra's four-state mutual exclusion on a chain of `n ≥ 3` machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dijkstra4 {
    n: usize,
}

impl Dijkstra4 {
    /// A chain of `n` machines (`n ≥ 3`).
    pub fn new(n: usize) -> Result<Self> {
        if n < 3 {
            return Err(CoreError::RingTooSmall { n, min: 3 });
        }
        Ok(Dijkstra4 { n })
    }

    /// The effective `up` value of machine `i`: hardwired at the ends.
    #[inline]
    pub fn eff_up(&self, i: usize, s: &D4State) -> bool {
        if i == 0 {
            true
        } else if i == self.n - 1 {
            false
        } else {
            s.up
        }
    }

    /// A canonical legitimate configuration: all `x` equal, every inner
    /// `up` false — the single privilege is at the bottom.
    pub fn quiescent_config(&self, x: bool) -> Vec<D4State> {
        (0..self.n).map(|i| D4State { x, up: i == 0 }).collect()
    }

    /// Number of privileged (enabled) machines.
    pub fn privilege_count(&self, config: &[D4State]) -> usize {
        self.token_holders(config).len()
    }
}

impl RingAlgorithm for Dijkstra4 {
    type State = D4State;
    type Rule = D4Rule;

    fn n(&self) -> usize {
        self.n
    }

    fn enabled_rule(
        &self,
        i: usize,
        own: &D4State,
        pred: &D4State,
        succ: &D4State,
    ) -> Option<D4Rule> {
        let n = self.n;
        if i == 0 {
            // Bottom reads only its successor.
            (own.x == succ.x && !self.eff_up(1, succ)).then_some(D4Rule::Bottom)
        } else if i == n - 1 {
            // Top reads only its predecessor.
            (own.x != pred.x).then_some(D4Rule::Top)
        } else {
            if own.x != pred.x {
                return Some(D4Rule::CopyDown);
            }
            let own_up = self.eff_up(i, own);
            let succ_up = self.eff_up(i + 1, succ);
            (own.x == succ.x && own_up && !succ_up).then_some(D4Rule::Reflect)
        }
    }

    fn execute(
        &self,
        _i: usize,
        rule: D4Rule,
        own: &D4State,
        pred: &D4State,
        _succ: &D4State,
    ) -> D4State {
        match rule {
            D4Rule::Bottom => D4State { x: !own.x, up: true },
            D4Rule::Top => D4State { x: pred.x, up: false },
            D4Rule::CopyDown => D4State { x: pred.x, up: true },
            D4Rule::Reflect => D4State { x: own.x, up: false },
        }
    }

    fn tokens_at(&self, i: usize, own: &D4State, pred: &D4State, succ: &D4State) -> TokenSet {
        TokenSet::new(self.enabled_rule(i, own, pred, succ).is_some(), false)
    }

    fn is_legitimate(&self, config: &[D4State]) -> bool {
        // The classic service predicate: exactly one machine privileged.
        config.len() == self.n && self.privilege_count(config) == 1
    }

    fn validate_config(&self, config: &[D4State]) -> Result<()> {
        if config.len() != self.n {
            return Err(CoreError::ConfigLenMismatch { expected: self.n, actual: config.len() });
        }
        Ok(())
    }

    fn rule_tag(&self, _rule: D4Rule) -> u8 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_tiny_chains() {
        assert!(Dijkstra4::new(2).is_err());
        assert!(Dijkstra4::new(3).is_ok());
    }

    #[test]
    fn quiescent_config_has_one_privilege_at_bottom() {
        let a = Dijkstra4::new(5).unwrap();
        let cfg = a.quiescent_config(false);
        assert!(a.is_legitimate(&cfg));
        assert_eq!(a.token_holders(&cfg), vec![0]);
    }

    #[test]
    fn privilege_walks_down_and_reflects_up() {
        let a = Dijkstra4::new(4).unwrap();
        let mut cfg = a.quiescent_config(false);
        // Follow the single privilege for several full bounces.
        let mut visited = Vec::new();
        for _ in 0..24 {
            let holders = a.token_holders(&cfg);
            assert_eq!(holders.len(), 1, "exactly one privilege in {cfg:?}");
            visited.push(holders[0]);
            cfg = a.step_process(&cfg, holders[0]).unwrap();
        }
        // Every machine gets the privilege (no starvation).
        for i in 0..4 {
            assert!(visited.contains(&i), "machine {i} starved: {visited:?}");
        }
    }

    #[test]
    fn closure_of_exactly_one_privilege_under_central_daemon() {
        let a = Dijkstra4::new(5).unwrap();
        let mut cfg = a.quiescent_config(true);
        for _ in 0..100 {
            assert!(a.is_legitimate(&cfg));
            let holders = a.token_holders(&cfg);
            cfg = a.step_process(&cfg, holders[0]).unwrap();
        }
    }

    #[test]
    fn converges_from_all_configs_under_central_daemon() {
        // Exhaustive for n = 5: 4^5 = 1024 configurations.
        let a = Dijkstra4::new(5).unwrap();
        for raw in 0..4u32.pow(5) {
            let mut v = raw;
            let mut cfg: Vec<D4State> = (0..5)
                .map(|_| {
                    let d = v % 4;
                    v /= 4;
                    D4State::new((d & 1) as u8, (d >> 1) as u8)
                })
                .collect();
            for _ in 0..200 {
                if a.is_legitimate(&cfg) {
                    break;
                }
                let e = a.enabled_processes(&cfg);
                assert!(!e.is_empty(), "deadlock in {cfg:?}");
                // Central daemon: lowest enabled.
                cfg = a.step_process(&cfg, e[0]).unwrap();
            }
            assert!(a.is_legitimate(&cfg), "no convergence from raw={raw}");
        }
    }

    #[test]
    fn corrupt_end_up_bits_are_masked() {
        let a = Dijkstra4::new(4).unwrap();
        // Top with up = true (corrupt) behaves as up = false.
        let corrupt_top = D4State::new(0, 1);
        assert!(!a.eff_up(3, &corrupt_top));
        let corrupt_bottom = D4State::new(0, 0);
        assert!(a.eff_up(0, &corrupt_bottom));
    }

    #[test]
    fn display_shows_direction() {
        assert_eq!(D4State::new(1, 1).to_string(), "1↑");
        assert_eq!(D4State::new(0, 0).to_string(), "0↓");
    }
}
