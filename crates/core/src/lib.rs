//! # ssr-core — self-stabilizing token-circulation algorithms on rings
//!
//! This crate implements the algorithms of *"A self-stabilizing token
//! circulation with graceful handover on bidirectional ring networks"*
//! (Kakugawa, Kamei, Katayama — IJNC 12(1), 2022):
//!
//! * [`SsrMin`] — the paper's contribution (Algorithm 3): a self-stabilizing
//!   **mutual inclusion** algorithm that circulates a *primary* and a
//!   *secondary* token around a bidirectional ring like an inchworm, so that
//!   at least one and at most two processes are privileged at any time, even
//!   when executed in a message-passing system via the Cached Sensornet
//!   Transform (*model gap tolerance*, Theorem 3).
//! * [`SsToken`] — Dijkstra's K-state token ring (Algorithm 1), the base
//!   algorithm and the mutual-exclusion baseline.
//! * [`DualSsToken`] — two independent instances of Dijkstra's ring run
//!   side by side (the strawman of Figure 12, which *fails* mutual inclusion
//!   in the message-passing model).
//! * [`MultiSsToken`] — an m-token circulation baseline in the spirit of
//!   Flatebo–Datta–Schoone multi-token rings (reference [3] of the paper),
//!   used by the token-economy comparison (experiment E7).
//!
//! Algorithms are expressed as **guarded commands** over a ring in the
//! *state-reading* model: a process reads the local states of its two ring
//! neighbours and atomically rewrites its own state (composite atomicity).
//! The [`RingAlgorithm`] trait captures exactly that interface, so the same
//! algorithm value can be driven by
//!
//! * the state-reading execution engine in `ssr-daemon` (with central /
//!   synchronous / distributed / adversarial daemons),
//! * the discrete-event message-passing simulator in `ssr-mpnet` (via CST,
//!   where guards are evaluated against *cached* neighbour states), and
//! * the threaded runtime in `ssr-runtime`.
//!
//! ## Quick example
//!
//! ```
//! use ssr_core::{RingAlgorithm, RingParams, SsrMin, TokenSet};
//!
//! let params = RingParams::new(5, 7).unwrap(); // n = 5 processes, K = 7 > n
//! let algo = SsrMin::new(params);
//! // A legitimate configuration: P0 holds both tokens.
//! let mut config = algo.legitimate_anchor(3);
//! for _ in 0..15 {
//!     // In a legitimate configuration exactly one process is enabled.
//!     let enabled: Vec<usize> = algo.enabled_processes(&config);
//!     assert_eq!(enabled.len(), 1);
//!     let holders = algo.token_holders(&config);
//!     assert!((1..=2).contains(&holders.len()));
//!     config = algo.step_process(&config, enabled[0]).unwrap();
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod dijkstra;
pub mod dijkstra4;
pub mod dual;
pub mod error;
pub mod legitimacy;
pub mod lkcs;
pub mod multitoken;
pub mod params;
pub mod replica;
pub mod rules;
pub mod ssrmin;
pub mod state;
pub mod wire;

pub use algorithm::{Config, RingAlgorithm, TokenKind, TokenSet};
pub use dijkstra::{DijkstraLegitimacy, SsToken};
pub use dijkstra4::{D4Rule, D4State, Dijkstra4};
pub use dual::DualSsToken;
pub use error::{CoreError, Result};
pub use legitimacy::{enumerate_legitimate, is_legitimate_ssrmin, LegitimateForm};
pub use lkcs::{audit_cs, CriticalSectionProtocol, CsAudit, CsSpec};
pub use multitoken::MultiSsToken;
pub use params::RingParams;
pub use replica::Replica;
pub use rules::SsrRule;
pub use ssrmin::SsrMin;
pub use state::SsrState;
pub use wire::{crc32, decode_snapshot, encode_snapshot, SnapshotError, WireState};
