//! The (ℓ, k)-critical-section framework.
//!
//! Kakugawa's *(ℓ, k)-critical section problem* (reference [9] of the
//! paper) unifies mutual exclusion and mutual inclusion: at least `ℓ` and at
//! most `k` of the `n` processes must be in the critical section at any
//! time, `0 ≤ ℓ ≤ k ≤ n`. Mutual exclusion is `(0, 1)`; mutual inclusion is
//! `(1, n)`; **SSRmin solves `(1, 2)`** (Theorem 1). This module gives the
//! specification a first-class type, classifies the algorithms in this
//! crate, and provides an auditor that checks a stream of configurations
//! against a specification.

use crate::algorithm::RingAlgorithm;
use crate::dijkstra::SsToken;
use crate::dual::DualSsToken;
use crate::multitoken::MultiSsToken;
use crate::ssrmin::SsrMin;

/// An (ℓ, k)-critical-section specification: at least `l` and at most `k`
/// of the `n` processes in the critical section at any instant.
///
/// ```
/// use ssr_core::{CriticalSectionProtocol, CsSpec, RingParams, SsrMin};
/// let ssr = SsrMin::new(RingParams::new(5, 7).unwrap());
/// assert_eq!(ssr.cs_spec(), CsSpec::new(1, 2, 5)); // Theorem 1
/// assert!(ssr.cs_spec_message_passing().guarantees_inclusion());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CsSpec {
    /// Lower bound ℓ.
    pub l: usize,
    /// Upper bound k.
    pub k: usize,
    /// Number of processes n.
    pub n: usize,
}

impl CsSpec {
    /// Build a spec; panics unless `l ≤ k ≤ n`.
    pub fn new(l: usize, k: usize, n: usize) -> Self {
        assert!(l <= k && k <= n, "require 0 <= l <= k <= n, got ({l}, {k}, {n})");
        CsSpec { l, k, n }
    }

    /// Mutual exclusion: `(0, 1)`.
    pub fn mutual_exclusion(n: usize) -> Self {
        CsSpec::new(0, 1, n)
    }

    /// Mutual inclusion: `(1, n)`.
    pub fn mutual_inclusion(n: usize) -> Self {
        CsSpec::new(1, n, n)
    }

    /// True iff `in_cs` processes in the critical section satisfies the
    /// specification.
    #[inline]
    pub fn satisfied_by(&self, in_cs: usize) -> bool {
        (self.l..=self.k).contains(&in_cs)
    }

    /// True iff this spec implies mutual inclusion (`l ≥ 1`).
    pub fn guarantees_inclusion(&self) -> bool {
        self.l >= 1
    }

    /// True iff this spec implies mutual exclusion (`k ≤ 1`).
    pub fn guarantees_exclusion(&self) -> bool {
        self.k <= 1
    }
}

impl std::fmt::Display for CsSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})-CS over {} processes", self.l, self.k, self.n)
    }
}

/// An algorithm with a critical-section interpretation: a process may be in
/// the critical section iff it is privileged (holds a token).
pub trait CriticalSectionProtocol: RingAlgorithm {
    /// The specification met in **legitimate configurations of the
    /// state-reading model**.
    fn cs_spec(&self) -> CsSpec;

    /// The specification met at **every instant of the message-passing
    /// (CST) execution** from a legitimate cache-coherent start. For
    /// Dijkstra-style rings the lower bound drops to 0 — the model gap;
    /// SSRmin keeps `(1, 2)` — model gap tolerance (Theorem 3).
    fn cs_spec_message_passing(&self) -> CsSpec;

    /// Number of privileged processes (processes allowed in the CS) in
    /// `config`.
    fn in_cs(&self, config: &[Self::State]) -> usize {
        self.token_holders(config).len()
    }
}

impl CriticalSectionProtocol for SsrMin {
    fn cs_spec(&self) -> CsSpec {
        CsSpec::new(1, 2, self.n())
    }
    fn cs_spec_message_passing(&self) -> CsSpec {
        CsSpec::new(1, 2, self.n()) // Theorem 3: model gap tolerant
    }
}

impl CriticalSectionProtocol for SsToken {
    fn cs_spec(&self) -> CsSpec {
        CsSpec::new(1, 1, self.n()) // exactly one token in legitimate configs
    }
    fn cs_spec_message_passing(&self) -> CsSpec {
        CsSpec::new(0, 1, self.n()) // the token vanishes in transit (Fig. 11)
    }
}

impl CriticalSectionProtocol for DualSsToken {
    fn cs_spec(&self) -> CsSpec {
        CsSpec::new(1, 2, self.n())
    }
    fn cs_spec_message_passing(&self) -> CsSpec {
        CsSpec::new(0, 2, self.n()) // both tokens can be in flight (Fig. 12)
    }
}

impl CriticalSectionProtocol for MultiSsToken {
    fn cs_spec(&self) -> CsSpec {
        CsSpec::new(1, self.instances().min(self.n()), self.n())
    }
    fn cs_spec_message_passing(&self) -> CsSpec {
        CsSpec::new(0, self.instances().min(self.n()), self.n())
    }
}

/// Result of auditing a sequence of configurations against a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CsAudit {
    /// Configurations checked.
    pub checked: u64,
    /// Configurations with fewer than ℓ processes in the CS.
    pub below: u64,
    /// Configurations with more than k processes in the CS.
    pub above: u64,
    /// Minimum in-CS count observed.
    pub min_seen: usize,
    /// Maximum in-CS count observed.
    pub max_seen: usize,
}

impl CsAudit {
    /// True iff no violation was observed.
    pub fn clean(&self) -> bool {
        self.below == 0 && self.above == 0
    }
}

/// Audit an iterator of configurations against `spec` using `proto`'s
/// privileged predicate.
pub fn audit_cs<'a, P, I>(proto: &P, spec: CsSpec, configs: I) -> CsAudit
where
    P: CriticalSectionProtocol,
    P::State: 'a,
    I: IntoIterator<Item = &'a [P::State]>,
{
    let mut audit = CsAudit { checked: 0, below: 0, above: 0, min_seen: usize::MAX, max_seen: 0 };
    for cfg in configs {
        let c = proto.in_cs(cfg);
        audit.checked += 1;
        audit.min_seen = audit.min_seen.min(c);
        audit.max_seen = audit.max_seen.max(c);
        if c < spec.l {
            audit.below += 1;
        }
        if c > spec.k {
            audit.above += 1;
        }
    }
    if audit.checked == 0 {
        audit.min_seen = 0;
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legitimacy;
    use crate::params::RingParams;

    #[test]
    fn spec_construction_and_predicates() {
        let s = CsSpec::new(1, 2, 5);
        assert!(s.satisfied_by(1));
        assert!(s.satisfied_by(2));
        assert!(!s.satisfied_by(0));
        assert!(!s.satisfied_by(3));
        assert!(s.guarantees_inclusion());
        assert!(!s.guarantees_exclusion());
        assert!(CsSpec::mutual_exclusion(5).guarantees_exclusion());
        assert!(CsSpec::mutual_inclusion(5).guarantees_inclusion());
        assert_eq!(s.to_string(), "(1, 2)-CS over 5 processes");
    }

    #[test]
    #[should_panic(expected = "l <= k <= n")]
    fn spec_rejects_inverted_bounds() {
        CsSpec::new(3, 2, 5);
    }

    #[test]
    fn algorithm_specs_match_the_paper() {
        let p = RingParams::new(5, 7).unwrap();
        let ssr = SsrMin::new(p);
        assert_eq!(ssr.cs_spec(), CsSpec::new(1, 2, 5));
        assert_eq!(ssr.cs_spec_message_passing(), CsSpec::new(1, 2, 5));
        let dij = SsToken::new(p);
        assert_eq!(dij.cs_spec(), CsSpec::new(1, 1, 5));
        assert_eq!(dij.cs_spec_message_passing().l, 0);
        let dual = DualSsToken::new(p);
        assert_eq!(dual.cs_spec_message_passing(), CsSpec::new(0, 2, 5));
        let multi = MultiSsToken::new(p, 3).unwrap();
        assert_eq!(multi.cs_spec(), CsSpec::new(1, 3, 5));
    }

    #[test]
    fn audit_over_all_legitimate_configs_is_clean() {
        let p = RingParams::new(5, 7).unwrap();
        let ssr = SsrMin::new(p);
        let all = legitimacy::enumerate_legitimate(p);
        let audit = audit_cs(&ssr, ssr.cs_spec(), all.iter().map(|c| c.as_slice()));
        assert!(audit.clean(), "{audit:?}");
        assert_eq!(audit.checked, all.len() as u64);
        assert_eq!(audit.min_seen, 1);
        assert_eq!(audit.max_seen, 2);
    }

    #[test]
    fn audit_detects_violations() {
        let p = RingParams::new(5, 7).unwrap();
        let ssr = SsrMin::new(p);
        // A flag-less uniform configuration has only the primary at P0:
        // fine for (1,2). Audit against an absurd (2,2) spec to force a
        // "below" violation.
        let cfg = ssr.legitimate_anchor(0);
        let strict = CsSpec::new(2, 2, 5);
        let audit = audit_cs(&ssr, strict, std::iter::once(cfg.as_slice()));
        assert_eq!(audit.below, 1);
        assert!(!audit.clean());
    }

    #[test]
    fn empty_audit_is_clean() {
        let p = RingParams::new(5, 7).unwrap();
        let ssr = SsrMin::new(p);
        let audit = audit_cs(&ssr, ssr.cs_spec(), std::iter::empty::<&[crate::SsrState]>());
        assert!(audit.clean());
        assert_eq!(audit.min_seen, 0);
    }
}
