//! Dijkstra's self-stabilizing K-state token ring (`SSToken`, Algorithm 1 of
//! the paper) — the base algorithm SSRmin extends, and the mutual-exclusion
//! baseline for the message-passing experiments (Figure 11).

use crate::algorithm::{RingAlgorithm, TokenSet};
use crate::error::{CoreError, Result};
use crate::params::RingParams;

/// Rules of Dijkstra's K-state ring, named as in Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DijkstraRule {
    /// Rule D1 (bottom process `P_0`): if `x_0 = x_{n-1}` then
    /// `x_0 ← x_{n-1} + 1 mod K`.
    D1,
    /// Rule D2 (other process `P_i`): if `x_i ≠ x_{i-1}` then `x_i ← x_{i-1}`.
    D2,
}

/// How a configuration of the K-state ring is legitimate (the two syntactic
/// families of Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DijkstraLegitimacy {
    /// `(x, x, ..., x)` — the token is at the bottom process.
    Uniform {
        /// The common counter value.
        x: u32,
    },
    /// `(x+1, ..., x+1, x, ..., x)` with `ℓ` leading `x+1` values
    /// (`1 ≤ ℓ ≤ n-1`) — the token is at `P_ℓ`.
    Step {
        /// The value held by the trailing processes.
        x: u32,
        /// Number of leading `x+1` values; the token holder's index.
        l: usize,
    },
}

/// Dijkstra's K-state token ring on a unidirectional ring (information flows
/// from `P_{i-1}` to `P_i`; the successor's state is never read).
///
/// `P_i` holds *the* token iff it is enabled, and in legitimate
/// configurations exactly one process is enabled — this is the classic
/// self-stabilizing **mutual exclusion**. Under a message-passing
/// transformation the token vanishes while the release/receive messages are
/// in flight, which is precisely the defect motivating SSRmin (Figure 11).
///
/// ```
/// use ssr_core::{RingAlgorithm, RingParams, SsToken};
/// let ring = SsToken::new(RingParams::new(5, 7).unwrap());
/// let mut cfg = ring.uniform_config(3);        // token at the bottom
/// assert_eq!(ring.token_holders(&cfg), vec![0]);
/// cfg = ring.step_process(&cfg, 0).unwrap();   // bottom increments
/// assert_eq!(ring.token_holders(&cfg), vec![1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsToken {
    params: RingParams,
}

impl SsToken {
    /// Create the algorithm for the given ring parameters.
    pub fn new(params: RingParams) -> Self {
        SsToken { params }
    }

    /// Ring parameters.
    pub fn params(&self) -> RingParams {
        self.params
    }

    /// `G_i` of Algorithm 2 — the guard of Dijkstra's ring, which doubles as
    /// the token condition. For the bottom process this is `x_0 = x_{n-1}`;
    /// for the others `x_i ≠ x_{i-1}`.
    #[inline]
    pub fn guard(&self, i: usize, own_x: u32, pred_x: u32) -> bool {
        if i == 0 {
            own_x == pred_x
        } else {
            own_x != pred_x
        }
    }

    /// `C_i` of Algorithm 2 — the command of Dijkstra's ring. For the bottom
    /// process `x_0 ← x_{n-1} + 1 mod K`; for the others `x_i ← x_{i-1}`.
    #[inline]
    pub fn command(&self, i: usize, pred_x: u32) -> u32 {
        if i == 0 {
            self.params.inc(pred_x)
        } else {
            pred_x
        }
    }

    /// Classify a configuration against the two syntactic legitimate
    /// families, or `None` if it is illegitimate.
    pub fn classify(&self, config: &[u32]) -> Option<DijkstraLegitimacy> {
        if config.len() != self.params.n() {
            return None;
        }
        let x_last = *config.last().expect("n >= 3");
        if config.iter().all(|&v| v == x_last) {
            return Some(DijkstraLegitimacy::Uniform { x: x_last });
        }
        let upper = self.params.inc(x_last);
        // Count the prefix of x+1 values; the rest must all equal x.
        let l = config.iter().take_while(|&&v| v == upper).count();
        if (1..self.params.n()).contains(&l) && config[l..].iter().all(|&v| v == x_last) {
            Some(DijkstraLegitimacy::Step { x: x_last, l })
        } else {
            None
        }
    }

    /// The canonical legitimate configuration `(x, x, ..., x)` — the token is
    /// at the bottom process.
    pub fn uniform_config(&self, x: u32) -> Vec<u32> {
        assert!(x < self.params.k(), "x must be < K");
        vec![x; self.params.n()]
    }

    /// Count processes whose guard (token condition) holds.
    pub fn token_count(&self, config: &[u32]) -> usize {
        self.token_holders(config).len()
    }
}

impl RingAlgorithm for SsToken {
    type State = u32;
    type Rule = DijkstraRule;

    fn n(&self) -> usize {
        self.params.n()
    }

    fn enabled_rule(&self, i: usize, own: &u32, pred: &u32, _succ: &u32) -> Option<DijkstraRule> {
        if self.guard(i, *own, *pred) {
            Some(if i == 0 { DijkstraRule::D1 } else { DijkstraRule::D2 })
        } else {
            None
        }
    }

    fn execute(&self, i: usize, rule: DijkstraRule, _own: &u32, pred: &u32, _succ: &u32) -> u32 {
        debug_assert_eq!(rule, if i == 0 { DijkstraRule::D1 } else { DijkstraRule::D2 });
        self.command(i, *pred)
    }

    fn tokens_at(&self, i: usize, own: &u32, pred: &u32, _succ: &u32) -> TokenSet {
        TokenSet::new(self.guard(i, *own, *pred), false)
    }

    fn is_legitimate(&self, config: &[u32]) -> bool {
        self.classify(config).is_some()
    }

    // Every Dijkstra move is a counter move; tag 2 matches SSRmin's
    // convention that tags 2 and 4 denote executions of `C_i`.
    fn rule_tag(&self, _rule: DijkstraRule) -> u8 {
        2
    }

    fn validate_config(&self, config: &[u32]) -> Result<()> {
        if config.len() != self.params.n() {
            return Err(CoreError::ConfigLenMismatch {
                expected: self.params.n(),
                actual: config.len(),
            });
        }
        for (i, &x) in config.iter().enumerate() {
            self.params.check_x(x, i)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn algo(n: usize, k: u32) -> SsToken {
        SsToken::new(RingParams::new(n, k).unwrap())
    }

    #[test]
    fn bottom_guard_is_equality_others_inequality() {
        let a = algo(5, 7);
        assert!(a.guard(0, 3, 3));
        assert!(!a.guard(0, 3, 4));
        assert!(a.guard(2, 4, 3));
        assert!(!a.guard(2, 3, 3));
    }

    #[test]
    fn commands_follow_algorithm_1() {
        let a = algo(5, 7);
        assert_eq!(a.command(0, 3), 4);
        assert_eq!(a.command(0, 6), 0); // wraps mod K
        assert_eq!(a.command(3, 5), 5); // copy
    }

    #[test]
    fn uniform_config_has_token_at_bottom_only() {
        let a = algo(5, 7);
        let cfg = a.uniform_config(3);
        assert_eq!(a.enabled_processes(&cfg), vec![0]);
        assert_eq!(a.token_holders(&cfg), vec![0]);
        assert_eq!(a.classify(&cfg), Some(DijkstraLegitimacy::Uniform { x: 3 }));
    }

    #[test]
    fn step_config_has_token_at_boundary() {
        let a = algo(5, 7);
        let cfg = vec![4, 4, 3, 3, 3];
        assert_eq!(a.classify(&cfg), Some(DijkstraLegitimacy::Step { x: 3, l: 2 }));
        assert_eq!(a.token_holders(&cfg), vec![2]);
    }

    #[test]
    fn step_classification_wraps_mod_k() {
        let a = algo(5, 7);
        let cfg = vec![0, 0, 0, 6, 6]; // x = 6, x+1 = 0 mod 7
        assert_eq!(a.classify(&cfg), Some(DijkstraLegitimacy::Step { x: 6, l: 3 }));
    }

    #[test]
    fn illegitimate_configurations_are_rejected() {
        let a = algo(5, 7);
        assert_eq!(a.classify(&[1, 2, 3, 4, 5]), None);
        assert_eq!(a.classify(&[4, 3, 4, 3, 3]), None);
        assert_eq!(a.classify(&[5, 5, 3, 3, 3]), None); // gap of 2
        assert_eq!(a.classify(&[4, 4]), None); // wrong length
    }

    #[test]
    fn token_circulates_once_in_n_steps_then_bottom_fires() {
        let a = algo(5, 7);
        let mut cfg = a.uniform_config(3);
        // Bottom fires: (4,3,3,3,3); then the token moves down the ring.
        for expected_holder in [0usize, 1, 2, 3, 4] {
            assert_eq!(a.token_holders(&cfg), vec![expected_holder]);
            assert!(a.is_legitimate(&cfg));
            cfg = a.step_process(&cfg, expected_holder).unwrap();
        }
        // One full lap takes n steps and increments the shared value.
        assert_eq!(cfg, a.uniform_config(4));
        assert_eq!(a.token_holders(&cfg), vec![0]);
    }

    #[test]
    fn at_least_one_token_in_any_configuration() {
        // Lemma 3: exhaustive over a small ring.
        let a = algo(3, 4);
        for x0 in 0..4u32 {
            for x1 in 0..4u32 {
                for x2 in 0..4u32 {
                    let cfg = vec![x0, x1, x2];
                    assert!(a.token_count(&cfg) >= 1, "no token in {cfg:?}");
                }
            }
        }
    }

    #[test]
    fn convergence_from_arbitrary_config_under_central_daemon() {
        let a = algo(4, 5);
        // Every configuration converges if we always move the lowest enabled
        // process: token count never increases and eventually reaches 1.
        for raw in 0..5u32.pow(4) {
            let mut v = raw;
            let mut cfg: Vec<u32> = (0..4)
                .map(|_| {
                    let d = v % 5;
                    v /= 5;
                    d
                })
                .collect();
            for _ in 0..200 {
                if a.is_legitimate(&cfg) {
                    break;
                }
                let e = a.enabled_processes(&cfg);
                cfg = a.step_process(&cfg, e[0]).unwrap();
            }
            assert!(a.is_legitimate(&cfg), "failed to converge");
        }
    }

    #[test]
    fn validate_config_catches_shape_errors() {
        let a = algo(5, 7);
        assert!(a.validate_config(&[0, 1, 2, 3, 4]).is_ok());
        assert!(a.validate_config(&[0, 1, 2]).is_err());
        assert!(a.validate_config(&[0, 1, 2, 3, 7]).is_err());
    }
}
