//! Error type shared by the algorithm constructors and steppers.

use std::fmt;

/// Errors raised by `ssr-core` constructors and execution helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Ring size below the minimum required by the algorithm (paper: `n >= 3`).
    RingTooSmall {
        /// Requested number of processes.
        n: usize,
        /// Minimum accepted.
        min: usize,
    },
    /// `K` does not satisfy `K > n` (required for self-stabilization under
    /// the distributed daemon).
    InvalidK {
        /// Requested modulus.
        k: u32,
        /// Number of processes.
        n: usize,
    },
    /// A configuration slice had a length different from `n`.
    ConfigLenMismatch {
        /// Expected length (`n`).
        expected: usize,
        /// Actual slice length.
        actual: usize,
    },
    /// A state contained an `x` value outside `0..K`.
    XOutOfRange {
        /// Offending value.
        x: u32,
        /// Modulus `K`.
        k: u32,
        /// Process index holding the value.
        process: usize,
    },
    /// `step_process` was asked to move a process that is not enabled.
    ProcessNotEnabled {
        /// Process index.
        process: usize,
    },
    /// Process index out of `0..n`.
    ProcessOutOfRange {
        /// Offending index.
        process: usize,
        /// Number of processes.
        n: usize,
    },
    /// Multi-token ring was configured with an unusable token count.
    InvalidTokenCount {
        /// Requested number of tokens.
        m: usize,
        /// Number of processes.
        n: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CoreError::RingTooSmall { n, min } => {
                write!(f, "ring has {n} processes but at least {min} are required")
            }
            CoreError::InvalidK { k, n } => {
                write!(f, "K = {k} must exceed the ring size n = {n}")
            }
            CoreError::ConfigLenMismatch { expected, actual } => {
                write!(f, "configuration has {actual} states but the ring has {expected} processes")
            }
            CoreError::XOutOfRange { x, k, process } => {
                write!(f, "process {process} has x = {x} outside 0..{k}")
            }
            CoreError::ProcessNotEnabled { process } => {
                write!(f, "process {process} is not enabled in this configuration")
            }
            CoreError::ProcessOutOfRange { process, n } => {
                write!(f, "process index {process} out of range for ring of size {n}")
            }
            CoreError::InvalidTokenCount { m, n } => {
                write!(f, "cannot circulate {m} tokens on a ring of {n} processes")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_values() {
        let e = CoreError::RingTooSmall { n: 2, min: 3 };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
        let e = CoreError::InvalidK { k: 4, n: 5 };
        assert!(e.to_string().contains("K = 4"));
        let e = CoreError::ConfigLenMismatch { expected: 5, actual: 4 };
        assert!(e.to_string().contains('5') && e.to_string().contains('4'));
        let e = CoreError::XOutOfRange { x: 9, k: 7, process: 1 };
        assert!(e.to_string().contains("x = 9"));
        let e = CoreError::ProcessNotEnabled { process: 3 };
        assert!(e.to_string().contains('3'));
        let e = CoreError::ProcessOutOfRange { process: 7, n: 5 };
        assert!(e.to_string().contains('7'));
        let e = CoreError::InvalidTokenCount { m: 9, n: 3 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&CoreError::RingTooSmall { n: 1, min: 3 });
    }
}
