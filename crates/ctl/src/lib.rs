//! # ssr-ctl — live control & introspection plane for running clusters
//!
//! Every signal the cluster and soak runtimes produce (`MetricsReport`,
//! `RecoveryReport`, chaos counters) used to be printed only *after* the
//! run ended. This crate turns the soak harness into an *operable* system:
//! a dependency-free (std-only) HTTP/1.1 server embedded into the live UDP
//! cluster that serves, while the ring runs:
//!
//! * `GET /metrics` — Prometheus text exposition of the per-node counters,
//!   chaos-proxy drop/delay/blocked counters, supervisor restart/panic
//!   counts, and live recovery histograms;
//! * `GET /status` — a JSON ring snapshot: per-node state, locally
//!   evaluated privileges and tokens, generation, cache coherence, fault
//!   phase;
//! * `GET /top` — the same snapshot rendered as an ASCII dashboard (the
//!   payload behind `ssrmin top`);
//! * `POST /chaos` — flip partition windows and loss rates on the chaos
//!   proxies at runtime;
//! * `POST /faults` — inject crash/restart/partition events into the fault
//!   supervisor while the ring runs (each gets a recovery row, exactly like
//!   a scheduled fault).
//!
//! The crate is deliberately split along a narrow seam: everything here is
//! transport and rendering — HTTP parsing ([`http`]), JSON ([`json`]),
//! Prometheus text ([`prom`]), the dashboard ([`plane`]) — behind one trait,
//! [`ControlPlane`], that the cluster runtime (`ssr-net`) implements. The
//! server never touches sockets, threads or replicas of the ring itself; it
//! only calls the plane. That keeps `ssr-ctl` reusable by any runtime and
//! keeps the ring's hot path free of HTTP concerns (the server is not even
//! constructed unless `--ctl-addr` is given).
//!
//! [`client`] is the matching plain-`TcpStream` HTTP client used by
//! `ssrmin ctl` and `ssrmin top`, so no external tooling (curl, Prometheus)
//! is needed to operate a ring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod plane;
pub mod prom;
pub mod server;

pub use client::{get, post, HttpReply};
pub use json::Json;
pub use plane::{ChaosCmd, ControlPlane, LinkStatus, NodeStatus, RingStatus};
pub use prom::{Family, MetricKind, Sample};
pub use server::{CtlListener, CtlServer};
