//! A small self-contained JSON value type with a renderer and a parser.
//!
//! The vendored `serde` stand-in has no JSON backend, and `/status` must be
//! *parseable* JSON — both for external tools and for our own integration
//! tests, which round-trip the endpoint through [`Json::parse`]. The subset
//! is complete for the values we produce: objects preserve insertion order
//! (stable output for tests and diffs), numbers are `f64`, and strings are
//! escaped per RFC 8259 (`\uXXXX` for control characters; the parser also
//! accepts surrogate pairs).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; rendered via Rust's shortest-roundtrip `f64` formatting
    /// (integral values render without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for `Json::Str`.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for `Json::Num` from any integer.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a [`Json`] value.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional degradation.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX for the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the +1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8: &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_ordered_objects() {
        let v = Json::obj(vec![
            ("n", Json::num(5u32)),
            ("ok", Json::Bool(true)),
            ("name", Json::str("ring")),
            ("items", Json::Arr(vec![Json::Null, Json::num(1u32)])),
        ]);
        assert_eq!(v.render(), r#"{"n":5,"ok":true,"name":"ring","items":[null,1]}"#);
    }

    #[test]
    fn roundtrips_through_parser() {
        let v = Json::obj(vec![
            ("state", Json::str("3.1.0")),
            ("latency", Json::Num(2.5)),
            ("negative", Json::Num(-17.0)),
            ("escaped", Json::str("a\"b\\c\nd")),
            ("nested", Json::obj(vec![("deep", Json::Arr(vec![Json::Bool(false)]))])),
        ]);
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.get("state").and_then(Json::as_str), Some("3.1.0"));
        assert_eq!(parsed.get("latency").and_then(Json::as_f64), Some(2.5));
        assert_eq!(parsed.get("negative").and_then(Json::as_u64), None);
    }

    #[test]
    fn parses_whitespace_unicode_and_exponents() {
        let v = Json::parse(" { \"a\" : [ 1e3 , -2.5E-1, \"\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1000.0));
        assert_eq!(arr[1].as_f64(), Some(-0.25));
        assert_eq!(arr[2].as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::num(7.0).as_u64(), Some(7));
    }
}
