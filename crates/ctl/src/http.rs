//! A deliberately tiny HTTP/1.1 subset: just enough to parse one request
//! from a stream and write one response back.
//!
//! The control plane only ever needs `GET`/`POST` with small plain-text
//! bodies, one request per connection (`Connection: close`). Chunked
//! transfer encoding, keep-alive, pipelining, compression and multi-line
//! headers are all out of scope — a client that wants them gets a plain
//! `400`/`411` instead of undefined behaviour. Limits are hard-coded and
//! small (8 KiB of headers, 64 KiB of body) so a misbehaving peer cannot
//! balloon the server's memory.

use std::io::{self, Read, Write};

/// Maximum bytes of request line + headers we are willing to buffer.
const MAX_HEAD: usize = 8 * 1024;
/// Maximum request body we are willing to read.
const MAX_BODY: usize = 64 * 1024;

/// One parsed HTTP request: method, path (with any query string stripped),
/// and the raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method token, e.g. `GET` or `POST`.
    pub method: String,
    /// Request path without query string, e.g. `/metrics`.
    pub path: String,
    /// Raw body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The body decoded as UTF-8, lossily.
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Errors produced while reading a request; each maps to the HTTP status
/// the server should answer with.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line or headers → 400.
    Bad(&'static str),
    /// Head or body exceeded the hard limits → 431/413.
    TooLarge(&'static str),
    /// Underlying socket error (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Bad(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one HTTP/1.1 request from `stream`.
///
/// Reads byte-wise growth until the `\r\n\r\n` head terminator (bounded by
/// [`MAX_HEAD`]), parses the request line and a `Content-Length` header if
/// present, then reads exactly that many body bytes (bounded by
/// [`MAX_BODY`]).
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, HttpError> {
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    let body_start;
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(HttpError::Bad("connection closed before end of headers"));
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_head_end(&head) {
            body_start = pos;
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(HttpError::TooLarge("headers"));
        }
    }

    let head_text = String::from_utf8_lossy(&head[..body_start]);
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Bad("missing method"))?.to_ascii_uppercase();
    let target = parts.next().ok_or(HttpError::Bad("missing path"))?;
    if parts.next().map(|v| !v.starts_with("HTTP/1.")).unwrap_or(true) {
        return Err(HttpError::Bad("not HTTP/1.x"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(HttpError::Bad("path must be absolute"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Bad("unparseable content-length"))?;
            } else if name.trim().eq_ignore_ascii_case("transfer-encoding") {
                return Err(HttpError::Bad("chunked bodies are not supported"));
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge("body"));
    }

    let mut body = head[body_start + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(HttpError::Bad("connection closed mid-body"));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);

    Ok(Request { method, path, body })
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one complete `Connection: close` HTTP/1.1 response.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn strips_query_string_and_upcases_method() {
        let raw = b"get /status?pretty=1 HTTP/1.0\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/status");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let raw = b"POST /chaos HTTP/1.1\r\nContent-Length: 13\r\n\r\npartition 0 1";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/chaos");
        assert_eq!(req.body_str(), "partition 0 1");
    }

    #[test]
    fn body_split_across_reads_is_reassembled() {
        // A reader that yields one byte at a time exercises the re-read loop.
        struct Trickle<'a>(&'a [u8]);
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let raw = b"POST /faults HTTP/1.1\r\nContent-Length: 7\r\n\r\ncrash 2";
        let req = read_request(&mut Trickle(raw)).unwrap();
        assert_eq!(req.body_str(), "crash 2");
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        let raw = b"NONSENSE\r\n\r\n";
        assert!(matches!(read_request(&mut &raw[..]), Err(HttpError::Bad(_))));
        let raw = b"GET relative HTTP/1.1\r\n\r\n";
        assert!(matches!(read_request(&mut &raw[..]), Err(HttpError::Bad(_))));
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n";
        assert!(matches!(read_request(&mut &raw[..]), Err(HttpError::TooLarge(_))));
        let mut huge = Vec::new();
        huge.extend_from_slice(b"GET / HTTP/1.1\r\n");
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD + 10));
        assert!(matches!(read_request(&mut &huge[..]), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn response_has_content_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"ok").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok"));
    }
}
