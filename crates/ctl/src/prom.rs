//! Prometheus text exposition (format version 0.0.4).
//!
//! Only the writer side: metric families of counter/gauge samples with
//! labels, rendered with `# HELP` / `# TYPE` preambles and the label-value
//! escaping the format requires (`\\`, `\"`, `\n`). That is the entire
//! surface a scrape endpoint needs; histograms are exported as pre-computed
//! quantile gauges (`ssr_recovery_ms{quantile="p99"}`) rather than native
//! `_bucket` series, because the recovery histogram is already summarised
//! upstream.

use std::fmt::Write as _;

/// The Prometheus metric type of a family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing (rendered as `# TYPE ... counter`).
    Counter,
    /// Free-moving value (rendered as `# TYPE ... gauge`).
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One sample within a family: a label set and a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label pairs, rendered in order as `{k="v",...}`; may be empty.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// A sample with no labels.
    pub fn plain(value: f64) -> Sample {
        Sample { labels: Vec::new(), value }
    }

    /// A sample with one label.
    pub fn labeled(key: &str, value_label: impl Into<String>, value: f64) -> Sample {
        Sample { labels: vec![(key.to_string(), value_label.into())], value }
    }
}

/// A named metric family: help text, kind, and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Metric name, e.g. `ssr_node_sends_total`.
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// The samples; an empty family renders only its preamble.
    pub samples: Vec<Sample>,
}

impl Family {
    /// Builds a family.
    pub fn new(name: &str, help: &str, kind: MetricKind, samples: Vec<Sample>) -> Family {
        Family { name: name.to_string(), help: help.to_string(), kind, samples }
    }
}

/// Renders families to the Prometheus text exposition format.
pub fn render(families: &[Family]) -> String {
    let mut out = String::new();
    for family in families {
        let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
        for sample in &family.samples {
            out.push_str(&family.name);
            if !sample.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in sample.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                }
                out.push('}');
            }
            let _ = writeln!(out, " {}", format_value(sample.value));
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_help_type_and_samples() {
        let fam = Family::new(
            "ssr_node_sends_total",
            "Datagrams sent per node",
            MetricKind::Counter,
            vec![Sample::labeled("node", "0", 12.0), Sample::labeled("node", "1", 7.0)],
        );
        let text = render(&[fam]);
        assert_eq!(
            text,
            "# HELP ssr_node_sends_total Datagrams sent per node\n\
             # TYPE ssr_node_sends_total counter\n\
             ssr_node_sends_total{node=\"0\"} 12\n\
             ssr_node_sends_total{node=\"1\"} 7\n"
        );
    }

    #[test]
    fn renders_plain_gauges_and_floats() {
        let fam = Family::new(
            "ssr_recovery_ms",
            "Recovery quantiles",
            MetricKind::Gauge,
            vec![Sample::labeled("quantile", "p50", 12.5), Sample::plain(3.0)],
        );
        let text = render(&[fam]);
        assert!(text.contains("# TYPE ssr_recovery_ms gauge\n"));
        assert!(text.contains("ssr_recovery_ms{quantile=\"p50\"} 12.5\n"));
        assert!(text.contains("\nssr_recovery_ms 3\n"));
    }

    #[test]
    fn escapes_label_values_and_multi_labels() {
        let fam = Family::new(
            "x",
            "h",
            MetricKind::Gauge,
            vec![Sample {
                labels: vec![
                    ("link".to_string(), "0->1".to_string()),
                    ("note".to_string(), "a\"b\\c\nd".to_string()),
                ],
                value: 1.0,
            }],
        );
        let text = render(&[fam]);
        assert!(text.contains(r#"x{link="0->1",note="a\"b\\c\nd"} 1"#), "{text}");
    }

    #[test]
    fn special_values_render_prometheus_style() {
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(-0.0), "0");
    }
}
