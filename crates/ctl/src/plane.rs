//! The [`ControlPlane`] trait and the snapshot types it returns.
//!
//! This is the seam between `ssr-ctl` (transport + rendering) and the
//! cluster runtime in `ssr-net` (sockets, threads, replicas). The runtime
//! implements [`ControlPlane`]; the HTTP server and the `ssrmin top`
//! dashboard consume only the plain-data [`RingStatus`] snapshot it hands
//! back. Implementations must be lock-cheap: `status()` and `metrics()`
//! are called on every scrape while the ring is circulating.

use std::fmt::Write as _;

use ssr_mpnet::FaultKind;

use crate::http::Request;
use crate::json::Json;
use crate::prom::Family;

/// Live view of one ring node, as evaluated by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStatus {
    /// Node index.
    pub node: usize,
    /// Whether the node's thread is currently up (not crashed).
    pub up: bool,
    /// Incarnation counter (how many times this node has been (re)started).
    pub incarnation: u64,
    /// Whether the node currently evaluates itself privileged.
    pub privileged: bool,
    /// Whether the node currently holds the primary token.
    pub primary: bool,
    /// Whether the node currently holds the secondary token.
    pub secondary: bool,
    /// Rendered local state (e.g. `x.rts.tra`), if a snapshot was readable.
    pub state: Option<String>,
    /// Whether this node's caches agree with its neighbours' own states
    /// (centrally evaluated); `None` when a neighbour snapshot is missing.
    pub coherent: Option<bool>,
    /// Last transport generation stamped by this node.
    pub generation: u64,
    /// Datagrams sent.
    pub sends: u64,
    /// Datagrams received.
    pub receives: u64,
    /// Guarded-rule firings.
    pub rule_firings: u64,
    /// Critical-section activations (privilege rising edges).
    pub activations: u64,
}

/// Live view of one directed chaos-proxied link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStatus {
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Whether the link is currently partitioned.
    pub partitioned: bool,
    /// Datagrams forwarded.
    pub forwarded: u64,
    /// Datagrams dropped by chaos loss.
    pub dropped: u64,
    /// Datagrams swallowed by a partition.
    pub blocked: u64,
    /// Datagrams with a chaos-flipped byte (codec must reject them).
    pub corrupted: u64,
    /// Datagrams truncated by chaos (codec must reject them).
    pub truncated: u64,
    /// Datagrams tail-dropped by the link's netem pacing buffer
    /// (congestion loss — distinct from `dropped`, the seeded chaos loss).
    pub netem_dropped: u64,
}

/// One full ring snapshot: what `/status` serialises and `/top` renders.
#[derive(Debug, Clone, PartialEq)]
pub struct RingStatus {
    /// Ring size.
    pub n: usize,
    /// Milliseconds since the run started.
    pub uptime_ms: u64,
    /// Human-readable run phase (`warmup`, `measuring`, ...).
    pub phase: String,
    /// Number of currently privileged nodes.
    pub privileged: usize,
    /// Whether `1 <= privileged <= 2` holds right now (P9/P10 observed).
    pub token_count_ok: bool,
    /// Fault events applied so far (scheduled + injected).
    pub faults_applied: u64,
    /// Node restarts performed so far.
    pub restarts: u64,
    /// Node-thread panics observed so far.
    pub panics: u64,
    /// Fault events whose recovery window re-established the invariant.
    pub recovered: u64,
    /// Fault events not (yet) recovered from.
    pub unrecovered: u64,
    /// Recovery time of the most recent recovered fault, in ms.
    pub last_recovery_ms: Option<u64>,
    /// p50 of recovery times so far, in ms.
    pub p50_recovery_ms: Option<u64>,
    /// p99 of recovery times so far, in ms.
    pub p99_recovery_ms: Option<u64>,
    /// Worst recovery time so far, in ms.
    pub max_recovery_ms: Option<u64>,
    /// Convergence-watchdog escalations recorded so far (resyncs and
    /// self-restarts).
    pub watchdog_escalations: u64,
    /// The Theorem 2 wall-clock stabilization envelope for this ring, in ms
    /// (0 when the runtime exposes none).
    pub envelope_ms: u64,
    /// Whether every measured recovery so far landed within the envelope.
    pub envelope_ok: bool,
    /// Per-node detail, one entry per ring node.
    pub nodes: Vec<NodeStatus>,
    /// Per-link detail, two directed links per node.
    pub links: Vec<LinkStatus>,
}

fn opt_ms(v: Option<u64>) -> Json {
    v.map(|ms| Json::num(ms as f64)).unwrap_or(Json::Null)
}

impl RingStatus {
    /// Serialises the snapshot as the `/status` JSON document.
    pub fn to_json(&self) -> Json {
        let nodes = self
            .nodes
            .iter()
            .map(|node| {
                Json::obj(vec![
                    ("node", Json::num(node.node as f64)),
                    ("up", Json::Bool(node.up)),
                    ("incarnation", Json::num(node.incarnation as f64)),
                    ("privileged", Json::Bool(node.privileged)),
                    ("primary", Json::Bool(node.primary)),
                    ("secondary", Json::Bool(node.secondary)),
                    ("state", node.state.clone().map(Json::Str).unwrap_or(Json::Null)),
                    ("coherent", node.coherent.map(Json::Bool).unwrap_or(Json::Null)),
                    ("generation", Json::num(node.generation as f64)),
                    ("sends", Json::num(node.sends as f64)),
                    ("receives", Json::num(node.receives as f64)),
                    ("rule_firings", Json::num(node.rule_firings as f64)),
                    ("activations", Json::num(node.activations as f64)),
                ])
            })
            .collect();
        let links = self
            .links
            .iter()
            .map(|link| {
                Json::obj(vec![
                    ("from", Json::num(link.from as f64)),
                    ("to", Json::num(link.to as f64)),
                    ("partitioned", Json::Bool(link.partitioned)),
                    ("forwarded", Json::num(link.forwarded as f64)),
                    ("dropped", Json::num(link.dropped as f64)),
                    ("blocked", Json::num(link.blocked as f64)),
                    ("corrupted", Json::num(link.corrupted as f64)),
                    ("truncated", Json::num(link.truncated as f64)),
                    ("netem_dropped", Json::num(link.netem_dropped as f64)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("n", Json::num(self.n as f64)),
            ("uptime_ms", Json::num(self.uptime_ms as f64)),
            ("phase", Json::str(&self.phase)),
            ("privileged", Json::num(self.privileged as f64)),
            ("token_count_ok", Json::Bool(self.token_count_ok)),
            ("faults_applied", Json::num(self.faults_applied as f64)),
            ("restarts", Json::num(self.restarts as f64)),
            ("panics", Json::num(self.panics as f64)),
            ("recovered", Json::num(self.recovered as f64)),
            ("unrecovered", Json::num(self.unrecovered as f64)),
            ("last_recovery_ms", opt_ms(self.last_recovery_ms)),
            ("p50_recovery_ms", opt_ms(self.p50_recovery_ms)),
            ("p99_recovery_ms", opt_ms(self.p99_recovery_ms)),
            ("max_recovery_ms", opt_ms(self.max_recovery_ms)),
            ("watchdog_escalations", Json::num(self.watchdog_escalations as f64)),
            ("envelope_ms", Json::num(self.envelope_ms as f64)),
            ("envelope_ok", Json::Bool(self.envelope_ok)),
            ("nodes", Json::Arr(nodes)),
            ("links", Json::Arr(links)),
        ])
    }

    /// Renders the snapshot as the `/top` ASCII dashboard (also used by
    /// `ssrmin top`).
    pub fn render_top(&self) -> String {
        let mut out = String::new();
        let invariant = if self.token_count_ok { "OK" } else { "VIOLATED" };
        let _ = writeln!(
            out,
            "ssrmin ring  n={}  uptime={:.1}s  phase={}  privileged={}  invariant[1..=2]={}",
            self.n,
            self.uptime_ms as f64 / 1000.0,
            self.phase,
            self.privileged,
            invariant,
        );
        let _ = writeln!(
            out,
            "faults={}  restarts={}  panics={}  recovered={}/{}  last={}  p50={}  p99={}  max={}",
            self.faults_applied,
            self.restarts,
            self.panics,
            self.recovered,
            self.recovered + self.unrecovered,
            fmt_ms(self.last_recovery_ms),
            fmt_ms(self.p50_recovery_ms),
            fmt_ms(self.p99_recovery_ms),
            fmt_ms(self.max_recovery_ms),
        );
        let _ = writeln!(
            out,
            "watchdog={}  envelope={}ms  within-envelope={}",
            self.watchdog_escalations,
            self.envelope_ms,
            if self.envelope_ok { "yes" } else { "NO" },
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:>4} {:4} {:4} {:>4} {:12} {:8} {:>10} {:>10} {:>8} {:>6} {:>5}",
            "node",
            "up",
            "priv",
            "tok",
            "state",
            "coherent",
            "sends",
            "recvs",
            "firings",
            "acts",
            "gen"
        );
        for node in &self.nodes {
            let tok = match (node.primary, node.secondary) {
                (true, true) => "P+S",
                (true, false) => "P",
                (false, true) => "S",
                (false, false) => "-",
            };
            let _ = writeln!(
                out,
                "{:>4} {:4} {:4} {:>4} {:12} {:8} {:>10} {:>10} {:>8} {:>6} {:>5}",
                node.node,
                if node.up { "up" } else { "DOWN" },
                if node.privileged { "*" } else { "." },
                tok,
                node.state.as_deref().unwrap_or("?"),
                match node.coherent {
                    Some(true) => "yes",
                    Some(false) => "NO",
                    None => "?",
                },
                node.sends,
                node.receives,
                node.rule_firings,
                node.activations,
                node.generation,
            );
        }
        let cut: Vec<String> = self
            .links
            .iter()
            .filter(|link| link.partitioned)
            .map(|link| format!("{}->{}", link.from, link.to))
            .collect();
        let _ = writeln!(out);
        if cut.is_empty() {
            let _ = writeln!(out, "links: all passing");
        } else {
            let _ = writeln!(out, "links: PARTITIONED {}", cut.join(", "));
        }
        out
    }
}

fn fmt_ms(v: Option<u64>) -> String {
    match v {
        Some(ms) => format!("{ms}ms"),
        None => "-".to_string(),
    }
}

/// A runtime chaos adjustment accepted by `POST /chaos`.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosCmd {
    /// Cut (`cut = true`) or heal (`cut = false`) the directed link
    /// `from -> to`.
    Partition {
        /// Source node of the directed link.
        from: usize,
        /// Destination node of the directed link.
        to: usize,
        /// `true` to partition, `false` to heal.
        cut: bool,
    },
    /// Override the loss rate on *all* links (`None` restores the
    /// configured rate).
    Loss(Option<f64>),
    /// Override the byte-corruption rate on *all* links (`None` restores
    /// the configured rate).
    Corrupt(Option<f64>),
    /// Override the truncation rate on *all* links (`None` restores the
    /// configured rate).
    Truncate(Option<f64>),
    /// Swap the netem pacing profile on *all* links to the named link
    /// profile (`None` switches pacing off). The runtime resolves the name
    /// — builtin profiles plus whatever profile files it loaded.
    Netem(Option<String>),
}

/// Parses a `POST /chaos` body.
///
/// Grammar (one command per request):
/// `partition <from> <to>` · `heal <from> <to>` · `loss <p>` · `loss off` ·
/// `corrupt <p>` · `corrupt off` · `truncate <p>` · `truncate off` ·
/// `netem <profile>` · `netem off`.
pub fn parse_chaos_cmd(body: &str) -> Result<ChaosCmd, String> {
    let mut words = body.split_whitespace();
    let verb = words.next().ok_or("empty chaos command")?;
    let cmd = match verb {
        "partition" | "heal" => {
            let from = parse_index(words.next(), "from")?;
            let to = parse_index(words.next(), "to")?;
            ChaosCmd::Partition { from, to, cut: verb == "partition" }
        }
        "loss" => ChaosCmd::Loss(parse_rate(words.next(), "loss")?),
        "corrupt" => ChaosCmd::Corrupt(parse_rate(words.next(), "corrupt")?),
        "truncate" => ChaosCmd::Truncate(parse_rate(words.next(), "truncate")?),
        "netem" => match words.next() {
            Some("off") => ChaosCmd::Netem(None),
            Some(name) => ChaosCmd::Netem(Some(name.to_string())),
            None => return Err("netem needs a profile name or 'off'".to_string()),
        },
        other => {
            return Err(format!(
                "unknown chaos command '{other}' (expected \
                 partition/heal/loss/corrupt/truncate/netem)"
            ))
        }
    };
    if words.next().is_some() {
        return Err("trailing words after chaos command".to_string());
    }
    Ok(cmd)
}

fn parse_index(word: Option<&str>, what: &str) -> Result<usize, String> {
    let word = word.ok_or_else(|| format!("missing {what} node"))?;
    word.parse().map_err(|_| format!("unparseable {what} node '{word}'"))
}

/// `<p>` in `[0, 1]` sets an override, `off` clears it.
fn parse_rate(word: Option<&str>, what: &str) -> Result<Option<f64>, String> {
    match word {
        Some("off") => Ok(None),
        Some(p) => {
            let p: f64 = p.parse().map_err(|_| format!("unparseable {what} rate '{p}'"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{what} rate {p} outside [0, 1]"));
            }
            Ok(Some(p))
        }
        None => Err(format!("{what} needs a rate or 'off'")),
    }
}

/// What a runtime must expose for `ssr-ctl` to serve it.
///
/// All four methods are called from the ctl server's accept thread while
/// the ring runs, so implementations must be thread-safe and cheap —
/// atomics and short mutex holds, never a ring-wide pause.
pub trait ControlPlane: Send + Sync {
    /// A consistent-enough snapshot of the ring for `/status` and `/top`.
    fn status(&self) -> RingStatus;
    /// The metric families behind `/metrics`.
    fn metrics(&self) -> Vec<Family>;
    /// Applies a runtime chaos adjustment; returns a one-line confirmation.
    fn chaos(&self, cmd: ChaosCmd) -> Result<String, String>;
    /// Queues a fault for the supervisor to inject; returns a one-line
    /// confirmation.
    fn inject(&self, fault: FaultKind) -> Result<String, String>;
    /// First-chance routing hook for planes that serve endpoints beyond the
    /// fixed set (e.g. `ssr-serve`'s `/tenants` registry and lease API).
    /// Return `Some((status, content_type, body))` to answer the request,
    /// `None` to fall through to the built-in routes. The default plane
    /// serves nothing extra.
    fn handle(&self, request: &Request) -> Option<(u16, &'static str, String)> {
        let _ = request;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status() -> RingStatus {
        RingStatus {
            n: 2,
            uptime_ms: 1500,
            phase: "measuring".to_string(),
            privileged: 1,
            token_count_ok: true,
            faults_applied: 3,
            restarts: 1,
            panics: 0,
            recovered: 2,
            unrecovered: 1,
            last_recovery_ms: Some(41),
            p50_recovery_ms: Some(40),
            p99_recovery_ms: Some(41),
            max_recovery_ms: Some(41),
            watchdog_escalations: 2,
            envelope_ms: 80,
            envelope_ok: true,
            nodes: vec![
                NodeStatus {
                    node: 0,
                    up: true,
                    incarnation: 1,
                    privileged: true,
                    primary: true,
                    secondary: false,
                    state: Some("1.0.1".to_string()),
                    coherent: Some(true),
                    generation: 10,
                    sends: 20,
                    receives: 18,
                    rule_firings: 5,
                    activations: 3,
                },
                NodeStatus {
                    node: 1,
                    up: false,
                    incarnation: 2,
                    privileged: false,
                    primary: false,
                    secondary: false,
                    state: None,
                    coherent: None,
                    generation: 7,
                    sends: 9,
                    receives: 11,
                    rule_firings: 2,
                    activations: 1,
                },
            ],
            links: vec![
                LinkStatus {
                    from: 0,
                    to: 1,
                    partitioned: false,
                    forwarded: 30,
                    dropped: 2,
                    blocked: 0,
                    corrupted: 1,
                    truncated: 0,
                    netem_dropped: 0,
                },
                LinkStatus {
                    from: 1,
                    to: 0,
                    partitioned: true,
                    forwarded: 12,
                    dropped: 0,
                    blocked: 4,
                    corrupted: 0,
                    truncated: 2,
                    netem_dropped: 5,
                },
            ],
        }
    }

    #[test]
    fn status_json_roundtrips_with_one_entry_per_node() {
        let doc = status().to_json();
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed.get("n").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("token_count_ok").and_then(Json::as_bool), Some(true));
        let nodes = parsed.get("nodes").unwrap().as_arr().unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].get("state").and_then(Json::as_str), Some("1.0.1"));
        assert_eq!(nodes[1].get("state"), Some(&Json::Null));
        assert_eq!(nodes[1].get("up").and_then(Json::as_bool), Some(false));
        let links = parsed.get("links").unwrap().as_arr().unwrap();
        assert_eq!(links[1].get("partitioned").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn top_renders_every_node_and_partitions() {
        let text = status().render_top();
        assert!(text.contains("invariant[1..=2]=OK"), "{text}");
        assert!(text.contains("DOWN"), "{text}");
        assert!(text.contains("PARTITIONED 1->0"), "{text}");
        assert!(text.contains("recovered=2/3"), "{text}");
        // One table row per node (plus header + summary lines).
        assert!(text.lines().count() >= 2 + 2, "{text}");
    }

    #[test]
    fn chaos_grammar_accepts_and_rejects() {
        assert_eq!(
            parse_chaos_cmd("partition 0 1"),
            Ok(ChaosCmd::Partition { from: 0, to: 1, cut: true })
        );
        assert_eq!(
            parse_chaos_cmd(" heal 3 2 "),
            Ok(ChaosCmd::Partition { from: 3, to: 2, cut: false })
        );
        assert_eq!(parse_chaos_cmd("loss 0.25"), Ok(ChaosCmd::Loss(Some(0.25))));
        assert_eq!(parse_chaos_cmd("loss off"), Ok(ChaosCmd::Loss(None)));
        assert_eq!(parse_chaos_cmd("corrupt 0.5"), Ok(ChaosCmd::Corrupt(Some(0.5))));
        assert_eq!(parse_chaos_cmd("corrupt off"), Ok(ChaosCmd::Corrupt(None)));
        assert_eq!(parse_chaos_cmd("truncate 1"), Ok(ChaosCmd::Truncate(Some(1.0))));
        assert_eq!(parse_chaos_cmd("truncate off"), Ok(ChaosCmd::Truncate(None)));
        assert_eq!(
            parse_chaos_cmd("netem lossy-wan"),
            Ok(ChaosCmd::Netem(Some("lossy-wan".to_string())))
        );
        assert_eq!(parse_chaos_cmd("netem off"), Ok(ChaosCmd::Netem(None)));
        assert!(parse_chaos_cmd("netem").is_err());
        assert!(parse_chaos_cmd("netem wan extra").is_err());
        assert!(parse_chaos_cmd("").is_err());
        assert!(parse_chaos_cmd("partition 0").is_err());
        assert!(parse_chaos_cmd("loss 1.5").is_err());
        assert!(parse_chaos_cmd("corrupt 2").is_err());
        assert!(parse_chaos_cmd("corrupt").is_err());
        assert!(parse_chaos_cmd("truncate -0.1").is_err());
        assert!(parse_chaos_cmd("partition 0 1 2").is_err());
        assert!(parse_chaos_cmd("explode").is_err());
    }

    #[test]
    fn status_json_and_top_carry_watchdog_and_envelope_fields() {
        let doc = status().to_json();
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed.get("watchdog_escalations").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("envelope_ms").and_then(Json::as_u64), Some(80));
        assert_eq!(parsed.get("envelope_ok").and_then(Json::as_bool), Some(true));
        let links = parsed.get("links").unwrap().as_arr().unwrap();
        assert_eq!(links[0].get("corrupted").and_then(Json::as_u64), Some(1));
        assert_eq!(links[1].get("truncated").and_then(Json::as_u64), Some(2));
        assert_eq!(links[1].get("netem_dropped").and_then(Json::as_u64), Some(5));
        let text = status().render_top();
        assert!(text.contains("watchdog=2"), "{text}");
        assert!(text.contains("envelope=80ms"), "{text}");
        assert!(text.contains("within-envelope=yes"), "{text}");
    }
}
