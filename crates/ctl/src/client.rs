//! A plain-`TcpStream` HTTP client for `ssrmin ctl` and `ssrmin top`.
//!
//! One request per connection against the ctl server's `Connection: close`
//! contract: write the request, read to EOF, split status line from body.
//! Accepts `host:port` or `http://host:port[/...]` targets so operators can
//! paste the URL the cluster printed at startup.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Connect/read/write timeout for one ctl request.
const TIMEOUT: Duration = Duration::from_millis(3000);

/// One HTTP reply: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// HTTP status code (200, 400, ...).
    pub status: u16,
    /// Body, decoded lossily as UTF-8.
    pub body: String,
}

impl HttpReply {
    /// Whether the status is 2xx.
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Normalises a target: strips an `http://` scheme and any path suffix.
fn host_port(target: &str) -> &str {
    let target = target.strip_prefix("http://").unwrap_or(target);
    target.split('/').next().unwrap_or(target)
}

/// Performs `GET <path>` against `target` (`host:port` or `http://...`).
pub fn get(target: &str, path: &str) -> io::Result<HttpReply> {
    request(target, "GET", path, b"")
}

/// Performs `POST <path>` with a plain-text body.
pub fn post(target: &str, path: &str, body: &str) -> io::Result<HttpReply> {
    request(target, "POST", path, body.as_bytes())
}

fn request(target: &str, method: &str, path: &str, body: &[u8]) -> io::Result<HttpReply> {
    let authority = host_port(target);
    let mut last_err = io::Error::new(io::ErrorKind::InvalidInput, "no address resolved");
    // to_socket_addrs via connect: try each resolved address in turn.
    let addrs = std::net::ToSocketAddrs::to_socket_addrs(authority)?;
    for addr in addrs {
        match TcpStream::connect_timeout(&addr, TIMEOUT) {
            Ok(stream) => return roundtrip(stream, authority, method, path, body),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

fn roundtrip(
    mut stream: TcpStream,
    authority: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<HttpReply> {
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {authority}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> io::Result<HttpReply> {
    let text = String::from_utf8_lossy(raw);
    let head_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status_line = text.lines().next().unwrap_or_default();
    let status: u16 =
        status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status line: {status_line}"))
        })?;
    Ok(HttpReply { status, body: text[head_end + 4..].to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn strips_scheme_and_path() {
        assert_eq!(host_port("127.0.0.1:8080"), "127.0.0.1:8080");
        assert_eq!(host_port("http://127.0.0.1:8080"), "127.0.0.1:8080");
        assert_eq!(host_port("http://127.0.0.1:8080/status"), "127.0.0.1:8080");
    }

    #[test]
    fn parses_status_and_body() {
        let reply =
            parse_reply(b"HTTP/1.1 422 Unprocessable Entity\r\nContent-Length: 4\r\n\r\nnope")
                .unwrap();
        assert_eq!(reply.status, 422);
        assert_eq!(reply.body, "nope");
        assert!(!reply.ok());
        assert!(parse_reply(b"garbage").is_err());
    }

    #[test]
    fn talks_to_a_one_shot_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let mut seen = Vec::new();
            // Read until the body "ping" has arrived.
            loop {
                let n = stream.read(&mut buf).unwrap();
                seen.extend_from_slice(&buf[..n]);
                if seen.ends_with(b"ping") {
                    break;
                }
            }
            let text = String::from_utf8_lossy(&seen);
            assert!(text.starts_with("POST /chaos HTTP/1.1\r\n"), "{text}");
            assert!(text.contains("Content-Length: 4\r\n"), "{text}");
            stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap();
        });
        let reply = post(&format!("http://{addr}"), "/chaos", "ping").unwrap();
        assert!(reply.ok());
        assert_eq!(reply.body, "ok");
        server.join().unwrap();
    }
}
