//! The embedded control-plane HTTP server.
//!
//! [`CtlListener::bind`] grabs the socket early (so a caller can learn the
//! ephemeral port before the ring even starts); [`CtlListener::serve`]
//! spawns one accept thread that handles connections inline — the expected
//! client population is one operator and one scraper, so a thread-per
//! connection pool would be dead weight. The accept loop polls a
//! non-blocking listener at 2 ms granularity and honours a stop flag, so
//! [`CtlServer::shutdown`] always returns promptly and drops its
//! `Arc<dyn ControlPlane>` (the runtime relies on that to reclaim sole
//! ownership of its logs at teardown).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use ssr_mpnet::FaultKind;

use crate::http::{read_request, write_response, HttpError, Request};
use crate::plane::{parse_chaos_cmd, ControlPlane};
use crate::prom;

/// How long a single connection may dawdle on reads/writes before being
/// dropped; keeps a stuck client from wedging the accept loop.
const STREAM_TIMEOUT: Duration = Duration::from_millis(2000);
/// Accept-poll granularity.
const POLL: Duration = Duration::from_millis(2);

/// A bound-but-not-yet-serving control listener.
///
/// Binding is split from serving because the runtime wants to print the
/// (possibly ephemeral) address before spawning node threads, and because
/// a bind error should surface before any ring state exists.
#[derive(Debug)]
pub struct CtlListener {
    listener: TcpListener,
    addr: SocketAddr,
}

impl CtlListener {
    /// Binds the control socket (port 0 picks an ephemeral port).
    pub fn bind(addr: SocketAddr) -> io::Result<CtlListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(CtlListener { listener, addr })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts serving `plane` on a background thread.
    pub fn serve(self, plane: Arc<dyn ControlPlane>) -> CtlServer {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let addr = self.addr;
        let listener = self.listener;
        let handle = thread::Builder::new()
            .name("ssr-ctl".to_string())
            .spawn(move || accept_loop(listener, plane, stop_flag))
            .expect("spawn ctl accept thread");
        CtlServer { addr, stop, handle: Some(handle) }
    }
}

/// A running control server; shut it down to join the accept thread and
/// release the [`ControlPlane`].
#[derive(Debug)]
pub struct CtlServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl CtlServer {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread (idempotent).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CtlServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, plane: Arc<dyn ControlPlane>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, plane.as_ref()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            // Transient accept errors (ECONNABORTED etc.): keep serving.
            Err(_) => thread::sleep(POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, plane: &dyn ControlPlane) {
    let _ = stream.set_read_timeout(Some(STREAM_TIMEOUT));
    let _ = stream.set_write_timeout(Some(STREAM_TIMEOUT));
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(e) => {
            let (status, message) = match &e {
                HttpError::Bad(_) => (400, e.to_string()),
                HttpError::TooLarge(_) => (413, e.to_string()),
                HttpError::Io(_) => return, // peer went away; nothing to answer
            };
            let _ = write_response(&mut stream, status, "text/plain", message.as_bytes());
            return;
        }
    };
    let (status, content_type, body) = route(&request, plane);
    let _ = write_response(&mut stream, status, content_type, body.as_bytes());
}

/// Dispatches one request against the plane. Pure apart from plane calls,
/// so unit tests exercise routing without sockets.
fn route(request: &Request, plane: &dyn ControlPlane) -> (u16, &'static str, String) {
    // Plane-specific endpoints (e.g. ssr-serve's tenant registry) get first
    // refusal, so a plane can extend — or deliberately shadow — the fixed
    // routes without this crate knowing its URL space.
    if let Some(response) = plane.handle(request) {
        return response;
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/metrics") => {
            (200, "text/plain; version=0.0.4; charset=utf-8", prom::render(&plane.metrics()))
        }
        ("GET", "/status") => (200, "application/json", plane.status().to_json().render()),
        ("GET", "/top") => (200, "text/plain; charset=utf-8", plane.status().render_top()),
        ("GET", "/") => (200, "text/plain; charset=utf-8", INDEX.to_string()),
        ("POST", "/chaos") => match parse_chaos_cmd(&request.body_str()) {
            Ok(cmd) => match plane.chaos(cmd) {
                Ok(message) => (200, "text/plain", message + "\n"),
                Err(message) => (422, "text/plain", message + "\n"),
            },
            Err(message) => (400, "text/plain", message + "\n"),
        },
        ("POST", "/faults") => match request.body_str().trim().parse::<FaultKind>() {
            Ok(fault) => match plane.inject(fault) {
                Ok(message) => (200, "text/plain", message + "\n"),
                Err(message) => (422, "text/plain", message + "\n"),
            },
            Err(e) => (400, "text/plain", format!("{e}\n")),
        },
        ("GET", _) => (404, "text/plain", "no such endpoint; GET / lists them\n".to_string()),
        ("POST", _) => (404, "text/plain", "no such endpoint; GET / lists them\n".to_string()),
        _ => (405, "text/plain", "only GET and POST are supported\n".to_string()),
    }
}

const INDEX: &str = "ssr-ctl endpoints:\n\
  GET  /metrics  Prometheus text exposition\n\
  GET  /status   JSON ring snapshot\n\
  GET  /top      ASCII dashboard (ssrmin top)\n\
  POST /chaos    body: partition F T | heal F T | loss P|off | corrupt P|off | truncate P|off\n\
  POST /faults   body: crash N [amnesia|snapshot] | restart N | partition F T | heal F T | corrupt-snapshot N | corrupt-state N | freeze N | babble N\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::{ChaosCmd, LinkStatus, NodeStatus, RingStatus};
    use crate::prom::{Family, MetricKind, Sample};
    use std::io::{Read, Write};
    use std::sync::Mutex;

    /// A plane that records admin calls and serves canned data.
    struct MockPlane {
        calls: Mutex<Vec<String>>,
    }

    impl MockPlane {
        fn new() -> Arc<MockPlane> {
            Arc::new(MockPlane { calls: Mutex::new(Vec::new()) })
        }
    }

    impl ControlPlane for MockPlane {
        fn status(&self) -> RingStatus {
            RingStatus {
                n: 1,
                uptime_ms: 10,
                phase: "measuring".to_string(),
                privileged: 1,
                token_count_ok: true,
                faults_applied: 0,
                restarts: 0,
                panics: 0,
                recovered: 0,
                unrecovered: 0,
                last_recovery_ms: None,
                p50_recovery_ms: None,
                p99_recovery_ms: None,
                max_recovery_ms: None,
                watchdog_escalations: 0,
                envelope_ms: 500,
                envelope_ok: true,
                nodes: vec![NodeStatus {
                    node: 0,
                    up: true,
                    incarnation: 1,
                    privileged: true,
                    primary: true,
                    secondary: false,
                    state: Some("0.0.0".to_string()),
                    coherent: Some(true),
                    generation: 1,
                    sends: 1,
                    receives: 1,
                    rule_firings: 1,
                    activations: 1,
                }],
                links: vec![LinkStatus {
                    from: 0,
                    to: 0,
                    partitioned: false,
                    forwarded: 0,
                    dropped: 0,
                    blocked: 0,
                    corrupted: 0,
                    truncated: 0,
                    netem_dropped: 0,
                }],
            }
        }

        fn metrics(&self) -> Vec<Family> {
            vec![Family::new(
                "ssr_test_total",
                "test",
                MetricKind::Counter,
                vec![Sample::plain(1.0)],
            )]
        }

        fn chaos(&self, cmd: ChaosCmd) -> Result<String, String> {
            self.calls.lock().unwrap().push(format!("chaos {cmd:?}"));
            match cmd {
                ChaosCmd::Partition { from: 9, .. } => Err("no such link".to_string()),
                _ => Ok("applied".to_string()),
            }
        }

        fn inject(&self, fault: FaultKind) -> Result<String, String> {
            self.calls.lock().unwrap().push(format!("inject {fault}"));
            Ok("queued".to_string())
        }
    }

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request { method: method.to_string(), path: path.to_string(), body: body.into() }
    }

    #[test]
    fn routes_get_endpoints() {
        let plane = MockPlane::new();
        let (status, ct, body) = route(&req("GET", "/metrics", ""), plane.as_ref());
        assert_eq!(status, 200);
        assert!(ct.starts_with("text/plain; version=0.0.4"));
        assert!(body.contains("ssr_test_total 1"));

        let (status, ct, body) = route(&req("GET", "/status", ""), plane.as_ref());
        assert_eq!((status, ct), (200, "application/json"));
        assert!(crate::json::Json::parse(&body).is_ok());

        let (status, _, body) = route(&req("GET", "/top", ""), plane.as_ref());
        assert_eq!(status, 200);
        assert!(body.contains("invariant[1..=2]=OK"));

        let (status, _, _) = route(&req("GET", "/nope", ""), plane.as_ref());
        assert_eq!(status, 404);
        let (status, _, _) = route(&req("DELETE", "/status", ""), plane.as_ref());
        assert_eq!(status, 405);
    }

    /// A plane using the first-chance routing hook: extends the URL space
    /// with its own endpoint (and method) and shadows a built-in route.
    struct ExtendedPlane(Arc<MockPlane>);

    impl ControlPlane for ExtendedPlane {
        fn status(&self) -> RingStatus {
            self.0.status()
        }
        fn metrics(&self) -> Vec<Family> {
            self.0.metrics()
        }
        fn chaos(&self, cmd: ChaosCmd) -> Result<String, String> {
            self.0.chaos(cmd)
        }
        fn inject(&self, fault: FaultKind) -> Result<String, String> {
            self.0.inject(fault)
        }
        fn handle(&self, request: &Request) -> Option<(u16, &'static str, String)> {
            match (request.method.as_str(), request.path.as_str()) {
                ("GET", "/tenants") => Some((200, "application/json", "[]".to_string())),
                ("DELETE", "/tenants/1") => Some((200, "text/plain", "deleted\n".to_string())),
                ("GET", "/top") => Some((200, "text/plain", "shadowed\n".to_string())),
                _ => None,
            }
        }
    }

    #[test]
    fn plane_handle_extends_and_shadows_routes() {
        let plane = ExtendedPlane(MockPlane::new());
        let (status, ct, body) = route(&req("GET", "/tenants", ""), &plane);
        assert_eq!((status, ct, body.as_str()), (200, "application/json", "[]"));
        // Methods the fixed routes would 405 reach the plane first.
        let (status, _, _) = route(&req("DELETE", "/tenants/1", ""), &plane);
        assert_eq!(status, 200);
        let (status, _, _) = route(&req("DELETE", "/status", ""), &plane);
        assert_eq!(status, 405, "unhandled methods still fall through to 405");
        // A handled path shadows the built-in; unhandled built-ins survive.
        let (_, _, body) = route(&req("GET", "/top", ""), &plane);
        assert_eq!(body, "shadowed\n");
        let (status, _, _) = route(&req("GET", "/status", ""), &plane);
        assert_eq!(status, 200);
    }

    #[test]
    fn routes_admin_posts_with_error_mapping() {
        let plane = MockPlane::new();
        let (status, _, _) = route(&req("POST", "/chaos", "partition 0 1"), plane.as_ref());
        assert_eq!(status, 200);
        let (status, _, _) = route(&req("POST", "/chaos", "partition 9 0"), plane.as_ref());
        assert_eq!(status, 422, "plane-level rejection maps to 422");
        let (status, _, _) = route(&req("POST", "/chaos", "gibberish"), plane.as_ref());
        assert_eq!(status, 400, "parse failure maps to 400");
        let (status, _, _) = route(&req("POST", "/faults", "crash 0 snapshot"), plane.as_ref());
        assert_eq!(status, 200);
        let (status, _, _) = route(&req("POST", "/faults", "meteor 3"), plane.as_ref());
        assert_eq!(status, 400);
        let calls = plane.calls.lock().unwrap();
        assert_eq!(calls.len(), 3, "only parseable, routable commands reach the plane: {calls:?}");
        assert!(calls[2].contains("crash node 0 (snapshot)"), "{calls:?}");
    }

    #[test]
    fn serves_over_real_sockets_and_shuts_down() {
        let listener = CtlListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr();
        assert_ne!(addr.port(), 0, "ephemeral port resolved at bind time");
        let mut server = listener.serve(MockPlane::new());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /status HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("\"token_count_ok\":true"), "{reply}");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /faults HTTP/1.1\r\nContent-Length: 9\r\n\r\nrestart 0").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.ends_with("queued\n"), "{reply}");

        server.shutdown();
        server.shutdown(); // idempotent
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Some platforms accept briefly after close; a read must fail.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
                let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
                let mut buf = [0u8; 1];
                !matches!(s.read(&mut buf), Ok(n) if n > 0)
            }
        );
    }
}
