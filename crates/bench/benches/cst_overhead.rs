//! CST ablation: receipt-driven gossip vs timer-only gossip, and the cost
//! of the critical-section dwell machinery — how the transform's knobs
//! trade message volume for handover latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ssr_core::{RingParams, SsrMin};
use ssr_mpnet::{CstSim, DelayModel, SimConfig};

fn base_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        delay: DelayModel::Fixed(5),
        loss: 0.0,
        timer_interval: 40,
        send_on_receipt: true,
        exec_delay: 0,
        burst: None,
    }
}

fn bench_gossip_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("cst_gossip_mode_10k_ticks");
    let params = RingParams::minimal(16).unwrap();
    let algo = SsrMin::new(params);
    let variants: [(&str, SimConfig); 3] = [
        ("receipt-driven", base_cfg(1)),
        ("timer-only", SimConfig { send_on_receipt: false, ..base_cfg(1) }),
        ("with-dwell", SimConfig { exec_delay: 4, ..base_cfg(1) }),
    ];
    for (label, cfg) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter_batched(
                || CstSim::new(algo, algo.legitimate_anchor(0), *cfg).unwrap(),
                |mut sim| {
                    black_box(sim.run_until(10_000));
                    sim
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gossip_modes);
criterion_main!(benches);
