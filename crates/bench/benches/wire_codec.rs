//! Wire-codec benchmark: encode/decode throughput of the `ssr-net` frame
//! format. A CST node encodes one frame per broadcast per neighbour and
//! decodes every arriving datagram, so codec cost bounds the transport's
//! sustainable message rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ssr_core::SsrState;
use ssr_net::{decode, encode, encode_tenant};

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_encode");
    let state = SsrState { x: 12345, rts: true, tra: false };
    let frame_len = encode(3, 7, &state).len() as u64;
    group.throughput(Throughput::Bytes(frame_len));
    group.bench_function("ssr_state", |b| {
        let mut generation = 0u32;
        b.iter(|| {
            generation = generation.wrapping_add(1);
            black_box(encode(black_box(3), black_box(generation), black_box(&state)))
        })
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_decode");
    let state = SsrState { x: 12345, rts: true, tra: false };
    let bytes = encode(3, 7, &state);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("ssr_state_ok", |b| {
        b.iter(|| black_box(decode::<SsrState>(black_box(&bytes))).unwrap())
    });
    // The rejection path matters too: under corruption or an attack the
    // receiver must shed bad frames at least as fast as good ones.
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF; // breaks the checksum
    group.bench_function("ssr_state_bad_checksum", |b| {
        b.iter(|| black_box(decode::<SsrState>(black_box(&corrupt))).unwrap_err())
    });
    group.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    // One broadcast as the transport performs it: bump generation, encode,
    // peer decodes — the per-datagram CPU cost of the UDP path minus I/O.
    let mut group = c.benchmark_group("wire_round_trip");
    let state = SsrState { x: 4, rts: false, tra: true };
    group.bench_function("encode_then_decode", |b| {
        let mut generation = 0u32;
        b.iter(|| {
            generation = generation.wrapping_add(1);
            let bytes = encode(1, generation, black_box(&state));
            black_box(decode::<SsrState>(&bytes)).unwrap()
        })
    });
    group.finish();
}

fn bench_tenant_frames(c: &mut Criterion) {
    // The multi-tenant serve path stamps every datagram with a version-2
    // tenant header; its overhead relative to v1 must stay negligible.
    let mut group = c.benchmark_group("wire_tenant");
    let state = SsrState { x: 321, rts: true, tra: false };
    let bytes = encode_tenant(9, 3, 7, &state);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_v2", |b| {
        let mut generation = 0u32;
        b.iter(|| {
            generation = generation.wrapping_add(1);
            black_box(encode_tenant(black_box(9), black_box(3), black_box(generation), &state))
        })
    });
    group.bench_function("decode_v2", |b| {
        b.iter(|| black_box(decode::<SsrState>(black_box(&bytes))).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_round_trip, bench_tenant_frames);
criterion_main!(benches);
