//! Microbenchmarks of the guarded-command core: guard evaluation, rule
//! selection, token predicates and legitimacy classification. These are the
//! inner loops of every simulator and of a deployed node's receive path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ssr_core::{legitimacy, RingAlgorithm, RingParams, SsrMin};
use ssr_daemon::random_config;

fn bench_enabled_rule(c: &mut Criterion) {
    let mut group = c.benchmark_group("enabled_rule_scan");
    for n in [8usize, 32, 128, 512] {
        let params = RingParams::minimal(n).unwrap();
        let algo = SsrMin::new(params);
        let cfg = random_config::random_ssr_config(params, 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut count = 0usize;
                for i in 0..n {
                    if algo.enabled_rule_in(black_box(&cfg), i).is_some() {
                        count += 1;
                    }
                }
                black_box(count)
            })
        });
    }
    group.finish();
}

fn bench_token_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_predicates");
    for n in [8usize, 128] {
        let params = RingParams::minimal(n).unwrap();
        let algo = SsrMin::new(params);
        let cfg = algo.legitimate_anchor(0);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0u32;
                for i in 0..n {
                    total += algo.tokens_in(black_box(&cfg), i).count() as u32;
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_legitimacy_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("legitimacy_classify");
    for n in [8usize, 128, 1024] {
        let params = RingParams::minimal(n).unwrap();
        let algo = SsrMin::new(params);
        let legit = algo.legitimate_anchor(0);
        let illegit = random_config::random_ssr_config(params, 3);
        group.bench_with_input(BenchmarkId::new("legitimate", n), &n, |b, _| {
            b.iter(|| black_box(legitimacy::classify(params, black_box(&legit))))
        });
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, _| {
            b.iter(|| black_box(legitimacy::classify(params, black_box(&illegit))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enabled_rule, bench_token_predicates, bench_legitimacy_classify);
criterion_main!(benches);
