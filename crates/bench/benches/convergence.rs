//! Convergence benchmark: wall-clock cost of stabilizing from random
//! configurations — the O(n²) of Theorem 2 as end-to-end compute time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ssr_core::{RingParams, SsrMin};
use ssr_daemon::daemons::CentralRandom;
use ssr_daemon::{measure_convergence, random_config};

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence_from_random");
    group.sample_size(20);
    for n in [8usize, 16, 32, 64] {
        let params = RingParams::minimal(n).unwrap();
        let algo = SsrMin::new(params);
        let budget = 100 * (n as u64) * (n as u64) + 1000;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let cfg = random_config::random_ssr_config(params, seed);
                let mut daemon = CentralRandom::seeded(seed);
                black_box(
                    measure_convergence(algo, cfg, &mut daemon, budget, 0).expect("must converge"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
