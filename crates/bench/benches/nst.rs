//! NST simulator throughput, and the CST-vs-NST wall-clock comparison at
//! equal simulated horizons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ssr_core::{RingParams, SsrMin};
use ssr_mpnet::{CstSim, DelayModel, NstConfig, NstSim, SimConfig};

fn bench_nst_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("nst_sim_10k_ticks");
    for n in [5usize, 16] {
        let params = RingParams::minimal(n).unwrap();
        let algo = SsrMin::new(params);
        group.throughput(Throughput::Elements(10_000));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || NstSim::new(algo, algo.legitimate_anchor(0), NstConfig::default()).unwrap(),
                |mut sim| {
                    sim.run_until(10_000);
                    black_box(sim.stats())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_transform_wallclock(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform_wallclock_10k_ticks");
    let params = RingParams::minimal(8).unwrap();
    let algo = SsrMin::new(params);
    group.bench_function("cst", |b| {
        b.iter_batched(
            || {
                let cfg =
                    SimConfig { seed: 1, delay: DelayModel::Fixed(5), ..SimConfig::default() };
                CstSim::new(algo, algo.legitimate_anchor(0), cfg).unwrap()
            },
            |mut sim| {
                sim.run_until(10_000);
                black_box(sim.stats())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("nst", |b| {
        b.iter_batched(
            || NstSim::new(algo, algo.legitimate_anchor(0), NstConfig::default()).unwrap(),
            |mut sim| {
                sim.run_until(10_000);
                black_box(sim.stats())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_nst_ticks, bench_transform_wallclock);
criterion_main!(benches);
