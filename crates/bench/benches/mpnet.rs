//! Discrete-event simulator throughput: simulated-ticks-per-second and
//! events-per-second of the CST network simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ssr_core::{RingParams, SsrMin};
use ssr_mpnet::{CstSim, DelayModel, SimConfig};

fn sim_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        delay: DelayModel::Uniform { min: 2, max: 9 },
        loss: 0.0,
        timer_interval: 40,
        send_on_receipt: true,
        exec_delay: 0,
        burst: None,
    }
}

fn bench_sim_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("cst_sim_10k_ticks");
    for n in [5usize, 16, 64] {
        let params = RingParams::minimal(n).unwrap();
        let algo = SsrMin::new(params);
        group.throughput(Throughput::Elements(10_000));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || CstSim::new(algo, algo.legitimate_anchor(0), sim_cfg(1)).unwrap(),
                |mut sim| {
                    black_box(sim.run_until(10_000));
                    sim
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_sim_with_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("cst_sim_loss");
    let params = RingParams::minimal(16).unwrap();
    let algo = SsrMin::new(params);
    for loss in [0.0f64, 0.3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("loss{loss}")),
            &loss,
            |b, &loss| {
                b.iter_batched(
                    || {
                        let cfg = SimConfig { loss, ..sim_cfg(1) };
                        CstSim::new(algo, algo.legitimate_anchor(0), cfg).unwrap()
                    },
                    |mut sim| {
                        black_box(sim.run_until(10_000));
                        sim
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim_ticks, bench_sim_with_loss);
criterion_main!(benches);
