//! Model-checker throughput: configurations verified per second, for the
//! two passes (parallel scan + sequential longest-path DFS) combined.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ssr_core::{Dijkstra4, RingParams, SsToken};
use ssr_verify::{space::ssrmin, verify, verify_under, DaemonClass};

fn bench_verify_ssrmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_ssrmin");
    group.sample_size(10);
    for (n, k) in [(3usize, 4u32), (3, 6), (4, 5)] {
        let algo = ssrmin(n, k);
        let configs = (4 * k as u64).pow(n as u32);
        group.throughput(Throughput::Elements(configs));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}k{k}")),
            &algo,
            |b, algo| b.iter(|| black_box(verify(algo, 10_000_000).unwrap())),
        );
    }
    group.finish();
}

fn bench_verify_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_baselines");
    group.sample_size(10);
    let dij = SsToken::new(RingParams::new(6, 7).unwrap());
    group.bench_function("sstoken_n6", |b| b.iter(|| black_box(verify(&dij, 10_000_000).unwrap())));
    let d4 = Dijkstra4::new(9).unwrap();
    group.bench_function("dijkstra4_n9_central", |b| {
        b.iter(|| black_box(verify_under(&d4, 10_000_000, DaemonClass::Central).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_verify_ssrmin, bench_verify_baselines);
criterion_main!(benches);
