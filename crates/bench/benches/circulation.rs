//! Steady-state circulation benchmark: the cost of one full token lap
//! (3n scheduler steps) in the state-reading engine — the paper's Lemma 1
//! cycle made into a throughput number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ssr_core::{RingParams, SsrMin};
use ssr_daemon::daemons::CentralFirst;
use ssr_daemon::Engine;

fn bench_lap(c: &mut Criterion) {
    let mut group = c.benchmark_group("circulation_lap");
    for n in [8usize, 32, 128, 512] {
        let params = RingParams::minimal(n).unwrap();
        let algo = SsrMin::new(params);
        let steps = 3 * n as u64; // one full lap of the two tokens
        group.throughput(Throughput::Elements(steps));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || Engine::new(algo, algo.legitimate_anchor(0)).unwrap(),
                |mut engine| {
                    let mut daemon = CentralFirst;
                    for _ in 0..steps {
                        black_box(engine.step(&mut daemon));
                    }
                    engine
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_step_set_distributed(c: &mut Criterion) {
    // Cost of a distributed-daemon step (simultaneous moves) vs central.
    let mut group = c.benchmark_group("engine_step");
    let params = RingParams::minimal(64).unwrap();
    let algo = SsrMin::new(params);
    group.bench_function("central", |b| {
        b.iter_batched(
            || Engine::new(algo, algo.legitimate_anchor(0)).unwrap(),
            |mut engine| {
                let mut daemon = CentralFirst;
                for _ in 0..100 {
                    black_box(engine.step(&mut daemon));
                }
                engine
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("synchronous", |b| {
        b.iter_batched(
            || Engine::new(algo, algo.legitimate_anchor(0)).unwrap(),
            |mut engine| {
                let mut daemon = ssr_daemon::daemons::Synchronous;
                for _ in 0..100 {
                    black_box(engine.step(&mut daemon));
                }
                engine
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_lap, bench_step_set_distributed);
criterion_main!(benches);
