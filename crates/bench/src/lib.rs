//! # ssr-bench — experiment harness and benchmarks
//!
//! One binary per figure/claim of the paper (see `DESIGN.md` §4 for the
//! index). Run them all with:
//!
//! ```sh
//! for b in fig01_token_movement fig02_handshake fig03_rule_map \
//!          fig04_execution_example fig11_sstoken_extinction \
//!          fig12_dual_sstoken fig13_gap_tolerance exp_closure \
//!          exp_no_deadlock exp_lemma5_bound exp_convergence_scaling \
//!          exp_domination exp_lossy_convergence exp_camera_coverage \
//!          exp_token_economy; do
//!   cargo run --release -p ssr-bench --bin $b
//! done
//! ```
//!
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ssr_mpnet::{DelayModel, SimConfig};

/// The standard message-passing configuration used across the Figure 11–13
/// experiments: jittered delays, a retransmission timer, and a small
/// critical-section dwell so token *holding* has nonzero duration.
pub fn standard_sim_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        delay: DelayModel::Uniform { min: 2, max: 9 },
        loss: 0.0,
        timer_interval: 40,
        send_on_receipt: true,
        exec_delay: 4,
        burst: None,
    }
}

/// Standard observation length for the message-passing experiments.
pub const STANDARD_T_END: u64 = 60_000;

/// Print a section header in the experiment output.
pub fn header(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config_has_dwell_and_timer() {
        let c = standard_sim_config(3);
        assert_eq!(c.seed, 3);
        assert!(c.exec_delay > 0);
        assert!(c.timer_interval > 0);
        assert!(c.send_on_receipt);
    }
}
