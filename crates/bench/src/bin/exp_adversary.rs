//! E13 (adversary synthesis): randomized hill climbing over (initial
//! configuration × daemon schedule) to find worst-case stabilization
//! schedules. For tiny rings the result is validated against the model
//! checker's *exact* worst case; for larger rings it gives a lower bound
//! the paper's O(n²) upper bound can be compared to.

use ssr_analysis::{search_worst_case, Table};
use ssr_core::{RingParams, SsrMin};
use ssr_verify::{space::ssrmin, verify};

fn main() {
    println!("E13 — adversary synthesis vs the exact worst case");
    let mut table = Table::new(vec![
        "n",
        "K",
        "search best (steps)",
        "exact worst (checker)",
        "gap",
        "evaluations",
    ]);
    for (n, k, budget) in [
        (3usize, 4u32, 4_000u64),
        (3, 5, 4_000),
        (4, 5, 8_000),
        (5, 6, 8_000),
        (6, 7, 8_000),
        (8, 9, 8_000),
    ] {
        let algo = SsrMin::new(RingParams::new(n, k).expect("valid parameters"));
        let found = search_worst_case(algo, budget, 42);
        let exact: Option<u32> = if (4 * k as u64).pow(n as u32) <= 400_000 {
            let r = verify(&ssrmin(n, k), 400_000).expect("fits");
            assert!(found.steps <= r.worst_case_steps as u64, "search exceeded the proven bound!");
            Some(r.worst_case_steps)
        } else {
            None
        };
        table.row(vec![
            n.to_string(),
            k.to_string(),
            found.steps.to_string(),
            exact.map(|e| e.to_string()).unwrap_or_else(|| "(space too large)".into()),
            exact
                .map(|e| format!("{:.0}%", 100.0 * (e as f64 - found.steps as f64) / e as f64))
                .unwrap_or_else(|| "-".into()),
            found.evaluations.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nWhere the checker can enumerate the space, the search reaches\n\
         70–90% of the proven exact worst case — so for larger rings its\n\
         numbers are meaningful (if conservative) lower bounds on the true\n\
         worst case, and never exceed the proven bound. Even these\n\
         adversarially-optimized schedules stay an order of magnitude below\n\
         the O(n²) budget (e.g. 81 steps at n = 8 vs the 40n²+1000 = 3560\n\
         envelope) — stabilization is robustly fast in practice."
    );
}
