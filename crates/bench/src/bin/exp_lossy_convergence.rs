//! E5 (Lemma 9 / Theorem 4): convergence in the message-passing model under
//! uniformly random message loss, from corrupted states *and* corrupted
//! caches. Reports stabilization time vs loss rate.

use ssr_analysis::{summarize, Table};
use ssr_bench::standard_sim_config;
use ssr_core::{RingParams, SsrMin};
use ssr_daemon::random_config;
use ssr_mpnet::{faults, CstSim, SimConfig};

fn main() {
    println!("E5 — Theorem 4: stabilization under message loss (n = 8, corrupted state + caches)");
    let params = RingParams::new(8, 10).expect("valid parameters");
    let algo = SsrMin::new(params);
    let seeds = 10u64;
    let t_max = 5_000_000u64;
    let stable_window = 2_000u64;

    let mut table = Table::new(vec![
        "loss",
        "converged",
        "mean t",
        "median t",
        "max t",
        "post zero-token time",
    ]);
    for loss in [0.0f64, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut times = Vec::new();
        let mut post_zero_total = 0u64;
        let mut converged = 0u32;
        for seed in 0..seeds {
            let own = random_config::random_ssr_config(params, 1000 + seed);
            let nodes = faults::ssr_nodes_with_random_caches(params, &own, 2000 + seed);
            let cfg = SimConfig { loss, ..standard_sim_config(seed) };
            let mut sim = CstSim::with_nodes(algo, nodes, cfg).expect("valid nodes");
            if let Some(t) = sim.run_until_stably_legitimate(t_max, stable_window) {
                converged += 1;
                times.push(t);
                // After stabilization: verify the graceful-handover regime.
                let t0 = sim.now();
                sim.run_until(t0 + 20_000);
                let s = sim.timeline().summary(t0).expect("window");
                post_zero_total += s.zero_privileged_time;
            }
        }
        assert_eq!(converged as u64, seeds, "loss {loss}: all runs must stabilize");
        assert_eq!(post_zero_total, 0, "loss {loss}: post-stabilization gap found");
        let s = summarize(&times).expect("non-empty");
        table.row(vec![
            format!("{loss:.1}"),
            format!("{converged}/{seeds}"),
            format!("{:.0}", s.mean),
            s.median.to_string(),
            s.max.to_string(),
            post_zero_total.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nHigher loss slows stabilization (the periodic retransmission timer\n\
         has to repair more) but never prevents it, and after stabilization\n\
         the zero-token time is identically 0 — Theorem 4."
    );
}
