//! E1 (Lemma 1, Lemma 2, Theorem 1): exhaustive closure check — for every
//! legitimate configuration of every (n, K) in a grid, exactly one process
//! is enabled, token counts are exactly (1 primary, 1 secondary), the
//! privileged count is in 1..=2, and the successor configuration is
//! legitimate. Also verifies |Λ| = 3nK and the 4K states-per-process count.

use ssr_analysis::Table;
use ssr_core::{legitimacy, RingAlgorithm, RingParams, SsrMin};

fn main() {
    println!("E1 — exhaustive closure over legitimate configurations (Lemmas 1–2, Theorem 1)");

    let mut table = Table::new(vec![
        "n",
        "K",
        "|Λ| = 3nK",
        "closure ok",
        "1 enabled",
        "tokens (1,1)",
        "priv 1..=2",
    ]);
    for (n, k) in [(3usize, 4u32), (3, 7), (4, 5), (5, 7), (6, 8), (7, 11), (8, 9), (10, 12)] {
        let params = RingParams::new(n, k).expect("valid parameters");
        let algo = SsrMin::new(params);
        let all = legitimacy::enumerate_legitimate(params);
        assert_eq!(all.len(), 3 * n * k as usize, "|Λ| mismatch");
        let mut closure_ok = 0usize;
        let mut one_enabled = 0usize;
        let mut tokens_ok = 0usize;
        let mut priv_ok = 0usize;
        for cfg in &all {
            let enabled = algo.enabled_processes(cfg);
            if enabled.len() == 1 {
                one_enabled += 1;
            }
            let next = algo.step_process(cfg, enabled[0]).expect("enabled");
            if algo.is_legitimate(&next) {
                closure_ok += 1;
            }
            if algo.primary_count(cfg) == 1 && algo.secondary_count(cfg) == 1 {
                tokens_ok += 1;
            }
            let h = algo.token_holders(cfg).len();
            if (1..=2).contains(&h) {
                priv_ok += 1;
            }
        }
        let total = all.len();
        assert_eq!(closure_ok, total);
        assert_eq!(one_enabled, total);
        assert_eq!(tokens_ok, total);
        assert_eq!(priv_ok, total);
        table.row(vec![
            n.to_string(),
            k.to_string(),
            total.to_string(),
            format!("{closure_ok}/{total}"),
            format!("{one_enabled}/{total}"),
            format!("{tokens_ok}/{total}"),
            format!("{priv_ok}/{total}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nState space per process: 4K (x ∈ 0..K, rts, tra) — Theorem 1(2). All checks exhaustive."
    );
}
