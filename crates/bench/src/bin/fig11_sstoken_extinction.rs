//! Figure 11: token extinction of Dijkstra's SSToken in the message-passing
//! model — while the state message is in transit, no node's local token
//! predicate holds.

use ssr_analysis::Table;
use ssr_bench::{header, standard_sim_config, STANDARD_T_END};
use ssr_core::{RingParams, SsToken};
use ssr_mpnet::CstSim;

fn main() {
    println!("Figure 11 — SSToken (Dijkstra) under CST: the token vanishes in transit");

    let mut table = Table::new(vec![
        "n",
        "seed",
        "zero-token time",
        "zero intervals",
        "window",
        "zero %",
        "min priv",
        "max priv",
    ]);
    for n in [5usize, 8, 13, 21] {
        let params = RingParams::minimal(n).expect("valid size");
        let algo = SsToken::new(params);
        for seed in 0..3u64 {
            let mut sim = CstSim::new(algo, algo.uniform_config(0), standard_sim_config(seed))
                .expect("valid config");
            sim.run_until(STANDARD_T_END);
            let s = sim.timeline().summary(0).expect("non-empty window");
            table.row(vec![
                n.to_string(),
                seed.to_string(),
                s.zero_privileged_time.to_string(),
                s.zero_privileged_intervals.to_string(),
                s.window.to_string(),
                format!("{:.1}", 100.0 * s.zero_privileged_time as f64 / s.window as f64),
                s.min_privileged.to_string(),
                s.max_privileged.to_string(),
            ]);
        }
    }
    header("results");
    print!("{}", table.render());
    println!(
        "\nEvery run spends a large fraction of its time with ZERO tokens —\n\
         mutual exclusion survives the transform, mutual inclusion does not.\n\
         This is the defect that motivates SSRmin (compare fig13_gap_tolerance)."
    );
}
