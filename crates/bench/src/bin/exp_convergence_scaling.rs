//! E4 (Theorem 2): convergence time vs ring size under every daemon family.
//! The paper proves O(n²) under the unfair distributed daemon; the table
//! reports mean/max stabilization steps, the ratio to n², and a fitted
//! log-log growth exponent per daemon.

use ssr_analysis::{loglog_slope, ssrmin_convergence_sweep, DaemonKind, StartKind, Table};

fn main() {
    println!("E4 — Theorem 2: convergence steps vs n (random initial configurations)");
    let sizes = [4usize, 6, 8, 12, 16, 24, 32];
    let seeds = 20u64;

    for daemon in DaemonKind::ALL {
        let pts = ssrmin_convergence_sweep(&sizes, seeds, daemon, StartKind::Random);
        let mut table = Table::new(vec![
            "n",
            "mean steps",
            "median",
            "p95",
            "max",
            "mean/n²",
            "mean rounds",
            "mean C-moves",
        ]);
        for p in &pts {
            let n2 = (p.n * p.n) as f64;
            table.row(vec![
                p.n.to_string(),
                format!("{:.1}", p.steps.mean),
                p.steps.median.to_string(),
                p.steps.p95.to_string(),
                p.steps.max.to_string(),
                format!("{:.3}", p.steps.mean / n2),
                format!("{:.1}", p.rounds.mean),
                format!("{:.1}", p.dijkstra_moves.mean),
            ]);
        }
        let series: Vec<(f64, f64)> =
            pts.iter().map(|p| (p.n as f64, p.steps.mean.max(1.0))).collect();
        let (slope, coef) = loglog_slope(&series).expect("fit");
        println!("\n-- daemon: {} --", daemon.label());
        print!("{}", table.render());
        println!("fitted growth: steps ≈ {coef:.2} · n^{slope:.2}  (Theorem 2 bound: exponent 2)");
    }

    println!("\n— corrupted starts (1 transient fault) for comparison —");
    let pts =
        ssrmin_convergence_sweep(&sizes, seeds, DaemonKind::CentralRandom, StartKind::Corrupted(1));
    let mut table = Table::new(vec!["n", "mean steps", "max"]);
    for p in &pts {
        table.row(vec![p.n.to_string(), format!("{:.1}", p.steps.mean), p.steps.max.to_string()]);
    }
    print!("{}", table.render());
    println!("Single-fault recovery is near-linear — far below the worst-case O(n²).");
}
