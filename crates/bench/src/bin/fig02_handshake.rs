//! Figure 2: the rts/tra handshake between `P_i` (token holder) and
//! `P_{i+1}` — the three abstract actions α₁, β, α₂ in order.

use ssr_core::{RingAlgorithm, RingParams, SsrMin};
use ssr_daemon::daemons::CentralFirst;
use ssr_daemon::Engine;

fn main() {
    let params = RingParams::new(5, 7).expect("valid parameters");
    let algo = SsrMin::new(params);
    let mut engine = Engine::new(algo, algo.legitimate_anchor(0)).expect("valid config");
    let mut daemon = CentralFirst;

    println!("Figure 2 — handshake between P0 and P1 (one handover cycle)\n");
    println!(
        "{:>4}  {:<10} {:<10}  {:<8} {:<8}  action",
        "Step", "P0 state", "P1 state", "P0 tok", "P1 tok"
    );
    let actions = [
        "α₁: P0 sets rts=1 (ready to send secondary)  [Rule 1]",
        "β : P1 sees rts=1, sets tra=1 (receives S)   [Rule 3]",
        "α₂: P0 sees tra=1, moves counter (sends P)   [Rule 2]",
    ];
    for (step, action) in actions.iter().enumerate() {
        let c = engine.config();
        println!(
            "{:>4}  {:<10} {:<10}  {:<8} {:<8}  {}",
            step + 1,
            c[0].to_string(),
            c[1].to_string(),
            engine.algorithm().tokens_in(c, 0).to_string(),
            engine.algorithm().tokens_in(c, 1).to_string(),
            action
        );
        engine.step(&mut daemon).expect("no deadlock");
    }
    let c = engine.config();
    println!(
        "{:>4}  {:<10} {:<10}  {:<8} {:<8}  both tokens now at P1",
        4,
        c[0].to_string(),
        c[1].to_string(),
        engine.algorithm().tokens_in(c, 0).to_string(),
        engine.algorithm().tokens_in(c, 1).to_string(),
    );
    println!(
        "\nAt no point in the handshake is the privileged set empty — the\n\
         secondary token's condition keeps it at P0 until P1 acknowledges."
    );
}
