//! Figure 3: for each ⟨rts_i.tra_i⟩ flag pair and each value of `G_i`,
//! which rules can possibly be enabled — computed by exhaustive enumeration
//! of neighbour flag combinations, not transcribed from the paper.

use ssr_analysis::Table;
use ssr_core::{RingParams, SsrMin};

fn main() {
    let algo = SsrMin::new(RingParams::new(5, 7).expect("valid parameters"));
    let mut table = Table::new(vec!["⟨rts.tra⟩", "G_i true", "G_i false"]);
    for (r, t) in [(0u8, 0u8), (0, 1), (1, 0), (1, 1)] {
        let fmt = |rules: Vec<ssr_core::SsrRule>| {
            if rules.is_empty() {
                "—".to_string()
            } else {
                rules.iter().map(|x| x.number().to_string()).collect::<Vec<_>>().join(", ")
            }
        };
        table.row(vec![
            format!("{r}.{t}"),
            fmt(algo.possible_rules((r, t), true)),
            fmt(algo.possible_rules((r, t), false)),
        ]);
    }
    println!("Figure 3 — possible rules for each ⟨rts_i.tra_i⟩ value\n");
    print!("{}", table.render());
    println!("\n(Enumerated over all 16 neighbour flag combinations per cell.)");
}
