//! E6 (Section 1 application): the camera network on the *threaded* runtime
//! — continuous observation, handover counts and duty cycles vs network
//! size, with the Dijkstra baseline's blind spots for contrast.

use std::time::Duration;

use ssr_analysis::Table;
use ssr_runtime::camera::{dijkstra_camera_observe, CameraNetwork};
use ssr_runtime::RuntimeConfig;

fn main() {
    println!("E6 — camera network on the threaded runtime (800 ms per run, 5% loss)");
    let cfg = RuntimeConfig {
        tick: Duration::from_millis(3),
        exec_delay: Duration::from_millis(2),
        loss: 0.05,
        seed: 11,
        suspicion: Duration::ZERO,
    };
    let window = Duration::from_millis(800);
    let warmup = Duration::from_millis(100);

    let mut table = Table::new(vec![
        "n",
        "algorithm",
        "uncovered",
        "gaps",
        "longest gap",
        "activations",
        "active range",
        "mean duty",
    ]);
    for n in [4usize, 6, 8, 12] {
        let net = CameraNetwork::new(n).expect("valid size").with_config(cfg);
        let r = net.observe(window, warmup).expect("runs");
        assert!(r.continuous(), "n={n}: SSRmin coverage must be continuous");
        table.row(vec![
            n.to_string(),
            "SSRmin".to_string(),
            format!("{:?}", r.coverage.uncovered),
            r.coverage.gaps.to_string(),
            format!("{:?}", r.coverage.longest_gap),
            r.coverage.activations.to_string(),
            format!("{}..={}", r.coverage.min_active, r.coverage.max_active),
            format!("{:.3}", r.mean_duty_cycle()),
        ]);

        let b = dijkstra_camera_observe(n, cfg, window, warmup).expect("baseline runs");
        table.row(vec![
            n.to_string(),
            "SSToken".to_string(),
            format!("{:?}", b.uncovered),
            b.gaps.to_string(),
            format!("{:?}", b.longest_gap),
            b.activations.to_string(),
            format!("{}..={}", b.min_active, b.max_active),
            format!("{:.3}", b.duty_cycle.iter().sum::<f64>() / b.duty_cycle.len().max(1) as f64),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nSSRmin: zero uncovered time at every size; duty cycle ≈ between 1/n\n\
         and 2/n, so energy use per camera falls as the network grows.\n\
         SSToken: blind spots whenever the token is in flight."
    );
}
