//! E8 (extension; the conclusion's superstabilization direction): exhaustive
//! single-transient-fault analysis. Corrupt one process of every legitimate
//! configuration to every possible state and measure: recovery time, the
//! privileged-count excursion, and whether mutual inclusion (≥ 1 privileged)
//! ever breaks during recovery — the de-facto passage predicate.

use ssr_analysis::{single_fault_sweep, DaemonKind, Table};
use ssr_core::RingParams;

fn main() {
    println!("E8 — single-fault recovery (superstabilization-style passage analysis)");
    let mut table = Table::new(vec![
        "n",
        "K",
        "daemon",
        "cases",
        "absorbed",
        "max rec steps",
        "mean rec steps",
        "priv range",
        "inclusion held",
    ]);
    let sweeps = [
        (4usize, 5u32, DaemonKind::CentralFirst, 1usize),
        (5, 7, DaemonKind::CentralFirst, 1),
        (5, 7, DaemonKind::Synchronous, 1),
        (6, 8, DaemonKind::CentralRandom, 3),
        (8, 10, DaemonKind::CentralRandom, 13),
        (8, 10, DaemonKind::DelayDijkstra, 13),
        (12, 14, DaemonKind::DistributedRandom(0.5), 37),
    ];
    for (n, k, daemon, stride) in sweeps {
        let params = RingParams::new(n, k).expect("valid parameters");
        let r = single_fault_sweep(params, daemon, stride, 1);
        assert!(r.inclusion_never_violated, "passage predicate broken: {r:?}");
        table.row(vec![
            n.to_string(),
            k.to_string(),
            daemon.label(),
            r.cases.to_string(),
            r.still_legitimate.to_string(),
            r.max_recovery_steps.to_string(),
            format!("{:.1}", r.mean_recovery_steps),
            format!("{}..={}", r.min_privileged, r.max_privileged),
            if r.inclusion_never_violated { "yes".into() } else { "NO".to_string() },
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nAfter ANY single fault, at least one process stays privileged at\n\
         every intermediate step (Lemma 3 in action — mutual inclusion is a\n\
         passage predicate for free), recovery is near-linear in n (far below\n\
         the O(n²) worst case), and the privileged-count excursion stays a\n\
         small constant (≤ 6) — the victim plus its immediate neighbourhood."
    );
}
