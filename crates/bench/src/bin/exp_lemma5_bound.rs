//! E3 (Lemma 5): at most 3n consecutive steps can pass without an execution
//! of Rule 2 or Rule 4. Measured against the greedy adversary that tries to
//! stall the Dijkstra counter as long as possible.

use ssr_analysis::{max_w24_free_run, Table};
use ssr_core::{RingParams, SsrMin};
use ssr_daemon::daemons::{CentralRandom, DelayDijkstra, DistributedRandom};
use ssr_daemon::{random_config, Engine};

fn main() {
    println!("E3 — Lemma 5: longest Rule-2/4-free stretch vs the 3n bound");
    let mut table = Table::new(vec![
        "n",
        "bound 3n",
        "delay-adversary max",
        "delay-batch max",
        "random max",
        "distributed max",
    ]);
    for n in [4usize, 6, 8, 12, 16, 24] {
        let params = RingParams::minimal(n).expect("valid size");
        let algo = SsrMin::new(params);
        let bound = 3 * n as u64;
        let mut worst = [0u64; 4];
        for seed in 0..10u64 {
            let cfg = random_config::random_ssr_config(params, seed);
            let runs: [Box<dyn ssr_daemon::Daemon>; 4] = [
                Box::new(DelayDijkstra::seeded(seed)),
                Box::new(DelayDijkstra::seeded_batch(seed)),
                Box::new(CentralRandom::seeded(seed)),
                Box::new(DistributedRandom::seeded(seed, 0.5)),
            ];
            for (slot, mut daemon) in runs.into_iter().enumerate() {
                let mut engine = Engine::new(algo, cfg.clone()).expect("valid config");
                let records = engine.run(daemon.as_mut(), 5_000);
                let longest = max_w24_free_run(&records);
                assert!(
                    longest <= bound,
                    "Lemma 5 violated: {longest} > {bound} (n={n}, seed={seed})"
                );
                worst[slot] = worst[slot].max(longest);
            }
        }
        table.row(vec![
            n.to_string(),
            bound.to_string(),
            worst[0].to_string(),
            worst[1].to_string(),
            worst[2].to_string(),
            worst[3].to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nEven the greedy counter-stalling adversary stays within the proof's\n\
         3n bound, and its stalls grow linearly with n as Lemma 5 predicts."
    );
}
