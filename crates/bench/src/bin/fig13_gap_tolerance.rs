//! Figure 13 / Theorem 3: SSRmin in the message-passing model — the number
//! of privileged nodes stays in 1..=2 at every instant, across ring sizes,
//! delays and loss rates (graceful handover / model gap tolerance).

use ssr_analysis::Table;
use ssr_bench::{header, standard_sim_config, STANDARD_T_END};
use ssr_core::{RingParams, SsrMin};
use ssr_mpnet::{CstSim, SimConfig};

fn main() {
    println!("Figure 13 — SSRmin under CST: graceful handover");

    let mut table = Table::new(vec![
        "n",
        "loss",
        "seed",
        "zero-token time",
        "min priv",
        "max priv",
        "rules",
        "transmissions",
    ]);
    let mut worst_zero_lossfree = 0u64;
    let mut worst_zero_lossy_fraction = 0.0f64;
    for n in [3usize, 5, 8, 13, 21, 34] {
        let params = RingParams::minimal(n).expect("valid size");
        let algo = SsrMin::new(params);
        for loss in [0.0f64, 0.15, 0.30] {
            for seed in 0..3u64 {
                let cfg = SimConfig { loss, ..standard_sim_config(seed) };
                let mut sim =
                    CstSim::new(algo, algo.legitimate_anchor(0), cfg).expect("valid config");
                sim.run_until(STANDARD_T_END);
                let s = sim.timeline().summary(0).expect("non-empty window");
                if loss == 0.0 {
                    worst_zero_lossfree = worst_zero_lossfree.max(s.zero_privileged_time);
                } else {
                    worst_zero_lossy_fraction = worst_zero_lossy_fraction
                        .max(s.zero_privileged_time as f64 / s.window as f64);
                }
                table.row(vec![
                    n.to_string(),
                    format!("{loss:.2}"),
                    seed.to_string(),
                    s.zero_privileged_time.to_string(),
                    s.min_privileged.to_string(),
                    s.max_privileged.to_string(),
                    sim.stats().rules_executed.to_string(),
                    sim.stats().transmissions.to_string(),
                ]);
            }
        }
    }
    header("results");
    print!("{}", table.render());
    println!(
        "\nWorst zero-privileged time, loss-free runs: {worst_zero_lossfree} \
         (Theorem 3 invariant)"
    );
    assert_eq!(worst_zero_lossfree, 0, "Theorem 3 violated!");
    println!("Worst zero-privileged fraction, lossy runs: {:.5}", worst_zero_lossy_fraction);
    assert!(
        worst_zero_lossy_fraction < 0.005,
        "lossy gaps must stay negligible (Theorem 4 regime)"
    );
    println!(
        "\nLoss-free: never an instant without a privileged node, never more\n\
         than two (the (1,2)-critical-section bound). Under message loss a\n\
         long streak of consecutive losses can leave a *stale cache* (the\n\
         paper's 'bad incoherence' — a transient fault); that may trigger a\n\
         Rule-4/5 self-repair costing a sub-permille blip, after which the\n\
         Theorem 4 regime resumes. Compare with SSToken's ~72% (fig11)."
    );
}
