//! Figure 12: two *independent* instances of Dijkstra's ring, executed
//! concurrently in the message-passing model, still reach instants with no
//! token anywhere — both tokens can be in flight at once.

use ssr_analysis::Table;
use ssr_bench::{header, standard_sim_config, STANDARD_T_END};
use ssr_core::{DualSsToken, RingParams};
use ssr_mpnet::CstSim;

fn main() {
    println!("Figure 12 — 2 × SSToken (independent instances) under CST");

    let mut table =
        Table::new(vec!["n", "seed", "zero-token time", "zero intervals", "zero %", "max priv"]);
    for n in [5usize, 8, 13] {
        let params = RingParams::minimal(n).expect("valid size");
        let algo = DualSsToken::new(params);
        for seed in 0..3u64 {
            // Start the two tokens apart (positions 0 and n/2).
            let initial = algo.config_with_tokens_at(0, n / 2, 0);
            let mut sim =
                CstSim::new(algo, initial, standard_sim_config(seed)).expect("valid config");
            sim.run_until(STANDARD_T_END);
            let s = sim.timeline().summary(0).expect("non-empty window");
            table.row(vec![
                n.to_string(),
                seed.to_string(),
                s.zero_privileged_time.to_string(),
                s.zero_privileged_intervals.to_string(),
                format!("{:.1}", 100.0 * s.zero_privileged_time as f64 / s.window as f64),
                s.max_privileged.to_string(),
            ]);
        }
    }
    header("results");
    print!("{}", table.render());
    println!(
        "\nDoubling the tokens shrinks but does not eliminate the zero-token\n\
         time: whenever both tokens are in transit simultaneously the network\n\
         is unobserved. Uncoordinated redundancy is not graceful handover."
    );
}
