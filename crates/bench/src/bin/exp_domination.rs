//! F5–F10 (Lemma 8): empirical domination-graph construction. Each
//! Rule-1/3/5 event is charged to the earliest subsequent Rule-2/4 event at
//! `P_i`, `P_{i-1}` or `P_{i-2}`; the proof bounds the charge multiplicity
//! by L = 9 and the same-process delay by M = 2.

use ssr_analysis::{build_domination, extract_events, max_w24_free_run, Table};
use ssr_core::{RingParams, SsrMin};
use ssr_daemon::daemons::{CentralRandom, DelayDijkstra, DistributedRandom, Synchronous};
use ssr_daemon::{random_config, Engine};

fn main() {
    println!("F5–F10 / Lemma 8 — domination graph H = (W135, W24, F) on real executions");
    let mut table = Table::new(vec![
        "n",
        "daemon",
        "|W135|",
        "|W24|",
        "ratio",
        "max L (≤9)",
        "max M (≤2)",
        "undominated",
        "max W24-free (≤3n)",
    ]);
    let mut worst_l = 0usize;
    let mut worst_m = 0usize;
    for n in [5usize, 8, 13, 21, 32] {
        let params = RingParams::minimal(n).expect("valid size");
        let algo = SsrMin::new(params);
        let daemons: Vec<(&str, Box<dyn ssr_daemon::Daemon>)> = vec![
            ("central-random", Box::new(CentralRandom::seeded(n as u64))),
            ("synchronous", Box::new(Synchronous)),
            ("distributed(0.4)", Box::new(DistributedRandom::seeded(n as u64, 0.4))),
            ("delay-dijkstra", Box::new(DelayDijkstra::seeded(n as u64))),
        ];
        for (label, mut daemon) in daemons {
            let cfg = random_config::random_ssr_config(params, 7 + n as u64);
            let mut engine = Engine::new(algo, cfg).expect("valid config");
            let trace = engine.run_traced(daemon.as_mut(), 8_000);
            let events = extract_events(trace.records());
            let g = build_domination(&events, n);
            let free = max_w24_free_run(trace.records());
            assert!(g.max_in_degree <= 9, "L bound violated: {}", g.max_in_degree);
            assert!(g.max_delay <= 2, "M bound violated: {}", g.max_delay);
            assert!(free <= 3 * n as u64, "Lemma 5 bound violated");
            worst_l = worst_l.max(g.max_in_degree);
            worst_m = worst_m.max(g.max_delay);
            table.row(vec![
                n.to_string(),
                label.to_string(),
                g.w135.len().to_string(),
                g.w24.len().to_string(),
                format!("{:.2}", g.event_ratio()),
                g.max_in_degree.to_string(),
                g.max_delay.to_string(),
                g.undominated.to_string(),
                free.to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\nWorst observed L = {worst_l} (proof bound 9), worst M = {worst_m} (proof bound 2).\n\
         The |W135|/|W24| ratio stays a small constant: Rule-1/3/5 work is\n\
         charged to counter moves, which is why convergence is O(n²)."
    );
}
