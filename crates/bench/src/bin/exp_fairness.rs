//! E11 (liveness quantification): fairness of the token rotation. Mutual
//! inclusion bounds *how many* nodes are privileged; this experiment bounds
//! *how long any node waits* for its next turn — the "every camera gets to
//! rest, every camera gets duty" property — and feeds the measured duty
//! cycles into the energy model of the paper's motivating scenario.

use ssr_analysis::Table;
use ssr_bench::{standard_sim_config, STANDARD_T_END};
use ssr_core::{RingParams, SsrMin};
use ssr_mpnet::{per_node_max_gap, CstSim};
use ssr_runtime::{estimate_energy, min_sustainable_ring, PowerProfile};

fn main() {
    println!("E11 — fairness of rotation + the energy model (message-passing runs)");

    let mut table = Table::new(vec![
        "n",
        "expected lap (ticks)",
        "max wait (ticks)",
        "max wait / lap",
        "duty min..max",
    ]);
    for n in [4usize, 6, 9, 13, 21] {
        let params = RingParams::minimal(n).expect("valid size");
        let algo = SsrMin::new(params);
        let mut sim = CstSim::new(algo, algo.legitimate_anchor(0), standard_sim_config(1))
            .expect("valid config");
        sim.run_until(STANDARD_T_END);
        let samples = sim.timeline().samples();
        let gaps = per_node_max_gap(samples, STANDARD_T_END, n);
        let max_wait = gaps.iter().copied().max().unwrap_or(0);

        // Each handover is ~3 rule firings driven by ~2 message flights +
        // dwell; measure the realized lap directly from rule throughput.
        let rules = sim.stats().rules_executed;
        let laps = rules as f64 / (3.0 * n as f64);
        let lap_ticks = STANDARD_T_END as f64 / laps.max(1e-9);

        // Duty cycles: fraction of time each node's mask bit is set.
        let mut active: Vec<u64> = vec![0; n];
        for (idx, s) in samples.iter().enumerate() {
            let next = samples.get(idx + 1).map(|x| x.at).unwrap_or(STANDARD_T_END);
            let dur = next.saturating_sub(s.at);
            for (i, a) in active.iter_mut().enumerate() {
                if s.mask & (1 << i) != 0 {
                    *a += dur;
                }
            }
        }
        let duty: Vec<f64> = active.iter().map(|&a| a as f64 / STANDARD_T_END as f64).collect();
        let dmin = duty.iter().cloned().fold(f64::INFINITY, f64::min);
        let dmax = duty.iter().cloned().fold(0.0f64, f64::max);

        assert!(
            (max_wait as f64) < 2.5 * lap_ticks,
            "n={n}: a node waited {max_wait} ticks, over 2.5 laps"
        );
        table.row(vec![
            n.to_string(),
            format!("{lap_ticks:.0}"),
            max_wait.to_string(),
            format!("{:.2}", max_wait as f64 / lap_ticks),
            format!("{dmin:.3}..{dmax:.3}"),
        ]);
    }
    print!("{}", table.render());

    println!("\n— energy model (900 mW active / 45 mW idle / 120 mW harvest) —");
    let profile = PowerProfile::typical_camera();
    println!("minimum sustainable ring size: {:?} nodes", min_sustainable_ring(profile));
    // Synthetic coverage with ideal 1.5/n duty sharing for a few sizes.
    let mut etable = Table::new(vec!["n", "mean duty", "worst net mW", "sustainable"]);
    for n in [6usize, 12, 23, 32] {
        let duty = vec![1.5 / n as f64; n];
        let cov = ssr_runtime::CoverageReport {
            window: std::time::Duration::from_secs(3600),
            uncovered: std::time::Duration::ZERO,
            longest_gap: std::time::Duration::ZERO,
            gaps: 0,
            min_active: 1,
            max_active: 2,
            activations: 0,
            duty_cycle: duty,
        };
        let e = estimate_energy(&cov, profile, 10_000.0);
        etable.row(vec![
            n.to_string(),
            format!("{:.3}", 1.5 / n as f64),
            format!("{:+.1}", e.worst_net_mw),
            e.sustainable.to_string(),
        ]);
    }
    print!("{}", etable.render());
    println!(
        "\nEvery node is privileged at least once per ~lap (max wait stays\n\
         below 2.5 laps — no starvation), duty is shared within a factor of\n\
         ~2 across nodes, and the energy model shows the paper's energy\n\
         argument quantitatively: above the break-even ring size the\n\
         deployment harvests more than it burns and runs forever."
    );
}
