//! E7 (Section 3 requirement (2)): SSRmin keeps the number of privileged
//! nodes minimal (≤ 2) while guaranteeing ≥ 1 in the message-passing model;
//! m-token rings spend more simultaneous privilege (resource consumption)
//! and *still* hit zero-token instants.

use ssr_analysis::Table;
use ssr_bench::{standard_sim_config, STANDARD_T_END};
use ssr_core::{MultiSsToken, RingParams, SsrMin};
use ssr_mpnet::CstSim;

fn main() {
    println!("E7 — token economy: SSRmin vs m-token rings under CST (n = 9)");
    let params = RingParams::new(9, 11).expect("valid parameters");
    let mut table = Table::new(vec![
        "algorithm",
        "zero% early",
        "zero% late",
        "min priv",
        "max priv",
        "guarantee",
    ]);
    let early_end = 10_000u64;

    // SSRmin.
    let ssr = SsrMin::new(params);
    let mut sim =
        CstSim::new(ssr, ssr.legitimate_anchor(0), standard_sim_config(1)).expect("valid config");
    sim.run_until(early_end);
    let early = sim.timeline().summary(0).expect("window");
    sim.run_until(STANDARD_T_END);
    let late = sim.timeline().summary(STANDARD_T_END - 10_000).expect("window");
    let s = sim.timeline().summary(0).expect("window");
    table.row(vec![
        "SSRmin".to_string(),
        format!("{:.1}", 100.0 * early.zero_privileged_time as f64 / early.window as f64),
        format!("{:.1}", 100.0 * late.zero_privileged_time as f64 / late.window as f64),
        s.min_privileged.to_string(),
        s.max_privileged.to_string(),
        "1..=2 always".to_string(),
    ]);
    assert_eq!(s.zero_privileged_time, 0);

    // m-token rings, m = 2, 3, 4 — tokens start spread evenly around the
    // ring (the best case for the baseline).
    for m in [2usize, 3, 4] {
        let multi = MultiSsToken::new(params, m).expect("valid m");
        let n = params.n();
        let positions: Vec<usize> = (0..m).map(|j| j * n / m).collect();
        let initial = multi.config_with_tokens_at(&positions, 0);
        let mut sim = CstSim::new(multi, initial, standard_sim_config(1)).expect("valid config");
        // Track when the instance tokens first coalesce onto one node
        // (ground truth, probed every 50 ticks).
        let mut coalesced_at: Option<u64> = None;
        let mut probe = 0u64;
        while probe < early_end && coalesced_at.is_none() {
            probe += 50;
            sim.run_until(probe);
            let g = sim.ground_config();
            let holders: Vec<usize> = (0..m)
                .map(|j| {
                    (0..n)
                        .find(|&i| {
                            let pred = if i == 0 { n - 1 } else { i - 1 };
                            multi.instance_guard(j, i, &g[i], &g[pred])
                        })
                        .unwrap_or(0)
                })
                .collect();
            if holders.windows(2).all(|w| w[0] == w[1]) {
                coalesced_at = Some(probe);
            }
        }
        let early = sim.timeline().summary(0).expect("window");
        sim.run_until(STANDARD_T_END);
        let late = sim.timeline().summary(STANDARD_T_END - 10_000).expect("window");
        let s = sim.timeline().summary(0).expect("window");
        table.row(vec![
            format!(
                "{m}-token ring (merge@{})",
                coalesced_at.map(|t| t.to_string()).unwrap_or_else(|| ">10k".into())
            ),
            format!("{:.1}", 100.0 * early.zero_privileged_time as f64 / early.window as f64),
            format!("{:.1}", 100.0 * late.zero_privileged_time as f64 / late.window as f64),
            s.min_privileged.to_string(),
            s.max_privileged.to_string(),
            "none (can hit 0)".to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nWhile the m tokens are still spread out (early window) the zero-token\n\
         fraction drops with m — but never to zero, and the ring burns up to m\n\
         simultaneous privileges. Worse, uncoordinated identical instances\n\
         COALESCE over time (once two tokens meet they move in lock-step\n\
         forever), so by the late window the m-token ring behaves like a\n\
         single-token ring. SSRmin's handshake is what keeps its two tokens\n\
         exactly one hop apart: guaranteed ≥1, at most 2 — requirement (2) of §3."
    );
}
