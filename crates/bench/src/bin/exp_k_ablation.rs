//! E9 (ablation): the modulus K. The paper requires K > n; this ablation
//! measures what K buys — convergence time and the state space (4K per
//! process, Theorem 1) as K grows from the minimum n+1 to 8n.

use ssr_analysis::{summarize, Table};
use ssr_core::{RingParams, SsrMin};
use ssr_daemon::daemons::CentralRandom;
use ssr_daemon::{measure_convergence, random_config};

fn main() {
    println!("E9 — K ablation (n = 8, random initial configurations, central-random daemon)");
    let n = 8usize;
    let seeds = 40u64;
    let mut table =
        Table::new(vec!["K", "states/process (4K)", "mean steps", "median", "p95", "max"]);
    for k in [9u32, 12, 16, 24, 32, 64] {
        let params = RingParams::new(n, k).expect("valid parameters");
        let algo = SsrMin::new(params);
        let budget = 100 * (n as u64) * (n as u64) + 1000;
        let mut steps = Vec::new();
        for seed in 0..seeds {
            let cfg = random_config::random_ssr_config(params, seed);
            let mut daemon = CentralRandom::seeded(seed);
            let r = measure_convergence(algo, cfg, &mut daemon, budget, 0).expect("must converge");
            steps.push(r.steps);
        }
        let s = summarize(&steps).expect("non-empty");
        table.row(vec![
            k.to_string(),
            (4 * k).to_string(),
            format!("{:.1}", s.mean),
            s.median.to_string(),
            s.p95.to_string(),
            s.max.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nConvergence time is essentially flat in K: the modulus only has to\n\
         exceed n for the bottom process to reach a fresh value, and beyond\n\
         that extra values buy nothing while the state space (4K per process)\n\
         grows linearly. K = n + 1 is the memory-optimal choice; correctness\n\
         is unaffected throughout."
    );
}
