//! E12 (transform ablation, §1.3's "small overhead at runtime" claim):
//! CST (Herman [5], what the paper adopts) vs NST (a Mizuno–Kakugawa
//! [16]-style neighbourhood-synchronized transform that emulates composite
//! atomicity exactly). Measures messages per move, circulation throughput,
//! and — the punchline — zero-token time: exact atomicity does NOT buy
//! mutual inclusion, while SSRmin's algorithmic fix works on the cheap
//! transform.

use ssr_analysis::Table;
use ssr_core::{RingParams, SsToken, SsrMin};
use ssr_mpnet::{CstSim, DelayModel, NstConfig, NstSim, SimConfig};

const T_END: u64 = 60_000;

fn cst_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        delay: DelayModel::Fixed(5),
        loss: 0.0,
        timer_interval: 40,
        send_on_receipt: true,
        exec_delay: 0,
        burst: None,
    }
}

fn nst_cfg(seed: u64) -> NstConfig {
    NstConfig {
        seed,
        delay: DelayModel::Fixed(5),
        loss: 0.0,
        timer_interval: 40,
        request_timeout: 60,
    }
}

fn main() {
    println!("E12 — transform ablation: CST (cheap, paper's choice) vs NST (exact atomicity)");
    let params = RingParams::new(7, 9).expect("valid parameters");
    let mut table = Table::new(vec![
        "algorithm + transform",
        "moves",
        "msgs/move",
        "zero-token %",
        "stale moves",
    ]);

    // SSToken + CST.
    {
        let a = SsToken::new(params);
        let mut sim = CstSim::new(a, a.uniform_config(0), cst_cfg(1)).expect("valid");
        sim.run_until(T_END);
        let st = sim.stats();
        let s = sim.timeline().summary(0).expect("window");
        table.row(vec![
            "SSToken + CST".to_string(),
            st.rules_executed.to_string(),
            format!("{:.1}", st.transmissions as f64 / st.rules_executed.max(1) as f64),
            format!("{:.1}", 100.0 * s.zero_privileged_time as f64 / s.window as f64),
            "n/a (gossip)".to_string(),
        ]);
    }
    // SSToken + NST.
    {
        let a = SsToken::new(params);
        let mut sim = NstSim::new(a, a.uniform_config(0), nst_cfg(1)).expect("valid");
        sim.run_until(T_END);
        let st = sim.stats();
        let msgs = st.state_msgs + st.req_msgs + st.grant_msgs + st.release_msgs;
        let s = sim.timeline().summary(0).expect("window");
        table.row(vec![
            "SSToken + NST".to_string(),
            st.moves.to_string(),
            format!("{:.1}", msgs as f64 / st.moves.max(1) as f64),
            format!("{:.1}", 100.0 * s.zero_privileged_time as f64 / s.window as f64),
            st.stale_moves.to_string(),
        ]);
    }
    // SSRmin + CST.
    {
        let a = SsrMin::new(params);
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), cst_cfg(1)).expect("valid");
        sim.run_until(T_END);
        let st = sim.stats();
        let s = sim.timeline().summary(0).expect("window");
        table.row(vec![
            "SSRmin + CST  ← the paper".to_string(),
            st.rules_executed.to_string(),
            format!("{:.1}", st.transmissions as f64 / st.rules_executed.max(1) as f64),
            format!("{:.1}", 100.0 * s.zero_privileged_time as f64 / s.window as f64),
            "n/a (gossip)".to_string(),
        ]);
    }
    // SSRmin + NST.
    {
        let a = SsrMin::new(params);
        let mut sim = NstSim::new(a, a.legitimate_anchor(0), nst_cfg(1)).expect("valid");
        sim.run_until(T_END);
        let st = sim.stats();
        let msgs = st.state_msgs + st.req_msgs + st.grant_msgs + st.release_msgs;
        let s = sim.timeline().summary(0).expect("window");
        table.row(vec![
            "SSRmin + NST".to_string(),
            st.moves.to_string(),
            format!("{:.1}", msgs as f64 / st.moves.max(1) as f64),
            format!("{:.1}", 100.0 * s.zero_privileged_time as f64 / s.window as f64),
            st.stale_moves.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nNST buys exact composite atomicity (0 stale moves) and, per move,\n\
         even fewer messages than CST's eager gossip — but at roughly HALF\n\
         the circulation throughput (every move waits a request/grant round\n\
         trip), and it STILL leaves SSToken with large zero-token time: the\n\
         model gap is in *observing* tokens, not in execution order, so no\n\
         transform can fix it. SSRmin closes the gap algorithmically, which\n\
         is why the paper can use the cheap, low-latency gossip transform\n\
         (§1.3's 'small overhead at runtime')."
    );
}
