//! Figure 4: the paper's 16-step execution example with five processes,
//! regenerated mechanically and printed in the paper's own notation.

use ssr_core::{RingParams, SsrMin};
use ssr_daemon::daemons::CentralFirst;
use ssr_daemon::{trace, Engine};

fn main() {
    let params = RingParams::new(5, 7).expect("valid parameters");
    let algo = SsrMin::new(params);
    // The paper's Figure 4 starts at (3.0.1, 3.0.0, 3.0.0, 3.0.0, 3.0.0).
    let mut engine = Engine::new(algo, algo.legitimate_anchor(3)).expect("valid config");
    let mut daemon = CentralFirst;
    let t = engine.run_traced(&mut daemon, 15);
    println!("Figure 4 — execution example of SSRmin with five processes");
    println!("(local state x.rts.tra; P/S = token; /g = rule about to fire)\n");
    print!("{}", trace::render_ssrmin_trace(&algo, &t));
    println!("\nRow 16 is the anchor configuration again with x+1 — the cycle repeats.");
}
