//! Figure 1: movement of the two tokens — 'P' (primary) and 'S' (secondary)
//! walk the ring like an inchworm, coinciding at every third step.

use ssr_core::{RingAlgorithm, RingParams, SsrMin};
use ssr_daemon::daemons::CentralFirst;
use ssr_daemon::Engine;

fn main() {
    let params = RingParams::new(5, 7).expect("valid parameters");
    let algo = SsrMin::new(params);
    let mut engine = Engine::new(algo, algo.legitimate_anchor(0)).expect("valid config");
    let mut daemon = CentralFirst;

    println!("Figure 1 — movement of the two tokens (n = 5)");
    println!(
        "{:>4}  {}",
        "Step",
        (0..5).map(|i| format!("{:^4}", format!("P{i}"))).collect::<String>()
    );
    for step in 1..=18 {
        let row: String = (0..5)
            .map(|i| format!("{:^4}", engine.algorithm().tokens_in(engine.config(), i).to_string()))
            .collect();
        println!("{step:>4}  {row}");
        engine.step(&mut daemon).expect("no deadlock");
    }
    println!(
        "\nReading: 'PS' = both tokens at one process; then S hops to the\n\
         successor, then P follows — at least one process is privileged at\n\
         every step and the pair circulates forever."
    );
}
