//! E10 (mechanical verification): explicit-state model checking of SSRmin
//! and Dijkstra's ring over the complete unfair-distributed-daemon
//! transition relation, for every ring small enough to enumerate. Produces
//! the *exact* worst-case stabilization time — a number the paper's O(n²)
//! analysis only bounds.

use ssr_analysis::Table;
use ssr_core::{Dijkstra4, RingParams, SsToken};
use ssr_verify::{space::ssrmin, verify, verify_under, DaemonClass};

fn main() {
    println!("E10 — explicit-state model checking (ALL daemon schedules, ALL configurations)");

    let mut table = Table::new(vec![
        "algorithm",
        "n",
        "K",
        "configs",
        "|Λ|",
        "closure",
        "no deadlock",
        "converges",
        "min priv (all)",
        "exact worst steps",
        "3n(n-1)/2 · 3n", // the proof's coarse budget for scale
    ]);

    let mut histograms: Vec<(usize, u32, Vec<u64>)> = Vec::new();
    for (n, k) in [(3usize, 4u32), (3, 5), (3, 6), (4, 5), (4, 6)] {
        let algo = ssrmin(n, k);
        let r = verify(&algo, 2_000_000).expect("space fits");
        assert!(r.closure_holds && r.deadlock_free && r.converges);
        assert!(r.min_privileged_all >= 1);
        assert_eq!(r.min_privileged_legit, 1);
        assert_eq!(r.max_privileged_legit, 2);
        histograms.push((n, k, r.dist_histogram.clone()));
        let coarse = (3 * n * (n - 1) / 2) * 3 * n;
        table.row(vec![
            "SSRmin".to_string(),
            n.to_string(),
            k.to_string(),
            r.configs.to_string(),
            r.legitimate.to_string(),
            "ok".to_string(),
            "ok".to_string(),
            "ok".to_string(),
            r.min_privileged_all.to_string(),
            r.worst_case_steps.to_string(),
            coarse.to_string(),
        ]);
    }

    for (n, k) in [(3usize, 4u32), (4, 5), (5, 6), (6, 7)] {
        let algo = SsToken::new(RingParams::new(n, k).expect("valid"));
        let r = verify(&algo, 2_000_000).expect("space fits");
        assert!(r.closure_holds && r.deadlock_free && r.converges);
        table.row(vec![
            "SSToken".to_string(),
            n.to_string(),
            k.to_string(),
            r.configs.to_string(),
            r.legitimate.to_string(),
            "ok".to_string(),
            "ok".to_string(),
            "ok".to_string(),
            r.min_privileged_all.to_string(),
            r.worst_case_steps.to_string(),
            "-".to_string(),
        ]);
    }

    // Dijkstra's four-state machine under BOTH daemon classes — Dijkstra
    // stated it for the central daemon; the checker establishes it for the
    // distributed one too (for these sizes).
    for n in [3usize, 5, 8, 10] {
        let algo = Dijkstra4::new(n).expect("valid");
        for (class, label) in [
            (DaemonClass::Central, "4-state (central)"),
            (DaemonClass::Distributed, "4-state (distrib)"),
        ] {
            let r = verify_under(&algo, 3_000_000, class).expect("space fits");
            assert!(r.closure_holds && r.deadlock_free && r.converges);
            table.row(vec![
                label.to_string(),
                n.to_string(),
                "-".to_string(),
                r.configs.to_string(),
                r.legitimate.to_string(),
                "ok".to_string(),
                "ok".to_string(),
                "ok".to_string(),
                r.min_privileged_all.to_string(),
                r.worst_case_steps.to_string(),
                "-".to_string(),
            ]);
        }
    }

    print!("{}", table.render());

    println!("\nWorst-case-distance distribution (SSRmin; share of configurations");
    println!("whose worst schedule needs ≤ d steps):");
    for (n, k, h) in &histograms {
        let total: u64 = h.iter().sum();
        let mut cum = 0u64;
        let mut p50 = 0usize;
        let mut p95 = 0usize;
        for (d, &c) in h.iter().enumerate() {
            cum += c;
            if p50 == 0 && cum * 2 >= total {
                p50 = d;
            }
            if p95 == 0 && cum * 20 >= total * 19 {
                p95 = d;
            }
        }
        println!(
            "  n={n} K={k}: median {p50} steps, p95 {p95}, max {} — a random \
transient fault is healed in ~{p50} steps",
            h.len() - 1
        );
    }

    println!(
        "\nEvery property of Lemmas 1/3/4/6 and Theorem 1 verified over the\n\
         FULL transition relation (every subset choice of the unfair\n\
         distributed daemon at every configuration). 'Exact worst steps' is\n\
         the length of the longest possible illegitimate schedule — the true\n\
         worst-case stabilization time, far below the proof's coarse budget."
    );
}
