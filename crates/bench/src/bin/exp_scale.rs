//! E14 (scalability): SSRmin in the message-passing simulator at large ring
//! sizes. Handover cost is local (three rule firings between neighbours),
//! so the per-node message rate is flat in n and the lap time grows
//! linearly — a deployment can grow without redesign; only the *rotation
//! period* (and thus each node's duty cycle, see E11) changes.

use ssr_analysis::Table;
use ssr_bench::standard_sim_config;
use ssr_core::{RingParams, SsrMin};
use ssr_mpnet::CstSim;

fn main() {
    println!("E14 — scalability of the message-passing simulation");
    let t_end = 60_000u64;
    let mut table = Table::new(vec![
        "n",
        "zero-token time",
        "max priv",
        "rules",
        "laps",
        "lap (ticks)",
        "msgs / node / kilotick",
    ]);
    for n in [8usize, 16, 32, 64, 128, 256] {
        let params = RingParams::minimal(n).expect("valid size");
        let algo = SsrMin::new(params);
        let mut sim = CstSim::new(algo, algo.legitimate_anchor(0), standard_sim_config(1))
            .expect("valid config");
        sim.run_until(t_end);
        let s = sim.timeline().summary(0).expect("window");
        assert_eq!(s.zero_privileged_time, 0, "n={n}: graceful handover at scale");
        assert!(s.max_privileged <= 2);
        let st = sim.stats();
        let laps = st.rules_executed as f64 / (3.0 * n as f64);
        table.row(vec![
            n.to_string(),
            s.zero_privileged_time.to_string(),
            s.max_privileged.to_string(),
            st.rules_executed.to_string(),
            format!("{laps:.1}"),
            format!("{:.0}", t_end as f64 / laps.max(1e-9)),
            format!("{:.1}", st.transmissions as f64 / n as f64 / (t_end as f64 / 1000.0)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nZero-token time stays identically 0 from n = 8 to n = 256; the\n\
         per-node gossip rate is flat (the protocol is strictly local), and\n\
         the lap time grows linearly — the duty cycle falls as 1.5/n, which\n\
         is what makes larger rings *more* energy-sustainable (E11)."
    );
}
