//! E2 (Lemma 4): no deadlock — every configuration has at least one enabled
//! process. Exhaustive for tiny rings, randomized for larger ones; also
//! verifies Lemma 3 (the primary token always exists).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ssr_analysis::Table;
use ssr_core::{RingAlgorithm, RingParams, SsrMin, SsrState};
use ssr_daemon::random_config;

fn main() {
    println!("E2 — no deadlock / primary token existence (Lemmas 3–4)");
    let mut table =
        Table::new(vec!["n", "K", "configs checked", "method", "deadlocks", "no-primary"]);

    // Exhaustive on tiny rings.
    for (n, k) in [(3usize, 4u32), (3, 5), (4, 5)] {
        let params = RingParams::new(n, k).expect("valid parameters");
        let algo = SsrMin::new(params);
        let mut checked = 0u64;
        let mut deadlocks = 0u64;
        let mut no_primary = 0u64;
        for cfg in random_config::exhaustive_ssr_configs(params) {
            checked += 1;
            if algo.is_deadlocked(&cfg) {
                deadlocks += 1;
            }
            if algo.primary_count(&cfg) == 0 {
                no_primary += 1;
            }
        }
        assert_eq!(deadlocks, 0);
        assert_eq!(no_primary, 0);
        table.row(vec![
            n.to_string(),
            k.to_string(),
            checked.to_string(),
            "exhaustive".to_string(),
            deadlocks.to_string(),
            no_primary.to_string(),
        ]);
    }

    // Randomized on larger rings.
    for (n, k) in [(8usize, 10u32), (16, 20), (32, 40), (64, 80)] {
        let params = RingParams::new(n, k).expect("valid parameters");
        let algo = SsrMin::new(params);
        let mut rng = StdRng::seed_from_u64(42);
        let samples = 200_000u64;
        let mut deadlocks = 0u64;
        let mut no_primary = 0u64;
        for _ in 0..samples {
            let cfg: Vec<SsrState> = (0..n)
                .map(|_| {
                    SsrState::new(
                        rng.random_range(0..k),
                        rng.random_range(0..2u8),
                        rng.random_range(0..2u8),
                    )
                })
                .collect();
            if algo.is_deadlocked(&cfg) {
                deadlocks += 1;
            }
            if algo.primary_count(&cfg) == 0 {
                no_primary += 1;
            }
        }
        assert_eq!(deadlocks, 0);
        assert_eq!(no_primary, 0);
        table.row(vec![
            n.to_string(),
            k.to_string(),
            samples.to_string(),
            "random".to_string(),
            deadlocks.to_string(),
            no_primary.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nNo deadlock and no primary-token-free configuration found anywhere.");
}
