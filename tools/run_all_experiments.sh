#!/usr/bin/env bash
# Regenerate every experiment in EXPERIMENTS.md into results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BINS=(
  fig01_token_movement fig02_handshake fig03_rule_map fig04_execution_example
  fig11_sstoken_extinction fig12_dual_sstoken fig13_gap_tolerance
  exp_closure exp_no_deadlock exp_lemma5_bound exp_convergence_scaling
  exp_domination exp_lossy_convergence exp_camera_coverage exp_token_economy
  exp_superstab exp_k_ablation exp_model_check exp_fairness exp_transforms
  exp_adversary exp_scale
)
for b in "${BINS[@]}"; do
  echo "== $b =="
  cargo run --release -q -p ssr-bench --bin "$b" | tee "results/$b.txt"
done
echo "All experiments regenerated under results/."
