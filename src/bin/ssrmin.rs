//! `ssrmin` — the command-line face of the library.
//!
//! ```text
//! ssrmin run        [-n 5] [-k 7] [--steps 20] [--daemon central|sync|random|delay] [--start legit|random|adversarial] [--seed 0]
//! ssrmin simulate   [-n 5] [-k 7] [--ticks 20000] [--algo ssrmin|dijkstra|dual] [--loss 0.0] [--dwell 4] [--seed 0]
//! ssrmin verify     [-n 3] [-k 4] [--algo ssrmin|dijkstra] [--limit 2000000]
//! ssrmin camera     [-n 6] [--ms 1000] [--loss 0.05] [--seed 0]
//! ssrmin cluster    [--nodes 5] [--ms 700] [--loss 0.0] [--seed 0] [--csv]
//! ssrmin soak       [--nodes 5] [--ms 2000] [--crashes 2] [--partitions 1] [--mode mixed] [--seed 0] [--csv]
//! ssrmin adversary  [-n 4] [--budget 4000] | [--ms 3000] [--nodes 5] ...
//! ssrmin converge   [-n 8] [-k 0(=n+1)] [--seeds 20] [--daemon ...]
//! ssrmin transcript [-n 5] [--ticks 3000] [--loss 0.1] [--tail 25]
//! ssrmin serve      [--ctl-addr 127.0.0.1:0] [--tenants 4] [--nodes 5] [--ms 0]
//! ssrmin load       [--tenants 8] [--nodes 5] [--clients 2] [--ms 2000]
//! ssrmin churn      [--nodes 5] [--ms 4000] [--rate 2.0] [--sweep 0.5,2,8] [--loss 0.0]
//! ssrmin fallback   [--nodes 5] [--ms 8000] [--rounds 3] [--step-ms 1] [--seed 0]
//! ssrmin partition  [--nodes 9] [--holes 2] [--ms 8000] [--rounds 2] [--seed 0]
//! ssrmin netem      [-n 5] [--profiles lan,wan,lossy-wan] [--seeds 5] [--faults 3] | [--checkpoint ck.bin] [--transcript-out run.log]
//! ssrmin replay     --from ck.bin [--transcript-out run.log]
//! ssrmin ctl URL …  / ssrmin top URL — clients against a --ctl-addr plane
//! ```
//!
//! Arguments are `--key value` pairs (or `-n`/`-k` shorthands); anything
//! missing takes the default shown above. The parsing helpers live in
//! [`ssrmin::cli`].

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ssrmin::analysis::{privileged_strip, summarize, Table};
use ssrmin::cli::{
    chaos_from_opts, cluster_params, ctl_listener, daemon_kind, get, parse, ring_params,
    start_config, Opts,
};
use ssrmin::core::{CriticalSectionProtocol, DualSsToken, SsToken, SsrMin};
use ssrmin::ctl::{CtlListener, Json};
use ssrmin::daemon::{measure_convergence, random_config, trace, Engine};
use ssrmin::mpnet::{
    cover_time_envelope, ChurnPlan, CstSim, DelayModel, FaultPlan, FaultSchedule, GrantMode,
    SimConfig,
};
use ssrmin::net::{
    audit_trace, convergence_envelope, ChaosConfig, ClusterConfig, FallbackConfig,
    MembershipConfig, MembershipError, RingMembership, SupervisorConfig, WatchdogConfig,
};
use ssrmin::runtime::camera::CameraNetwork;
use ssrmin::runtime::RuntimeConfig;
use ssrmin::serve::{ServeHost, ServePlane, TenantSpec};
use ssrmin::RingAlgorithm;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `ctl` and `top` take positional operands (a URL and command words),
    // which the `--key value` parser rejects by design — route them before
    // it runs.
    let result = match args.first().map(String::as_str) {
        Some("ctl") => cmd_ctl(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        _ => {
            let Some((cmd, opts)) = parse(&args) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            match cmd.as_str() {
                "run" => cmd_run(&opts),
                "simulate" => cmd_simulate(&opts),
                "verify" => cmd_verify(&opts),
                "camera" => cmd_camera(&opts),
                "cluster" => cmd_cluster(&opts),
                "soak" => cmd_soak(&opts),
                "converge" => cmd_converge(&opts),
                "transcript" => cmd_transcript(&opts),
                "adversary" => cmd_adversary(&opts),
                "serve" => cmd_serve(&opts),
                "load" => cmd_load(&opts),
                "churn" => cmd_churn(&opts),
                "fallback" => cmd_fallback(&opts),
                "partition" => cmd_partition(&opts),
                "netem" => cmd_netem(&opts),
                "replay" => cmd_replay(&opts),
                "help" | "--help" | "-h" => {
                    println!("{USAGE}");
                    Ok(())
                }
                other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
            }
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ssrmin — self-stabilizing token circulation with graceful handover

USAGE:
  ssrmin run       [-n N] [-k K] [--steps S] [--daemon central|sync|random|delay]
                   [--start legit|random|adversarial] [--seed SEED]
                     trace an execution in the state-reading model
  ssrmin simulate  [-n N] [-k K] [--ticks T] [--algo ssrmin|dijkstra|dual]
                   [--loss P] [--dwell D] [--seed SEED]
                     run the message-passing (CST) simulator and report token
                     availability (the '!' marks in the strip are instants
                     with zero privileged nodes)
  ssrmin verify    [-n N] [-k K] [--algo ssrmin|dijkstra] [--limit L]
                     exhaustively model-check closure/convergence/no-deadlock
                     over ALL daemon schedules (small rings only)
  ssrmin camera    [-n N] [--ms MS] [--loss P] [--seed SEED]
                     run the live threaded camera network and report coverage
  ssrmin cluster   [--nodes N] [-k K] [--ms MS] [--seed SEED]
                   [--start legit|random|adversarial] [--loss P] [--burst]
                   [--delay-us US] [--dup P] [--reorder P] [--csv]
                   [--netem PROFILE] [--ctl-addr HOST:PORT]
                     spawn N OS threads exchanging CST states over real
                     loopback UDP sockets (with a chaos proxy per link when
                     any fault knob is set) and report convergence time,
                     handover latency and the token-count invariant;
                     --ctl-addr serves /metrics, /status, /top and the
                     POST /chaos and /faults admin endpoints while it runs
  ssrmin soak      [--nodes N] [-k K] [--ms MS] [--seed SEED]
                   [--crashes C] [--partitions P] [--mode amnesia|snapshot|mixed]
                   [--corrupts C] [--freezes F] [--babbles B]
                   [--loss P] [--burst] [--delay-us US] [--dup P] [--reorder P]
                   [--corrupt P] [--truncate P] [--netem PROFILE] [--csv]
                   [--ctl-addr HOST:PORT]
                     run the UDP cluster under a seeded fault schedule —
                     crash/restart with exponential backoff (amnesia or
                     snapshot restore) and link partition windows — and
                     report the recovery time of every fault event
  ssrmin serve     [--ctl-addr HOST:PORT] [--tenants T] [--nodes N] [--ms MS]
                   [--seed SEED] [--tick-ms MS] [--ttl-ms MS]
                     host T independent tenant rings over the shared UDP
                     transport behind one control plane: a runtime tenant
                     registry (POST/DELETE /tenants), a TTL'd token-lease
                     API (POST /tenants/{id}/acquire|release), per-tenant
                     chaos/fault injection, and /metrics with per-tenant
                     labels; --ms 0 (the default) serves until killed, a
                     nonzero --ms exits and fails if any chaos-free tenant
                     violated its (l,k)-CS spec
  ssrmin load      [--tenants T] [--nodes N] [--clients C] [--ms MS]
                   [--seed SEED] [--ttl-ms MS] [--sweep T1,T2,...]
                   [--out FILE]
                     provision T tenants x N nodes in-process, drive
                     acquire/release lease traffic from C clients per
                     tenant over real HTTP, and report ops/sec plus
                     p50/p99/max lease latency per sweep point; writes the
                     scaling curve to FILE (default BENCH_serve.json) and
                     fails if any tenant violated its CS spec
  ssrmin churn     [--nodes N] [-k K] [--ms MS] [--rate R] [--sweep R1,R2,...]
                   [--min-n N] [--max-n N] [--loss P] [--tick-ms MS]
                   [--seed SEED] [--out FILE]
                     live join/leave soak: run a UDP ring whose membership
                     churns under a seeded Poisson schedule (rate R events
                     per second, ring size clamped to [min-n, max-n]),
                     re-splicing neighbours around every joiner and leaver
                     while tokens circulate; asserts the ring re-converges
                     to 1..=2 privileged within the Theorem 2 envelope for
                     the post-event ring size after every membership event,
                     and writes time-to-reconverge vs churn-rate curves to
                     FILE (default BENCH_churn.json)
  ssrmin fallback  [--nodes N] [--ms MS] [--rounds R] [--hold-ms H]
                   [--tick-ms MS] [--step-ms MS] [--seed SEED] [--out FILE]
                     degraded-mode soak: run a UDP membership ring spawned
                     deliberately at K = n+1 (zero growth headroom) with
                     the random-walk fallback armed, then (a) crash/restart
                     R members and measure walker token grants, grant gaps
                     vs the cover-time envelope, hand-back latency and the
                     message cost of random-walk vs handshake circulation
                     during each broken-ring window; (b) renegotiate K
                     upward two-phase under live load and prove a join that
                     was refused AtCapacity succeeds afterwards; (c) audit
                     every grant across every mode switch for exclusivity;
                     writes the curves to FILE (default BENCH_fallback.json)
                     and fails on any audit violation, walker stall past
                     the cover-time envelope, or failed renegotiated join
  ssrmin partition [--nodes N] [--holes H] [--ms MS] [--rounds R] [--hold-ms H]
                   [--tick-ms MS] [--step-ms MS] [--seed SEED] [--out FILE]
                     partition-tolerant degraded-mode soak: crash H pairwise
                     non-adjacent members at once so the ring splits into H
                     live arcs, prove every arc is served by its own segment
                     walker (zero starved arcs, per-segment grant gaps within
                     the 4(m-1)^2 cover-time envelope over each arc's own m),
                     then heal the holes staggered and measure each
                     merge-on-heal (the lower-anchor walker survives, the
                     other is retired under a quiesced hand-over); audits
                     every grant across every split/merge interleaving and
                     writes grant-gap / merge-latency / cover-time curves to
                     FILE (default BENCH_partition.json); fails on any audit
                     violation, starved arc, stall past a segment envelope,
                     or missing merge
  ssrmin netem     [-n N] [-k K] [--profiles P1,P2,...] [--seeds S] [--faults F]
                   [--timer-us US] [--seed SEED] [--out FILE]
                   [--checkpoint FILE] [--checkpoint-at T] [--ticks T]
                   [--transcript-out FILE] [--tail L]
                     re-measure the recovery envelopes under realistic link
                     profiles (rate + latency + jitter + finite buffer;
                     builtin lan|wan|lossy-wan|asymmetric, or a name under
                     profiles/, or a TOML/JSON path): for each profile run
                     the deterministic CST simulator from random initial
                     configurations, inject F state corruptions per seed,
                     and compare every measured recovery against the
                     Theorem 2 envelope (4n^2 timer periods); writes the
                     curves to FILE (default BENCH_netem.json). With
                     --checkpoint, instead run ONE faulted simulation,
                     snapshot the entire cluster (states, in-flight frames,
                     netem queues, fault cursor, RNG cursors) at T into
                     FILE, finish the run and write its event transcript +
                     verdict to --transcript-out for `ssrmin replay` to
                     reproduce
  ssrmin replay    --from FILE [--transcript-out FILE]
                     restore a `ssrmin netem --checkpoint` file and re-run
                     it to the recorded end time: same checkpoint, same
                     bytes — the transcript and verdict are byte-identical
                     to the original run's (compare with cmp/diff)
  ssrmin ctl URL metrics|status|top
  ssrmin ctl URL chaos partition F T | heal F T | loss P|off |
                       corrupt P|off | truncate P|off | netem NAME|off
  ssrmin ctl URL fault crash N [amnesia|snapshot] | restart N |
                       partition F T | heal F T | corrupt-snapshot N |
                       corrupt-state N | freeze N | babble N
                     one-shot client against a --ctl-addr control plane
  ssrmin top URL   [--interval-ms MS] [--once]
                     refreshing ASCII dashboard of a running ring
  ssrmin converge  [-n N] [-k K] [--seeds S] [--daemon ...]
                     measure stabilization time from random configurations
  ssrmin transcript [-n N] [--ticks T] [--loss P] [--tail L] [--seed SEED]
                     run the CST simulator with event recording and print
                     the last L events
  ssrmin adversary  [-n N] [-k K] [--budget B] [--seed SEED]
                     hill-climb for a worst-case schedule (and, for tiny
                     rings, compare with the checker's exact bound)
  ssrmin adversary  --ms MS [--nodes N] [-k K] [--seed SEED]
                   [--corrupts C] [--freezes F] [--babbles B]
                   [--loss P] [--corrupt P] [--truncate P] [--csv]
                   [--ctl-addr HOST:PORT]
                     live adversarial soak on the UDP ring: inject seeded
                     state corruptions, rule-engine freezes and stale
                     babble bursts with the convergence watchdog armed;
                     fails unless the ring re-converges to 1..=2 privileged
                     after every event, and reports measured recoveries
                     against the Theorem 2 O(n^2) stabilization envelope";

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let params = ring_params(opts, 5)?;
    let steps: u64 = get(opts, "steps", 3 * params.n() as u64)?;
    let seed: u64 = get(opts, "seed", 0u64)?;
    let algo = SsrMin::new(params);
    let initial = start_config(opts, &algo, seed)?;
    let mut daemon = daemon_kind(opts)?.build(seed);
    let mut engine = Engine::new(algo, initial).map_err(|e| e.to_string())?;
    let t = engine.run_traced(daemon.as_mut(), steps);
    println!(
        "SSRmin, n = {}, K = {}, daemon = {} ({} steps, {} rounds):\n",
        params.n(),
        params.k(),
        daemon.name(),
        engine.steps(),
        engine.rounds(),
    );
    print!("{}", trace::render_ssrmin_trace(&algo, &t));
    let legit = algo.is_legitimate(engine.config());
    println!("\nfinal configuration legitimate: {legit}");
    Ok(())
}

fn cmd_simulate(opts: &Opts) -> Result<(), String> {
    let params = ring_params(opts, 5)?;
    let ticks: u64 = get(opts, "ticks", 20_000u64)?;
    let seed: u64 = get(opts, "seed", 0u64)?;
    let loss: f64 = get(opts, "loss", 0.0f64)?;
    let dwell: u64 = get(opts, "dwell", 4u64)?;
    let cfg = SimConfig {
        seed,
        delay: DelayModel::Uniform { min: 2, max: 9 },
        loss,
        timer_interval: 40,
        send_on_receipt: true,
        exec_delay: dwell,
        burst: None,
    };
    let algo_name = opts.get("algo").map(String::as_str).unwrap_or("ssrmin");

    // Run, summarize and draw the strip for whichever algorithm was picked.
    macro_rules! drive {
        ($algo:expr, $initial:expr) => {{
            let algo = $algo;
            let spec = algo.cs_spec_message_passing();
            let mut sim = CstSim::new(algo, $initial, cfg).map_err(|e| e.to_string())?;
            sim.run_until(ticks);
            let sum = sim.timeline().summary(0).ok_or("empty timeline")?;
            let strip = privileged_strip(sim.timeline().samples(), ticks, 72);
            let stats = sim.stats();
            println!(
                "{algo_name}, n = {}, K = {}, {ticks} ticks, loss = {loss}",
                params.n(),
                params.k()
            );
            println!("message-passing guarantee: {spec}\n");
            println!("privileged nodes over time ('!' = none — a mutual-inclusion violation):");
            println!("  [{strip}]");
            println!(
                "\nzero-privileged time : {} ticks ({:.2}% of the run)",
                sum.zero_privileged_time,
                100.0 * sum.zero_privileged_time as f64 / sum.window as f64
            );
            println!("privileged range     : {}..={}", sum.min_privileged, sum.max_privileged);
            println!("transmissions        : {} ({} lost)", stats.transmissions, stats.losses);
            println!("rules executed       : {}", stats.rules_executed);
            let d3 = sim.definition3_check();
            println!(
                "Definition 3 (now)   : h_true = {}, h_cached = {} — {}",
                d3.h_true,
                d3.h_cached,
                if d3.holds() { "agrees" } else { "MODEL GAP" }
            );
        }};
    }
    match algo_name {
        "ssrmin" => {
            let a = SsrMin::new(params);
            drive!(a, a.legitimate_anchor(0));
        }
        "dijkstra" => {
            let a = SsToken::new(params);
            drive!(a, a.uniform_config(0));
        }
        "dual" => {
            let a = DualSsToken::new(params);
            drive!(a, a.config_with_tokens_at(0, params.n() / 2, 0));
        }
        other => return Err(format!("unknown algo {other:?}")),
    }
    Ok(())
}

fn cmd_verify(opts: &Opts) -> Result<(), String> {
    let params = ring_params(opts, 3)?;
    let limit: u64 = get(opts, "limit", 2_000_000u64)?;
    let algo_name = opts.get("algo").map(String::as_str).unwrap_or("ssrmin");
    let report = match algo_name {
        "ssrmin" => ssrmin::verify::verify(&SsrMin::new(params), limit),
        "dijkstra" => ssrmin::verify::verify(&SsToken::new(params), limit),
        other => return Err(format!("unknown algo {other:?}")),
    }
    .map_err(|e| e.to_string())?;
    println!("exhaustive model check: {algo_name}, n = {}, K = {}", params.n(), params.k());
    let mut table = Table::new(vec!["property", "result"]);
    table.row(vec!["configurations".to_string(), report.configs.to_string()]);
    table.row(vec!["legitimate (|Λ|)".to_string(), report.legitimate.to_string()]);
    table.row(vec!["closure (Lemma 1)".to_string(), ok(report.closure_holds)]);
    table.row(vec!["no deadlock (Lemma 4)".to_string(), ok(report.deadlock_free)]);
    table.row(vec!["convergence (Lemma 6)".to_string(), ok(report.converges)]);
    table.row(vec![
        "privileged in ALL configs".to_string(),
        format!("{}..={}", report.min_privileged_all, report.max_privileged_all),
    ]);
    table.row(vec![
        "privileged in Λ (Thm 1)".to_string(),
        format!("{}..={}", report.min_privileged_legit, report.max_privileged_legit),
    ]);
    table.row(vec![
        "exact worst-case stabilization".to_string(),
        format!("{} steps", report.worst_case_steps),
    ]);
    print!("{}", table.render());
    Ok(())
}

fn ok(b: bool) -> String {
    if b {
        "holds".into()
    } else {
        "VIOLATED".into()
    }
}

fn cmd_camera(opts: &Opts) -> Result<(), String> {
    let n: usize = get(opts, "n", 6usize)?;
    let ms: u64 = get(opts, "ms", 1000u64)?;
    let loss: f64 = get(opts, "loss", 0.05f64)?;
    let seed: u64 = get(opts, "seed", 0u64)?;
    let cfg = RuntimeConfig {
        tick: Duration::from_millis(3),
        exec_delay: Duration::from_millis(2),
        loss,
        seed,
        suspicion: Duration::ZERO,
    };
    let net = CameraNetwork::new(n).map_err(|e| e.to_string())?.with_config(cfg);
    let report = net
        .observe(Duration::from_millis(ms), Duration::from_millis(ms / 10))
        .map_err(|e| e.to_string())?;
    println!("camera network: n = {n}, {ms} ms, loss = {loss}");
    println!("continuous observation : {}", report.continuous());
    println!("uncovered time         : {:?}", report.coverage.uncovered);
    println!(
        "active cameras         : {}..={}",
        report.coverage.min_active, report.coverage.max_active
    );
    println!("handovers (activations): {}", report.coverage.activations);
    println!("mean duty cycle        : {:.3}", report.mean_duty_cycle());
    for (i, d) in report.coverage.duty_cycle.iter().enumerate() {
        println!("  camera {i}: {:>5.1}%", d * 100.0);
    }
    Ok(())
}

fn cmd_cluster(opts: &Opts) -> Result<(), String> {
    let params = cluster_params(opts, 5)?;
    let (n, k) = (params.n(), params.k());
    let ms: u64 = get(opts, "ms", 700u64)?;
    let seed: u64 = get(opts, "seed", 0u64)?;
    let csv = opts.contains_key("csv");

    let algo = SsrMin::new(params);
    let initial = start_config(opts, &algo, seed)?;
    let chaos = chaos_from_opts(opts)?;
    let faulty = chaos.is_some();
    let cfg = ClusterConfig {
        seed,
        duration: Duration::from_millis(ms),
        warmup: Duration::from_millis(ms / 2),
        chaos,
        ..ClusterConfig::default()
    };
    let report = match ctl_listener(opts)? {
        // The ctl plane lives in the fault supervisor, so a cluster with
        // `--ctl-addr` runs supervised under an empty schedule: identical
        // behaviour (the per-link proxies pass datagrams through untouched)
        // until an admin command says otherwise.
        Some(listener) => {
            ssrmin::net::run_supervised_cluster_with_ctl(
                algo,
                initial,
                SupervisorConfig { cluster: cfg, ..SupervisorConfig::default() },
                ssrmin::net::ssr_amnesia(params, seed),
                Some(listener),
            )
            .map_err(|e| e.to_string())?
            .cluster
        }
        None => ssrmin::net::run_cluster(algo, initial, cfg).map_err(|e| e.to_string())?,
    };

    if csv {
        print!("{}", report.metrics.to_csv());
        return Ok(());
    }
    println!("loopback UDP cluster: {n} nodes, K = {k}, {ms} ms, seed = {seed}");
    match report.stabilized_at {
        None => println!("token-count invariant : held for the whole run"),
        Some(t) if t < report.observed => {
            println!("token-count invariant : stabilized after {t:?}")
        }
        Some(_) => println!("token-count invariant : NOT RESTORED within the run"),
    }
    println!(
        "continuous (post-warmup): {} (uncovered {:?}, longest gap {:?})",
        report.continuous(),
        report.coverage.uncovered,
        report.coverage.longest_gap
    );
    println!(
        "privileged nodes        : {}..={}",
        report.coverage.min_active, report.coverage.max_active
    );
    println!("handovers (activations) : {}", report.coverage.activations);
    if faulty {
        println!(
            "chaos                   : {} forwarded, {} dropped, {} duplicated, {} reordered, \
             {} netem buffer drops",
            report.chaos.forwarded,
            report.chaos.dropped,
            report.chaos.duplicated,
            report.chaos.reordered,
            report.chaos.netem_dropped
        );
    }
    println!("\nper-node metrics:");
    print!("{}", report.metrics.to_ascii());
    Ok(())
}

fn cmd_soak(opts: &Opts) -> Result<(), String> {
    let params = cluster_params(opts, 5)?;
    let (n, k) = (params.n(), params.k());
    let ms: u64 = get(opts, "ms", 2000u64)?;
    if ms < 100 {
        return Err("--ms must be at least 100 (the schedule needs room)".into());
    }
    let seed: u64 = get(opts, "seed", 0u64)?;
    let crashes: usize = get(opts, "crashes", 2usize)?;
    let partitions: usize = get(opts, "partitions", 1usize)?;
    let snapshot_ratio = match opts.get("mode").map(String::as_str).unwrap_or("mixed") {
        "amnesia" => 0.0,
        "snapshot" => 1.0,
        "mixed" => 0.5,
        other => return Err(format!("unknown mode {other:?} (amnesia|snapshot|mixed)")),
    };
    let csv = opts.contains_key("csv");

    let algo = SsrMin::new(params);
    let initial = start_config(opts, &algo, seed)?;

    // Faults land in the middle of the run, leaving a tail for the final
    // window to re-converge in.
    let plan = FaultPlan {
        crashes,
        partitions,
        window: (ms / 5, ms * 7 / 10),
        downtime: ((ms / 20).max(1), (ms / 8).max(2)),
        partition_len: ((ms / 15).max(1), (ms / 6).max(2)),
        snapshot_ratio,
        corrupts: get(opts, "corrupts", 0usize)?,
        freezes: get(opts, "freezes", 0usize)?,
        babbles: get(opts, "babbles", 0usize)?,
    };
    let schedule = FaultSchedule::random(n, &plan, seed);

    let sup = SupervisorConfig {
        cluster: ClusterConfig {
            seed,
            duration: Duration::from_millis(ms),
            warmup: Duration::from_millis(ms / 2),
            chaos: chaos_from_opts(opts)?,
            ..ClusterConfig::default()
        },
        schedule,
        ..SupervisorConfig::default()
    };
    let report = ssrmin::net::run_supervised_cluster_with_ctl(
        algo,
        initial,
        sup,
        ssrmin::net::ssr_amnesia(params, seed),
        ctl_listener(opts)?,
    )
    .map_err(|e| e.to_string())?;

    if csv {
        print!("{}", report.recovery.to_csv());
        return Ok(());
    }
    println!(
        "fault soak: {n} nodes, K = {k}, {ms} ms, seed = {seed}, {} fault events",
        report.recovery.rows.len()
    );
    print!("{}", report.recovery.to_ascii());
    println!("re-converged after every restoring fault: {}", report.reconverged());
    if !report.restarts.is_empty() {
        println!("restarts:");
        for r in &report.restarts {
            let degraded = match &r.degraded {
                Some(e) => format!(" — snapshot rejected ({e}), degraded to amnesia"),
                None => String::new(),
            };
            println!(
                "  node {} #{} at {:?} ({}, backoff {:?}){degraded}",
                r.node, r.incarnation, r.at, r.mode, r.backoff
            );
        }
    }
    if report.panics > 0 {
        println!("node panics             : {}", report.panics);
    }
    let c = &report.cluster;
    match c.stabilized_at {
        None => println!("token-count invariant   : held for the whole run"),
        Some(t) if t < c.observed => println!("token-count invariant   : last restored at {t:?}"),
        Some(_) => println!("token-count invariant   : NOT RESTORED within the run"),
    }
    println!("privileged nodes        : {}..={}", c.coverage.min_active, c.coverage.max_active);
    println!("handovers (activations) : {}", c.coverage.activations);
    println!(
        "chaos                   : {} forwarded, {} dropped, {} duplicated, {} reordered, {} blocked by partitions, {} netem buffer drops",
        c.chaos.forwarded, c.chaos.dropped, c.chaos.duplicated, c.chaos.reordered, c.chaos.blocked, c.chaos.netem_dropped
    );
    // Post-hoc (l,k)-CS audit of the recorded privilege trace: episodes
    // during fault windows are expected (that's what the soak provokes);
    // what fails the soak is the invariant still being violated at the end.
    let audit = audit_trace(
        algo.cs_spec(),
        &c.initial_active,
        &c.events,
        Duration::from_millis(ms / 2),
        c.observed,
    );
    println!(
        "(l,k)-CS trace audit    : {} episodes, {:?} violating of {:?} audited, privileged {}..={}",
        audit.violations, audit.violated, audit.audited, audit.min_active, audit.max_active
    );
    if matches!(c.stabilized_at, Some(t) if t >= c.observed) {
        return Err("CS spec still violated at run end — soak failed".into());
    }
    Ok(())
}

fn cmd_converge(opts: &Opts) -> Result<(), String> {
    let params = ring_params(opts, 8)?;
    let seeds: u64 = get(opts, "seeds", 20u64)?;
    let kind = daemon_kind(opts)?;
    let algo = SsrMin::new(params);
    let budget = 100 * (params.n() as u64).pow(2) + 1000;
    let mut steps = Vec::new();
    let mut rounds = Vec::new();
    for seed in 0..seeds {
        let cfg = random_config::random_ssr_config(params, seed);
        let mut daemon = kind.build(seed);
        let r = measure_convergence(algo, cfg, daemon.as_mut(), budget, 0)
            .ok_or("did not converge within the quadratic envelope")?;
        steps.push(r.steps);
        rounds.push(r.rounds);
    }
    let s = summarize(&steps).ok_or("no samples")?;
    let rd = summarize(&rounds).ok_or("no samples")?;
    println!(
        "convergence from random configurations: n = {}, K = {}, daemon = {}, {seeds} seeds",
        params.n(),
        params.k(),
        kind.label()
    );
    println!("steps : mean {:.1}, median {}, p95 {}, max {}", s.mean, s.median, s.p95, s.max);
    println!("rounds: mean {:.1}, median {}, p95 {}, max {}", rd.mean, rd.median, rd.p95, rd.max);
    println!("mean steps / n² = {:.3}", s.mean / (params.n() * params.n()) as f64);
    Ok(())
}

fn cmd_transcript(opts: &Opts) -> Result<(), String> {
    let params = ring_params(opts, 5)?;
    let ticks: u64 = get(opts, "ticks", 3_000u64)?;
    let loss: f64 = get(opts, "loss", 0.1f64)?;
    let tail: usize = get(opts, "tail", 25usize)?;
    let seed: u64 = get(opts, "seed", 0u64)?;
    let algo = SsrMin::new(params);
    let cfg = SimConfig {
        seed,
        delay: DelayModel::Uniform { min: 2, max: 9 },
        loss,
        timer_interval: 40,
        send_on_receipt: true,
        exec_delay: 0,
        burst: None,
    };
    let mut sim = CstSim::new(algo, algo.legitimate_anchor(0), cfg).map_err(|e| e.to_string())?;
    sim.enable_transcript(tail);
    sim.run_until(ticks);
    println!(
        "SSRmin CST run, n = {}, {} ticks, loss = {loss} — last {tail} events:\n",
        params.n(),
        ticks
    );
    print!("{}", sim.transcript().expect("enabled").render());
    let d3 = sim.definition3_check();
    println!(
        "\nDefinition 3 at t={}: h_true = {}, h_cached = {} ({})",
        sim.now(),
        d3.h_true,
        d3.h_cached,
        if d3.holds() { "agrees" } else { "MODEL GAP" }
    );
    Ok(())
}

fn cmd_adversary(opts: &Opts) -> Result<(), String> {
    // `--ms`/`--nodes` selects the live soak against a real UDP ring; the
    // bare form keeps the offline worst-case schedule search.
    if opts.contains_key("ms") || opts.contains_key("nodes") {
        return cmd_adversary_soak(opts);
    }
    let params = ring_params(opts, 4)?;
    let budget: u64 = get(opts, "budget", 4_000u64)?;
    let seed: u64 = get(opts, "seed", 42u64)?;
    let algo = SsrMin::new(params);
    let found = ssrmin::analysis::search_worst_case(algo, budget, seed);
    println!(
        "worst schedule found for n = {}, K = {}: {} steps ({} evaluations)",
        params.n(),
        params.k(),
        found.steps,
        found.evaluations
    );
    println!(
        "initial configuration: {}",
        found.initial.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ")
    );
    let space = (4u64 * params.k() as u64).checked_pow(params.n() as u32);
    if let Some(size) = space.filter(|&s| s <= 500_000) {
        let exact = ssrmin::verify::verify(&algo, size).map_err(|e| e.to_string())?;
        println!(
            "exact worst case (model checker over {} configs): {} steps — search reached {:.0}%",
            exact.configs,
            exact.worst_case_steps,
            100.0 * found.steps as f64 / exact.worst_case_steps.max(1) as f64
        );
    } else {
        println!("(state space too large for the exact checker — search result is a lower bound)");
    }
    Ok(())
}

/// `ssrmin adversary --ms ...` — a live adversarial soak: schedule seeded
/// state corruptions, rule-engine freezes and stale-generation babble
/// bursts against a real UDP ring running with the convergence watchdog
/// enabled, then demand re-convergence to `1 <= privileged <= 2` after
/// every adversarial event and compare measured recoveries against the
/// Theorem 2 stabilization envelope.
fn cmd_adversary_soak(opts: &Opts) -> Result<(), String> {
    let params = cluster_params(opts, 5)?;
    let (n, k) = (params.n(), params.k());
    let ms: u64 = get(opts, "ms", 3000u64)?;
    if ms < 100 {
        return Err("--ms must be at least 100 (the schedule needs room)".into());
    }
    let seed: u64 = get(opts, "seed", 0u64)?;
    let csv = opts.contains_key("csv");

    let algo = SsrMin::new(params);
    let initial = start_config(opts, &algo, seed)?;
    let plan = FaultPlan {
        crashes: 0,
        partitions: 0,
        window: (ms / 5, ms * 7 / 10),
        downtime: ((ms / 20).max(1), (ms / 8).max(2)),
        partition_len: ((ms / 15).max(1), (ms / 6).max(2)),
        snapshot_ratio: 0.0,
        corrupts: get(opts, "corrupts", 1usize)?,
        freezes: get(opts, "freezes", 1usize)?,
        babbles: get(opts, "babbles", 1usize)?,
    };
    let schedule = FaultSchedule::random(n, &plan, seed);

    let sup = SupervisorConfig {
        cluster: ClusterConfig {
            seed,
            duration: Duration::from_millis(ms),
            warmup: Duration::from_millis(ms / 2),
            chaos: chaos_from_opts(opts)?,
            ..ClusterConfig::default()
        },
        schedule,
        watchdog: Some(WatchdogConfig::default()),
        ..SupervisorConfig::default()
    };
    let report = ssrmin::net::run_supervised_cluster_with_ctl(
        algo,
        initial,
        sup,
        // Poisons draw from the adversarial sampler: Hoepman worst-case
        // counters with maximally disagreeing caches, secondary token held.
        ssrmin::net::ssr_adversary(params, seed),
        ctl_listener(opts)?,
    )
    .map_err(|e| e.to_string())?;

    if csv {
        print!("{}", report.recovery.to_csv());
        return Ok(());
    }
    println!(
        "adversary soak: {n} nodes, K = {k}, {ms} ms, seed = {seed}, {} recorded events",
        report.recovery.rows.len()
    );
    print!("{}", report.recovery.to_ascii());
    let c = &report.cluster;
    println!("re-converged after every adversarial event: {}", report.reconverged());
    println!("watchdog escalations    : {}", report.watchdog_escalations());
    let max_measured = report.recovery.rows.iter().filter_map(|r| r.recovery).max();
    println!(
        "stabilization envelope (4*n^2*tick): {:?} — max measured recovery {}: {}",
        report.envelope,
        match max_measured {
            Some(d) => format!("{d:?}"),
            None => "-".to_string(),
        },
        if report.within_envelope() { "WITHIN" } else { "EXCEEDED" },
    );
    println!("privileged nodes        : {}..={}", c.coverage.min_active, c.coverage.max_active);
    println!("handovers (activations) : {}", c.coverage.activations);
    println!(
        "chaos                   : {} forwarded, {} dropped, {} corrupted, {} truncated",
        c.chaos.forwarded, c.chaos.dropped, c.chaos.corrupted, c.chaos.truncated
    );
    if !report.reconverged() {
        return Err("ring did NOT re-converge after every adversarial event".into());
    }
    Ok(())
}

/// Build the pre-provisioned tenant specs of `serve` and `load`: `t1..tT`,
/// seeds spread from `--seed`.
fn provision_specs(
    tenants: usize,
    nodes: usize,
    seed: u64,
    tick_ms: u64,
    ttl_ms: u64,
) -> Vec<TenantSpec> {
    (1..=tenants)
        .map(|i| TenantSpec {
            nodes,
            seed: seed.wrapping_add(i as u64),
            tick: Duration::from_millis(tick_ms),
            lease_ttl: Duration::from_millis(ttl_ms),
            ..TenantSpec::named(format!("t{i}"))
        })
        .collect()
}

/// `ssrmin serve` — host a multi-tenant ring service until killed (or for
/// `--ms` milliseconds, then audit and exit).
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let tenants: usize = get(opts, "tenants", 4usize)?;
    let nodes: usize = get(opts, "nodes", 5usize)?;
    let ms: u64 = get(opts, "ms", 0u64)?;
    let seed: u64 = get(opts, "seed", 0u64)?;
    let tick_ms: u64 = get(opts, "tick-ms", 5u64)?;
    let ttl_ms: u64 = get(opts, "ttl-ms", 250u64)?;
    let addr = opts.get("ctl-addr").map(String::as_str).unwrap_or("127.0.0.1:0");
    let addr: SocketAddr =
        addr.parse().map_err(|_| format!("invalid value for --ctl-addr: {addr:?}"))?;
    let listener = CtlListener::bind(addr).map_err(|e| format!("ctl bind {addr}: {e}"))?;

    let host = ServeHost::spawn();
    for spec in provision_specs(tenants, nodes, seed, tick_ms, ttl_ms) {
        host.create(spec)?;
    }
    println!(
        "serve listening on http://{} ({tenants} tenants x {nodes} nodes)",
        listener.local_addr()
    );
    let mut server = listener.serve(Arc::new(ServePlane::new(Arc::clone(&host))));

    if ms == 0 {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_millis(ms));
    server.shutdown();

    let mut violated = false;
    for entry in host.list() {
        let audit = entry.audit();
        let lease = entry.lease.counters();
        let clean = !entry.spec.wants_chaos();
        println!(
            "tenant {} ({}): privileged {}..={}, {} violation episodes ({:?} of {:?}), \
             leases {} granted / {} conflicts{}",
            entry.id,
            entry.spec.name,
            audit.min_active,
            audit.max_active,
            audit.violations,
            audit.violated,
            audit.audited,
            lease.grants,
            lease.conflicts,
            if clean { "" } else { " [chaos]" },
        );
        violated |= clean && audit.violations > 0;
    }
    host.shutdown();
    if violated {
        return Err("a chaos-free tenant violated its CS spec".into());
    }
    Ok(())
}

/// One `ssrmin load` measurement row.
struct LoadRow {
    tenants: usize,
    nodes: usize,
    ops: u64,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
    conflicts: u64,
    cs_violations: u64,
}

/// Sorted-latency quantile: `q` in [0, 100].
fn quantile_us(sorted: &[u64], q: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as u64 * q / 100) as usize]
}

/// Run one load round: T tenants x C clients hammering acquire/release
/// over real HTTP against an in-process serve host.
fn load_round(
    tenants: usize,
    nodes: usize,
    clients: usize,
    ms: u64,
    seed: u64,
    ttl_ms: u64,
) -> Result<LoadRow, String> {
    let host = ServeHost::spawn();
    for spec in provision_specs(tenants, nodes, seed, 5, ttl_ms) {
        host.create(spec)?;
    }
    let listener = CtlListener::bind("127.0.0.1:0".parse().expect("loopback addr"))
        .map_err(|e| format!("ctl bind: {e}"))?;
    let url = listener.local_addr().to_string();
    let mut server = listener.serve(Arc::new(ServePlane::new(Arc::clone(&host))));

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for tenant in 1..=tenants {
        for client in 0..clients {
            let url = url.clone();
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                let acquire = format!("/tenants/{tenant}/acquire");
                let release = format!("/tenants/{tenant}/release");
                let me = format!("client-{client}");
                // Cheap xorshift for retry jitter (decorrelates clients).
                let mut rng = seed ^ ((tenant as u64) << 32) ^ client as u64 ^ 0x9E37;
                let mut latencies_us: Vec<u64> = Vec::new();
                'outer: while !stop.load(Ordering::Relaxed) {
                    // One op = keep trying until the lease is ours, then
                    // release it. Latency is first-try to grant: what a
                    // queued application actually waits.
                    let began = Instant::now();
                    let lease = loop {
                        match ssrmin::ctl::post(&url, &acquire, &me) {
                            Ok(reply) if reply.status == 200 => {
                                let id = Json::parse(&reply.body)
                                    .ok()
                                    .and_then(|d| d.get("lease").and_then(Json::as_u64));
                                match id {
                                    Some(id) => break id,
                                    None => continue 'outer,
                                }
                            }
                            _ => {
                                if stop.load(Ordering::Relaxed) {
                                    continue 'outer;
                                }
                                rng ^= rng << 13;
                                rng ^= rng >> 7;
                                rng ^= rng << 17;
                                std::thread::sleep(Duration::from_micros(200 + rng % 1800));
                            }
                        }
                    };
                    latencies_us.push(began.elapsed().as_micros() as u64);
                    let _ = ssrmin::ctl::post(&url, &release, &lease.to_string());
                }
                latencies_us
            }));
        }
    }

    std::thread::sleep(Duration::from_millis(ms));
    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<u64> = Vec::new();
    for worker in workers {
        latencies.extend(worker.join().map_err(|_| "load worker panicked".to_string())?);
    }
    server.shutdown();

    let mut conflicts = 0;
    let mut cs_violations = 0;
    for entry in host.list() {
        conflicts += entry.lease.counters().conflicts;
        cs_violations += entry.audit().violations;
    }
    host.shutdown();

    latencies.sort_unstable();
    let ops = latencies.len() as u64;
    Ok(LoadRow {
        tenants,
        nodes,
        ops,
        ops_per_sec: ops as f64 / (ms as f64 / 1000.0),
        p50_us: quantile_us(&latencies, 50),
        p99_us: quantile_us(&latencies, 99),
        max_us: latencies.last().copied().unwrap_or(0),
        conflicts,
        cs_violations,
    })
}

/// `ssrmin load` — the serve-mode load generator and scaling-curve bench.
fn cmd_load(opts: &Opts) -> Result<(), String> {
    let tenants: usize = get(opts, "tenants", 8usize)?;
    let nodes: usize = get(opts, "nodes", 5usize)?;
    let clients: usize = get(opts, "clients", 2usize)?;
    let ms: u64 = get(opts, "ms", 2000u64)?;
    if ms < 100 {
        return Err("--ms must be at least 100".into());
    }
    let seed: u64 = get(opts, "seed", 0u64)?;
    let ttl_ms: u64 = get(opts, "ttl-ms", 100u64)?;
    let out = opts.get("out").map(String::as_str).unwrap_or("BENCH_serve.json");
    let sweep: Vec<usize> = match opts.get("sweep") {
        Some(list) => list
            .split(',')
            .map(|w| w.trim().parse().map_err(|_| format!("invalid --sweep entry {w:?}")))
            .collect::<Result<_, _>>()?,
        None => vec![tenants],
    };
    if sweep.is_empty() || sweep.contains(&0) {
        return Err("--sweep needs positive tenant counts".into());
    }

    println!(
        "lease load: {} x {nodes} nodes, {clients} clients/tenant, {ms} ms per point, seed = {seed}",
        sweep.iter().map(|t| t.to_string()).collect::<Vec<_>>().join("/"),
    );
    let mut rows = Vec::new();
    for &t in &sweep {
        let row = load_round(t, nodes, clients, ms, seed, ttl_ms)?;
        println!(
            "tenants={:<3} nodes={} ops={:<6} ops/sec={:<8.1} lease latency p50={}us p99={}us \
             max={}us conflicts={} cs_violations={}",
            row.tenants,
            row.nodes,
            row.ops,
            row.ops_per_sec,
            row.p50_us,
            row.p99_us,
            row.max_us,
            row.conflicts,
            row.cs_violations,
        );
        rows.push(row);
    }

    let doc = Json::obj(vec![
        ("schema", Json::str("ssr-serve-load/v1")),
        ("clients_per_tenant", Json::num(clients as f64)),
        ("ms_per_point", Json::num(ms as f64)),
        ("ttl_ms", Json::num(ttl_ms as f64)),
        ("seed", Json::num(seed as f64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("tenants", Json::num(r.tenants as f64)),
                            ("nodes", Json::num(r.nodes as f64)),
                            ("ops", Json::num(r.ops as f64)),
                            ("ops_per_sec", Json::Num(r.ops_per_sec)),
                            ("p50_us", Json::num(r.p50_us as f64)),
                            ("p99_us", Json::num(r.p99_us as f64)),
                            ("max_us", Json::num(r.max_us as f64)),
                            ("conflicts", Json::num(r.conflicts as f64)),
                            ("cs_violations", Json::num(r.cs_violations as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(out, doc.render() + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");

    if rows.iter().any(|r| r.cs_violations > 0) {
        return Err("a tenant violated its CS spec under load".into());
    }
    Ok(())
}

struct ChurnEventRow {
    at_ms: u64,
    kind: String,
    slot: usize,
    n_after: usize,
    reconverge_ms: Option<u64>,
    envelope_ms: u64,
    ok: bool,
}

struct ChurnRow {
    rate: f64,
    joins: usize,
    leaves: usize,
    reconverged: usize,
    violations: usize,
    mean_reconverge_ms: f64,
    max_reconverge_ms: u64,
    escalations: usize,
    curve: Vec<ChurnEventRow>,
}

/// One churn soak at a fixed event rate: spawn the membership host, replay
/// the seeded Poisson join/leave schedule in real time, and measure the
/// time back into the `1..=2`-privileged band after every event.
#[allow(clippy::too_many_arguments)]
fn churn_round(
    nodes: usize,
    k: u32,
    rate: f64,
    ms: u64,
    min_n: usize,
    max_n: usize,
    loss: f64,
    tick: Duration,
    seed: u64,
) -> Result<ChurnRow, String> {
    let params = ssrmin::RingParams::new(nodes, k).map_err(|e| e.to_string())?;
    let plan = ChurnPlan { rate, window: (300, ms), min_n, max_n };
    let schedule = FaultSchedule::churn(nodes, &plan, seed).map_err(|e| e.to_string())?;
    let chaos = (loss > 0.0).then(|| ChaosConfig { seed, loss, ..ChaosConfig::default() });
    let cfg = MembershipConfig { tick, seed, chaos, ..MembershipConfig::default() };
    let mut ring = RingMembership::spawn(params, cfg).map_err(|e| e.to_string())?;

    let settle = (convergence_envelope(nodes, tick) * 4).max(Duration::from_secs(2));
    if ring.wait_reconverged(settle).is_none() {
        return Err("the ring never converged before the churn window".into());
    }

    let mut curve = Vec::new();
    let (mut joins, mut leaves) = (0, 0);
    let t0 = Instant::now();
    for event in schedule.events() {
        // Sleep until the event's scheduled instant; if the previous
        // reconvergence wait overshot it, apply back-to-back.
        let at = Duration::from_millis(event.at);
        if let Some(gap) = at.checked_sub(t0.elapsed()) {
            std::thread::sleep(gap);
        }
        let slot = ring
            .apply_membership(&event.kind)
            .map_err(|e| format!("apply '{}': {e}", event.kind))?;
        match event.kind {
            ssrmin::mpnet::FaultKind::Join { .. } => joins += 1,
            _ => leaves += 1,
        }
        let n_after = ring.n();
        // The Theorem 2 O(n^2) stabilization envelope for the *post-event*
        // ring size, with the soak harness's wall-clock floor.
        let envelope = convergence_envelope(n_after, tick).max(Duration::from_millis(400));
        // Wait past the envelope so violations still report their real
        // reconvergence time instead of just a timeout.
        let reconverge = ring.wait_reconverged(envelope * 4);
        let ok = reconverge.is_some_and(|d| d <= envelope);
        curve.push(ChurnEventRow {
            at_ms: event.at,
            kind: event.kind.to_string(),
            slot,
            n_after,
            reconverge_ms: reconverge.map(|d| d.as_millis() as u64),
            envelope_ms: envelope.as_millis() as u64,
            ok,
        });
    }
    let escalations = ring.watchdog_escalations();
    ring.stop();

    let times: Vec<u64> = curve.iter().filter_map(|r| r.reconverge_ms).collect();
    Ok(ChurnRow {
        rate,
        joins,
        leaves,
        reconverged: times.len(),
        violations: curve.iter().filter(|r| !r.ok).count(),
        mean_reconverge_ms: if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<u64>() as f64 / times.len() as f64
        },
        max_reconverge_ms: times.iter().copied().max().unwrap_or(0),
        escalations,
        curve,
    })
}

fn cmd_churn(opts: &Opts) -> Result<(), String> {
    let nodes: usize = match opts.get("nodes") {
        Some(v) => v.parse().map_err(|_| format!("invalid value for --nodes: {v:?}"))?,
        None => get(opts, "n", 5usize)?,
    };
    let ms: u64 = get(opts, "ms", 4000u64)?;
    if ms < 600 {
        return Err("--ms must be at least 600".into());
    }
    let seed: u64 = get(opts, "seed", 0u64)?;
    let tick = Duration::from_millis(get(opts, "tick-ms", 5u64)?.max(1));
    let loss: f64 = get(opts, "loss", 0.0f64)?;
    let min_n: usize = get(opts, "min-n", 3usize)?;
    let max_n: usize = get(opts, "max-n", nodes + 3)?;
    let k: u32 = get(opts, "k", 0u32)?;
    // Joins are only sound while n < K (Hoepman's proof needs K > N), so
    // the default K leaves headroom for the whole churn band.
    let k = if k == 0 { max_n as u32 + 2 } else { k };
    if k <= max_n as u32 {
        return Err(format!("-k {k} must exceed --max-n {max_n} (joins need K > n)"));
    }
    let rate: f64 = get(opts, "rate", 2.0f64)?;
    let sweep: Vec<f64> = match opts.get("sweep") {
        Some(list) => list
            .split(',')
            .map(|w| w.trim().parse().map_err(|_| format!("invalid --sweep entry {w:?}")))
            .collect::<Result<_, _>>()?,
        None => vec![rate],
    };
    if sweep.is_empty() || sweep.iter().any(|r| !r.is_finite() || *r <= 0.0) {
        return Err("--sweep needs positive churn rates".into());
    }
    let out = opts.get("out").map(String::as_str).unwrap_or("BENCH_churn.json");

    println!(
        "churn soak: {nodes} nodes (k = {k}), {} ms per rate, ring clamped to [{min_n}, {max_n}], \
         loss = {loss}, seed = {seed}",
        ms,
    );
    let mut rows = Vec::new();
    for &r in &sweep {
        let row = churn_round(nodes, k, r, ms, min_n, max_n, loss, tick, seed)?;
        println!(
            "rate={:<5} events={:<3} (join {} / leave {}) reconverged={} mean={:.1}ms max={}ms \
             envelope_violations={} watchdog={}",
            row.rate,
            row.curve.len(),
            row.joins,
            row.leaves,
            row.reconverged,
            row.mean_reconverge_ms,
            row.max_reconverge_ms,
            row.violations,
            row.escalations,
        );
        for e in &row.curve {
            println!(
                "  t={:<6} {:24} -> n={} reconverge={} envelope={}ms{}",
                e.at_ms,
                e.kind,
                e.n_after,
                e.reconverge_ms.map(|t| format!("{t}ms")).unwrap_or_else(|| "never".into()),
                e.envelope_ms,
                if e.ok { "" } else { "  ** OUTSIDE ENVELOPE **" },
            );
        }
        rows.push(row);
    }

    let doc = Json::obj(vec![
        ("schema", Json::str("ssrmin-churn/v1")),
        ("nodes", Json::num(nodes as f64)),
        ("k", Json::num(k as f64)),
        ("ms_per_rate", Json::num(ms as f64)),
        ("tick_ms", Json::num(tick.as_millis() as f64)),
        ("min_n", Json::num(min_n as f64)),
        ("max_n", Json::num(max_n as f64)),
        ("loss", Json::Num(loss)),
        ("seed", Json::num(seed as f64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("rate", Json::Num(r.rate)),
                            ("events", Json::num(r.curve.len() as f64)),
                            ("joins", Json::num(r.joins as f64)),
                            ("leaves", Json::num(r.leaves as f64)),
                            ("reconverged", Json::num(r.reconverged as f64)),
                            ("envelope_violations", Json::num(r.violations as f64)),
                            ("mean_reconverge_ms", Json::Num(r.mean_reconverge_ms)),
                            ("max_reconverge_ms", Json::num(r.max_reconverge_ms as f64)),
                            ("watchdog_escalations", Json::num(r.escalations as f64)),
                            (
                                "curve",
                                Json::Arr(
                                    r.curve
                                        .iter()
                                        .map(|e| {
                                            Json::obj(vec![
                                                ("at_ms", Json::num(e.at_ms as f64)),
                                                ("kind", Json::str(&e.kind)),
                                                ("slot", Json::num(e.slot as f64)),
                                                ("n_after", Json::num(e.n_after as f64)),
                                                (
                                                    "reconverge_ms",
                                                    e.reconverge_ms
                                                        .map(|t| Json::num(t as f64))
                                                        .unwrap_or(Json::Null),
                                                ),
                                                ("envelope_ms", Json::num(e.envelope_ms as f64)),
                                                ("ok", Json::Bool(e.ok)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(out, doc.render() + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");

    let bad: usize = rows.iter().map(|r| r.violations).sum();
    if bad > 0 {
        return Err(format!(
            "{bad} membership event(s) did not re-converge within the Theorem 2 envelope"
        ));
    }
    Ok(())
}

/// One crash/restart round of a `ssrmin fallback` soak.
struct FallbackRound {
    victim: usize,
    hold_ms: u64,
    live: usize,
    walker_grants: u64,
    walker_steps: u64,
    regenerations: u64,
    max_gap_us: u64,
    cover_envelope_us: u64,
    gap_ok: bool,
    handback_ms: u64,
    reconverge_ms: Option<u64>,
    walker_msgs_per_sec: f64,
}

/// Sum of handshake datagrams sent and CS activations across the live ring.
fn ring_traffic(ring: &RingMembership) -> (u64, u64) {
    use ssrmin::net::metrics::NodeMetrics;
    let (mut sends, mut activations) = (0, 0);
    for i in ring.ring_order() {
        let m = ring.metrics().node(i);
        sends += NodeMetrics::get(&m.sends);
        activations += NodeMetrics::get(&m.activations);
    }
    (sends, activations)
}

/// `ssrmin fallback` — the degraded-mode soak: random-walk token service
/// during broken-ring windows, K renegotiation under live load, and the
/// handover exclusivity audit; writes BENCH_fallback.json.
fn cmd_fallback(opts: &Opts) -> Result<(), String> {
    let nodes: usize = get(opts, "nodes", 5usize)?;
    let ms: u64 = get(opts, "ms", 8000u64)?;
    if ms < 1500 {
        return Err("--ms must be at least 1500 (baseline + rounds + renegotiation)".into());
    }
    let rounds: usize = get(opts, "rounds", 3usize)?.max(1);
    let seed: u64 = get(opts, "seed", 0u64)?;
    let tick = Duration::from_millis(get(opts, "tick-ms", 5u64)?.max(1));
    let step = Duration::from_millis(get(opts, "step-ms", 1u64)?.max(1));
    let hold = Duration::from_millis(
        get(opts, "hold-ms", (ms / (rounds as u64 * 4)).clamp(250, 1500))?.max(100),
    );
    let out = opts.get("out").map(String::as_str).unwrap_or("BENCH_fallback.json");
    if nodes < 4 {
        return Err("--nodes must be at least 4 (a crash must leave n >= 3 live)".into());
    }

    // Spawn deliberately at K = n + 1: zero growth headroom, so phase C's
    // join is refused AtCapacity until the K renegotiation commits.
    let k0 = nodes as u32 + 1;
    let params = ssrmin::RingParams::new(nodes, k0).map_err(|e| e.to_string())?;
    let cfg = MembershipConfig {
        tick,
        seed,
        fallback: Some(FallbackConfig { step, seed: seed ^ 0xFA11_BAC6 }),
        ..MembershipConfig::default()
    };
    let mut ring = RingMembership::spawn(params, cfg).map_err(|e| e.to_string())?;
    let envelope = convergence_envelope(nodes, tick).max(Duration::from_millis(400));
    let settle = (envelope * 4).max(Duration::from_secs(2));
    if ring.wait_reconverged(settle).is_none() {
        return Err("the ring never converged before the soak".into());
    }
    let quiesce = ring.fallback_quiesce().expect("fallback configured");
    println!(
        "fallback soak: {nodes} nodes, K = {k0} (no headroom), tick = {tick:?}, \
         walker step = {step:?}, quiesce = {quiesce:?}, {rounds} rounds x {hold:?} hold, \
         seed = {seed}"
    );

    // Phase A — handshake baseline: message and activation rate of the
    // intact ring, the denominator of the message-cost comparison.
    let baseline = Duration::from_millis((ms / 4).clamp(500, 3000));
    let (sends0, act0) = ring_traffic(&ring);
    std::thread::sleep(baseline);
    let (sends1, act1) = ring_traffic(&ring);
    let base_sends = sends1 - sends0;
    let base_sends_per_sec = base_sends as f64 / baseline.as_secs_f64();
    println!(
        "baseline ({baseline:?}): {base_sends} datagrams ({base_sends_per_sec:.0}/s), \
         {} CS activations",
        act1 - act0,
    );

    // Phase B — broken-ring windows: crash a member, let the walker serve
    // the segment for the hold window, restart, measure the hand-back.
    let mut round_rows: Vec<FallbackRound> = Vec::new();
    for round in 0..rounds {
        let victim = 1 + (round % (nodes - 1));
        let live = nodes - 1;
        let cover = cover_time_envelope(live, step);
        let stats0 = ring.fallback_stats().expect("fallback configured");
        let windows_before = ring.fallback_windows().len();
        ring.crash(victim).map_err(|e| format!("crash position {victim}: {e}"))?;
        if !ring.degraded() {
            return Err(format!("round {round}: ring not degraded after the crash"));
        }
        std::thread::sleep(hold);
        let handback = Instant::now();
        ring.restart(victim).map_err(|e| format!("restart position {victim}: {e}"))?;
        let handback_ms = handback.elapsed().as_millis() as u64;
        if ring.degraded() {
            return Err(format!("round {round}: ring still degraded after the restart"));
        }
        let reconverge = ring.wait_reconverged(envelope * 4);
        let stats1 = ring.fallback_stats().expect("fallback configured");

        // Grant-gap analysis over this round's degraded interval: from
        // eligibility (entry + quiesce) through each walker grant to the
        // exit, no gap may exceed the cover-time envelope.
        let switches = ring.fallback_switches();
        let entered = switches[switches.len() - 2];
        let exited = switches[switches.len() - 1];
        debug_assert!(entered.degraded && !exited.degraded);
        let eligible_us = entered.at_us + quiesce.as_micros() as u64;
        let mut grant_starts: Vec<u64> = ring.fallback_windows()[windows_before..]
            .iter()
            .filter(|w| w.mode == GrantMode::Walker)
            .map(|w| w.from_us)
            .collect();
        grant_starts.sort_unstable();
        let mut max_gap = 0u64;
        let mut cursor = eligible_us;
        for &at in &grant_starts {
            max_gap = max_gap.max(at.saturating_sub(cursor));
            cursor = at;
        }
        max_gap = max_gap.max(exited.at_us.saturating_sub(cursor));
        let cover_us = cover.as_micros() as u64;
        // The walker thread polls every step period, so allow one period of
        // scheduling slack on top of the envelope.
        let gap_ok = max_gap <= cover_us + step.as_micros() as u64;

        let walker_grants = stats1.grants - stats0.grants;
        let walker_steps = stats1.steps - stats0.steps;
        let row = FallbackRound {
            victim,
            hold_ms: hold.as_millis() as u64,
            live,
            walker_grants,
            walker_steps,
            regenerations: stats1.regenerations - stats0.regenerations,
            max_gap_us: max_gap,
            cover_envelope_us: cover_us,
            gap_ok,
            handback_ms,
            reconverge_ms: reconverge.map(|d| d.as_millis() as u64),
            walker_msgs_per_sec: walker_steps as f64 / hold.as_secs_f64(),
        };
        println!(
            "round {round}: crash P{victim} ({live} live) -> {walker_grants} walker grants, \
             {walker_steps} steps ({:.0} msgs/s vs {base_sends_per_sec:.0} handshake), \
             {} regenerations, max gap {}us (cover envelope {}us{}), hand-back {}ms, \
             reconverge {}",
            row.walker_msgs_per_sec,
            row.regenerations,
            max_gap,
            cover_us,
            if gap_ok { "" } else { " ** STALL **" },
            handback_ms,
            row.reconverge_ms.map(|t| format!("{t}ms")).unwrap_or_else(|| "never".into()),
        );
        round_rows.push(row);
    }

    // Phase C — K renegotiation under live load: the join must be refused
    // at K = n + 1, accepted after the two-phase K bump.
    let at_capacity = match ring.join() {
        Err(e @ MembershipError::AtCapacity { .. }) => e.to_string(),
        Ok(slot) => return Err(format!("join at K capacity unexpectedly succeeded (slot {slot})")),
        Err(e) => return Err(format!("join at K capacity failed oddly: {e}")),
    };
    println!("join at capacity refused: {at_capacity}");
    let k1 = 2 * nodes as u32 + 2;
    let reneg_at = Instant::now();
    ring.renegotiate_k(k1).map_err(|e| format!("renegotiate K -> {k1}: {e}"))?;
    let renegotiate_ms = reneg_at.elapsed().as_millis() as u64;
    if ring.wait_reconverged(envelope * 4).is_none() {
        return Err("the ring never reconverged after the K renegotiation".into());
    }
    let joined = ring.join().map_err(|e| format!("post-renegotiation join: {e}"))?;
    let grow_envelope = convergence_envelope(ring.n(), tick).max(Duration::from_millis(400));
    let grow_reconverge = ring.wait_reconverged(grow_envelope * 4);
    println!(
        "K renegotiated {k0} -> {k1} in {renegotiate_ms}ms under live load; \
         join now succeeds (slot {joined}, n = {}), reconverged {}",
        ring.n(),
        grow_reconverge.map(|d| format!("{d:?}")).unwrap_or_else(|| "NEVER".into()),
    );

    // The handover audit across everything the soak did: every walker
    // grant confined to quiesced degraded intervals, no cross-mode overlap,
    // no handshake rule engine firing while suspended.
    let violations = ring.fallback_audit();
    let stats = ring.fallback_stats().expect("fallback configured");
    let drain_timeouts = ring.drain_timeouts();
    let renegotiations = ring.k_renegotiations();
    ring.stop();
    println!(
        "fallback totals: {} entries / {} exits, {} steps, {} grants, {} regenerations; \
         handover audit: {}",
        stats.entries,
        stats.exits,
        stats.steps,
        stats.grants,
        stats.regenerations,
        if violations.is_empty() {
            "clean".to_string()
        } else {
            format!("{} VIOLATION(S)", violations.len())
        },
    );
    for v in &violations {
        println!("  audit: {v}");
    }

    let doc = Json::obj(vec![
        ("schema", Json::str("ssrmin-fallback/v1")),
        ("nodes", Json::num(nodes as f64)),
        ("k_spawn", Json::num(k0 as f64)),
        ("k_renegotiated", Json::num(k1 as f64)),
        ("tick_ms", Json::num(tick.as_millis() as f64)),
        ("step_ms", Json::num(step.as_millis() as f64)),
        ("quiesce_us", Json::num(quiesce.as_micros() as f64)),
        ("seed", Json::num(seed as f64)),
        (
            "baseline",
            Json::obj(vec![
                ("ms", Json::num(baseline.as_millis() as f64)),
                ("sends", Json::num(base_sends as f64)),
                ("sends_per_sec", Json::Num(base_sends_per_sec)),
                ("activations", Json::num((act1 - act0) as f64)),
            ]),
        ),
        (
            "rounds",
            Json::Arr(
                round_rows
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("victim", Json::num(r.victim as f64)),
                            ("hold_ms", Json::num(r.hold_ms as f64)),
                            ("live", Json::num(r.live as f64)),
                            ("walker_grants", Json::num(r.walker_grants as f64)),
                            ("walker_steps", Json::num(r.walker_steps as f64)),
                            ("walker_msgs_per_sec", Json::Num(r.walker_msgs_per_sec)),
                            ("regenerations", Json::num(r.regenerations as f64)),
                            ("max_gap_us", Json::num(r.max_gap_us as f64)),
                            ("cover_envelope_us", Json::num(r.cover_envelope_us as f64)),
                            ("gap_ok", Json::Bool(r.gap_ok)),
                            ("handback_ms", Json::num(r.handback_ms as f64)),
                            (
                                "reconverge_ms",
                                r.reconverge_ms.map(|t| Json::num(t as f64)).unwrap_or(Json::Null),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "renegotiation",
            Json::obj(vec![
                ("refused", Json::str(&at_capacity)),
                ("renegotiate_ms", Json::num(renegotiate_ms as f64)),
                ("joined_slot", Json::num(joined as f64)),
                ("n_after", Json::num((nodes + 1) as f64)),
                (
                    "reconverge_ms",
                    grow_reconverge.map(|d| Json::num(d.as_millis() as f64)).unwrap_or(Json::Null),
                ),
                ("renegotiations", Json::num(renegotiations as f64)),
            ]),
        ),
        (
            "fallback",
            Json::obj(vec![
                ("entries", Json::num(stats.entries as f64)),
                ("exits", Json::num(stats.exits as f64)),
                ("steps", Json::num(stats.steps as f64)),
                ("grants", Json::num(stats.grants as f64)),
                ("regenerations", Json::num(stats.regenerations as f64)),
            ]),
        ),
        ("drain_timeouts", Json::num(drain_timeouts as f64)),
        ("audit_violations", Json::Arr(violations.iter().map(Json::str).collect())),
    ]);
    std::fs::write(out, doc.render() + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");

    if !violations.is_empty() {
        return Err(format!("{} handover audit violation(s)", violations.len()));
    }
    let stalls = round_rows.iter().filter(|r| !r.gap_ok).count();
    if stalls > 0 {
        return Err(format!("{stalls} degraded window(s) stalled past the cover-time envelope"));
    }
    if round_rows.iter().any(|r| r.walker_grants == 0) {
        return Err("a degraded window produced no walker grants".into());
    }
    if grow_reconverge.is_none() {
        return Err("the grown ring never reconverged after the renegotiated join".into());
    }
    Ok(())
}

/// Per-segment service measurements of one `ssrmin partition` round.
struct PartitionDomain {
    domain: u64,
    live: usize,
    grants: u64,
    max_gap_us: u64,
    cover_envelope_us: u64,
    gap_ok: bool,
}

/// One multi-hole round of a `ssrmin partition` soak.
struct PartitionRound {
    victims: Vec<usize>,
    segments: usize,
    hold_ms: u64,
    domains: Vec<PartitionDomain>,
    sched_stall_us: u64,
    starved: usize,
    merges: u64,
    merge_latencies_us: Vec<u64>,
    handback_us: u64,
    reconverge_ms: Option<u64>,
}

/// `ssrmin partition` — the partition-tolerance soak: multi-hole crash
/// windows splitting the ring into several live arcs, one segment walker
/// per arc, staggered heals exercising merge-on-heal, and the handover
/// audit across every split/merge interleaving; writes BENCH_partition.json.
fn cmd_partition(opts: &Opts) -> Result<(), String> {
    let nodes: usize = get(opts, "nodes", 9usize)?;
    let holes: usize = get(opts, "holes", 2usize)?;
    if !(2..=4).contains(&holes) {
        return Err("--holes must be between 2 and 4 (one hole is `ssrmin fallback`)".into());
    }
    if nodes < 2 * holes + 1 {
        return Err(format!(
            "--nodes must be at least {} for {holes} pairwise non-adjacent holes",
            2 * holes + 1
        ));
    }
    let ms: u64 = get(opts, "ms", 8000u64)?;
    if ms < 1500 {
        return Err("--ms must be at least 1500 (baseline + rounds)".into());
    }
    let rounds: usize = get(opts, "rounds", 2usize)?.max(1);
    let seed: u64 = get(opts, "seed", 0u64)?;
    let tick = Duration::from_millis(get(opts, "tick-ms", 5u64)?.max(1));
    let step = Duration::from_millis(get(opts, "step-ms", 1u64)?.max(1));
    let hold = Duration::from_millis(
        get(opts, "hold-ms", (ms / (rounds as u64 * 4)).clamp(300, 1500))?.max(150),
    );
    let out = opts.get("out").map(String::as_str).unwrap_or("BENCH_partition.json");

    let params = ssrmin::RingParams::new(nodes, nodes as u32 + 1).map_err(|e| e.to_string())?;
    let cfg = MembershipConfig {
        tick,
        seed,
        fallback: Some(FallbackConfig { step, seed: seed ^ 0x9A27_1170 }),
        ..MembershipConfig::default()
    };
    let mut ring = RingMembership::spawn(params, cfg).map_err(|e| e.to_string())?;
    let envelope = convergence_envelope(nodes, tick).max(Duration::from_millis(400));
    let settle = (envelope * 4).max(Duration::from_secs(2));
    if ring.wait_reconverged(settle).is_none() {
        return Err("the ring never converged before the soak".into());
    }
    let quiesce = ring.fallback_quiesce().expect("fallback configured");
    println!(
        "partition soak: {nodes} nodes, {holes} holes, tick = {tick:?}, walker step = {step:?}, \
         quiesce = {quiesce:?}, {rounds} rounds x {hold:?} hold, seed = {seed}"
    );

    // Baseline: the intact ring's handshake traffic, for the comparison row.
    let baseline = Duration::from_millis((ms / 5).clamp(400, 2000));
    let (sends0, act0) = ring_traffic(&ring);
    std::thread::sleep(baseline);
    let (sends1, act1) = ring_traffic(&ring);
    let base_sends = sends1 - sends0;
    let base_sends_per_sec = base_sends as f64 / baseline.as_secs_f64();
    println!(
        "baseline ({baseline:?}): {base_sends} datagrams ({base_sends_per_sec:.0}/s), \
         {} CS activations",
        act1 - act0,
    );

    let mut round_rows: Vec<PartitionRound> = Vec::new();
    for round in 0..rounds {
        let victims = ssrmin::cli::spaced_victims(nodes, holes, seed.wrapping_add(round as u64))?;
        let windows_before = ring.fallback_windows().len();
        let merges_before = ring.fallback_merges().len();

        // Near-simultaneous crash windows: every victim goes down before
        // any heal, splitting the ring into `holes` live arcs at once.
        for &v in &victims {
            ring.crash(v).map_err(|e| format!("round {round}: crash position {v}: {e}"))?;
        }
        if !ring.degraded() {
            return Err(format!("round {round}: ring not degraded after {holes} crashes"));
        }
        let segments = ring.fallback_segments();
        if segments != holes {
            return Err(format!(
                "round {round}: {holes} non-adjacent holes must cut {holes} segments, got \
                 {segments}"
            ));
        }
        let segment_snapshot = ring.fallback_segment_detail();
        std::thread::sleep(hold);

        // Staggered heals, measuring each merge-on-heal: all but the last
        // heal re-joins two arcs (retiring a walker); the last closes the
        // ring and hands back to the handshake.
        let mut merge_latencies_us = Vec::new();
        let mut handback_us = 0;
        for (i, &v) in victims.iter().enumerate() {
            let merges_at = ring.fallback_merges().len();
            let heal = Instant::now();
            ring.restart(v).map_err(|e| format!("round {round}: restart position {v}: {e}"))?;
            let took = heal.elapsed().as_micros() as u64;
            if ring.fallback_merges().len() > merges_at {
                merge_latencies_us.push(took);
            }
            if i + 1 == victims.len() {
                handback_us = took;
            } else {
                std::thread::sleep(hold / (2 * holes as u32));
            }
        }
        if ring.degraded() {
            return Err(format!("round {round}: ring still degraded after all heals"));
        }
        let reconverge = ring.wait_reconverged(envelope * 4);
        let merges = (ring.fallback_merges().len() - merges_before) as u64;

        // Per-domain service analysis: group this round's walker grants by
        // segment domain; every arc must have been served (zero starved
        // arcs) with consecutive grant gaps inside its own 4(m-1)^2
        // envelope. One walker thread ticks every domain, so a scheduler
        // stall of that thread (real on a loaded single-core host) gaps
        // every domain at once — measure it as the max gap in the union
        // of all walker grants and allow each domain that much extra on
        // top of its envelope, plus the quiesce a merge survivor re-pays.
        // A protocol-level starvation (one walker stuck while the thread
        // keeps granting elsewhere) still exceeds the allowance.
        let new_windows = ring.fallback_windows()[windows_before..].to_vec();
        let mut all_starts: Vec<u64> =
            new_windows.iter().filter(|w| w.mode == GrantMode::Walker).map(|w| w.from_us).collect();
        all_starts.sort_unstable();
        let sched_stall_us = all_starts.windows(2).map(|p| p[1] - p[0]).max().unwrap_or(0);
        let slack_us = sched_stall_us + step.as_micros() as u64 + quiesce.as_micros() as u64;
        let mut domains = Vec::new();
        let mut starved = 0usize;
        for seg in &segment_snapshot {
            let mut starts: Vec<u64> = new_windows
                .iter()
                .filter(|w| w.mode == GrantMode::Walker && w.domain == seg.domain)
                .map(|w| w.from_us)
                .collect();
            starts.sort_unstable();
            let m = seg.positions.len();
            let cover_us = cover_time_envelope(m, step).as_micros() as u64;
            let max_gap = starts
                .windows(2)
                .map(|p| p[1] - p[0])
                .max()
                .unwrap_or(u64::from(starts.is_empty()));
            let gap_ok = !starts.is_empty() && max_gap <= cover_us + slack_us;
            if starts.is_empty() {
                starved += 1;
            }
            domains.push(PartitionDomain {
                domain: seg.domain,
                live: m,
                grants: starts.len() as u64,
                max_gap_us: max_gap,
                cover_envelope_us: cover_us,
                gap_ok,
            });
        }

        let row = PartitionRound {
            victims: victims.clone(),
            segments,
            hold_ms: hold.as_millis() as u64,
            domains,
            sched_stall_us,
            starved,
            merges,
            merge_latencies_us,
            handback_us,
            reconverge_ms: reconverge.map(|d| d.as_millis() as u64),
        };
        println!(
            "round {round}: crash {:?} -> {segments} segments; per-domain grants {}; \
             walker stall {sched_stall_us}us; {merges} merge(s) in {:?}us, hand-back \
             {handback_us}us, reconverge {}",
            row.victims,
            row.domains
                .iter()
                .map(|d| format!(
                    "D{}:{} (m={}, max gap {}us / envelope {}us{})",
                    d.domain,
                    d.grants,
                    d.live,
                    d.max_gap_us,
                    d.cover_envelope_us,
                    if d.gap_ok { "" } else { " ** STALL **" },
                ))
                .collect::<Vec<_>>()
                .join(", "),
            row.merge_latencies_us,
            row.reconverge_ms.map(|t| format!("{t}ms")).unwrap_or_else(|| "never".into()),
        );
        round_rows.push(row);
    }

    let violations = ring.fallback_audit();
    let stats = ring.fallback_stats().expect("fallback configured");
    ring.stop();
    println!(
        "partition totals: {} entries / {} exits, {} walkers minted, {} merges, {} steps, \
         {} grants, {} regenerations; handover audit: {}",
        stats.entries,
        stats.exits,
        stats.walkers,
        stats.merges,
        stats.steps,
        stats.grants,
        stats.regenerations,
        if violations.is_empty() {
            "clean".to_string()
        } else {
            format!("{} VIOLATION(S)", violations.len())
        },
    );
    for v in &violations {
        println!("  audit: {v}");
    }

    let doc = Json::obj(vec![
        ("schema", Json::str("ssrmin-partition/v1")),
        ("nodes", Json::num(nodes as f64)),
        ("holes", Json::num(holes as f64)),
        ("tick_ms", Json::num(tick.as_millis() as f64)),
        ("step_ms", Json::num(step.as_millis() as f64)),
        ("quiesce_us", Json::num(quiesce.as_micros() as f64)),
        ("seed", Json::num(seed as f64)),
        (
            "baseline",
            Json::obj(vec![
                ("ms", Json::num(baseline.as_millis() as f64)),
                ("sends", Json::num(base_sends as f64)),
                ("sends_per_sec", Json::Num(base_sends_per_sec)),
                ("activations", Json::num((act1 - act0) as f64)),
            ]),
        ),
        (
            "rounds",
            Json::Arr(
                round_rows
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            (
                                "victims",
                                Json::Arr(r.victims.iter().map(|&v| Json::num(v as f64)).collect()),
                            ),
                            ("segments", Json::num(r.segments as f64)),
                            ("hold_ms", Json::num(r.hold_ms as f64)),
                            (
                                "domains",
                                Json::Arr(
                                    r.domains
                                        .iter()
                                        .map(|d| {
                                            Json::obj(vec![
                                                ("domain", Json::num(d.domain as f64)),
                                                ("live", Json::num(d.live as f64)),
                                                ("grants", Json::num(d.grants as f64)),
                                                ("max_gap_us", Json::num(d.max_gap_us as f64)),
                                                (
                                                    "cover_envelope_us",
                                                    Json::num(d.cover_envelope_us as f64),
                                                ),
                                                ("gap_ok", Json::Bool(d.gap_ok)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            ("sched_stall_us", Json::num(r.sched_stall_us as f64)),
                            ("starved", Json::num(r.starved as f64)),
                            ("merges", Json::num(r.merges as f64)),
                            (
                                "merge_latencies_us",
                                Json::Arr(
                                    r.merge_latencies_us
                                        .iter()
                                        .map(|&t| Json::num(t as f64))
                                        .collect(),
                                ),
                            ),
                            ("handback_us", Json::num(r.handback_us as f64)),
                            (
                                "reconverge_ms",
                                r.reconverge_ms.map(|t| Json::num(t as f64)).unwrap_or(Json::Null),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fallback",
            Json::obj(vec![
                ("entries", Json::num(stats.entries as f64)),
                ("exits", Json::num(stats.exits as f64)),
                ("walkers", Json::num(stats.walkers as f64)),
                ("merges", Json::num(stats.merges as f64)),
                ("steps", Json::num(stats.steps as f64)),
                ("grants", Json::num(stats.grants as f64)),
                ("regenerations", Json::num(stats.regenerations as f64)),
            ]),
        ),
        ("audit_violations", Json::Arr(violations.iter().map(Json::str).collect())),
    ]);
    std::fs::write(out, doc.render() + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");

    if !violations.is_empty() {
        return Err(format!("{} handover audit violation(s)", violations.len()));
    }
    let starved: usize = round_rows.iter().map(|r| r.starved).sum();
    if starved > 0 {
        return Err(format!("{starved} live arc(s) starved during their degraded windows"));
    }
    let stalls: usize = round_rows.iter().flat_map(|r| &r.domains).filter(|d| !d.gap_ok).count();
    if stalls > 0 {
        return Err(format!("{stalls} segment(s) stalled past their cover-time envelope"));
    }
    let expected_merges = (holes - 1) as u64;
    if let Some(r) = round_rows.iter().find(|r| r.merges < expected_merges) {
        return Err(format!(
            "a round committed {} merge(s); {holes} staggered heals must commit at least \
             {expected_merges}",
            r.merges
        ));
    }
    if round_rows.iter().any(|r| r.reconverge_ms.is_none()) {
        return Err("the healed ring never reconverged after a round".into());
    }
    Ok(())
}

/// One measured event of a `ssrmin netem` sweep: the initial convergence or
/// one corruption recovery, with its Theorem 2 comparison.
struct NetemPoint {
    seed: u64,
    kind: String,
    at: u64,
    recover: Option<u64>,
    ok: bool,
}

/// Aggregate of one profile across all seeds.
struct NetemProfileRow {
    profile: String,
    converged: usize,
    recovered: usize,
    faults: usize,
    max_recover: u64,
    mean_recover: f64,
    violations: usize,
    losses: u64,
    buffer_drops: u64,
    curve: Vec<NetemPoint>,
}

/// Parse `--profiles a,b,c` (default `lan,wan,lossy-wan`).
fn netem_profiles(opts: &Opts) -> Result<Vec<String>, String> {
    let names: Vec<String> = match opts.get("profiles") {
        Some(list) => {
            list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect()
        }
        None => ["lan", "wan", "lossy-wan"].iter().map(|s| s.to_string()).collect(),
    };
    if names.is_empty() {
        return Err("--profiles needs at least one profile name".into());
    }
    Ok(names)
}

/// The Theorem 2 envelope in simulator ticks: `4·n²` retransmission
/// periods, the DES analogue of [`convergence_envelope`].
fn envelope_ticks(n: usize, timer: u64) -> u64 {
    4 * (n as u64) * (n as u64) * timer
}

/// A deterministic poison state for fault `f` of `seed`: node `victim`'s
/// entry in an independently seeded random configuration.
fn netem_poison(
    params: ssrmin::RingParams,
    seed: u64,
    f: usize,
    victim: usize,
) -> ssrmin::core::SsrState {
    let salt = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(f as u64);
    random_config::random_ssr_config(params, salt)[victim]
}

fn cmd_netem(opts: &Opts) -> Result<(), String> {
    let params = ring_params(opts, 5)?;
    let timer: u64 = get(opts, "timer-us", 20_000u64)?.max(1);
    let profiles = netem_profiles(opts)?;
    let seed0: u64 = get(opts, "seed", 0u64)?;
    if opts.contains_key("checkpoint") {
        return cmd_netem_checkpoint(opts, params, &profiles[0], seed0, timer);
    }

    let seeds: u64 = get(opts, "seeds", 5u64)?.max(1);
    let faults: usize = get(opts, "faults", 3usize)?;
    let out = opts.get("out").map(String::as_str).unwrap_or("BENCH_netem.json");
    let n = params.n();
    let envelope = envelope_ticks(n, timer);
    let window = 2 * timer;
    let algo = SsrMin::new(params);
    println!(
        "netem sweep: n = {n}, k = {}, profiles {profiles:?}, {seeds} seeds x {faults} faults, \
         timer = {timer} us",
        params.k(),
    );
    println!("Theorem 2 envelope (4n^2 timer periods): {envelope} us\n");
    println!(
        "{:<12} {:>9} {:>11} {:>13} {:>13} {:>10} {:>12}",
        "profile", "converged", "recovered", "mean-recover", "max-recover", "violations", "drops"
    );

    let mut rows = Vec::new();
    for name in &profiles {
        let profile = ssrmin::netem::LinkProfile::resolve(name).map_err(|e| e.to_string())?;
        let mut row = NetemProfileRow {
            profile: profile.name.clone(),
            converged: 0,
            recovered: 0,
            faults: 0,
            max_recover: 0,
            mean_recover: 0.0,
            violations: 0,
            losses: 0,
            buffer_drops: 0,
            curve: Vec::new(),
        };
        let mut recover_sum = 0u64;
        for s in 0..seeds {
            let seed = seed0.wrapping_add(s);
            let cfg = SimConfig { seed, timer_interval: timer, ..SimConfig::default() };
            let initial = random_config::random_ssr_config(params, seed ^ 0x5EED);
            let mut sim = CstSim::new(algo, initial, cfg).map_err(|e| e.to_string())?;
            sim.set_netem(&profile, seed);

            // Initial convergence from a random configuration (Theorem 4
            // operationally: the ground config enters the legitimate cycle
            // and stays there for a full window).
            let conv = sim.run_until_stably_legitimate(20 * envelope, window);
            let ok = conv.is_some_and(|t| t <= envelope);
            row.converged += usize::from(conv.is_some());
            row.violations += usize::from(!ok);
            row.curve.push(NetemPoint { seed, kind: "converge".into(), at: 0, recover: conv, ok });
            if conv.is_none() {
                continue; // state unknown — corrupting it measures nothing
            }

            // E15/E17-style single-fault recoveries: overwrite one node's
            // state, measure time back to stable legitimacy.
            for f in 0..faults {
                let victim = (seed as usize + 1 + 2 * f) % n;
                let fault_at = sim.now() + 1;
                sim.schedule_corruption(fault_at, victim, netem_poison(params, seed, f, victim));
                let since = sim.run_until_stably_legitimate(fault_at + 20 * envelope, window);
                let recover = since.map(|t| t.saturating_sub(fault_at));
                let ok = recover.is_some_and(|t| t <= envelope);
                row.faults += 1;
                row.violations += usize::from(!ok);
                if let Some(t) = recover {
                    row.recovered += 1;
                    recover_sum += t;
                    row.max_recover = row.max_recover.max(t);
                }
                row.curve.push(NetemPoint {
                    seed,
                    kind: format!("corrupt P{victim}"),
                    at: fault_at,
                    recover,
                    ok,
                });
            }
            let stats = sim.stats();
            row.losses += stats.losses;
            row.buffer_drops += sim.netem_buffer_drops();
        }
        row.mean_recover =
            if row.recovered > 0 { recover_sum as f64 / row.recovered as f64 } else { 0.0 };
        println!(
            "{:<12} {:>6}/{:<2} {:>8}/{:<2} {:>10.0}us {:>11}us {:>10} {:>12}",
            row.profile,
            row.converged,
            seeds,
            row.recovered,
            row.faults,
            row.mean_recover,
            row.max_recover,
            row.violations,
            row.buffer_drops,
        );
        rows.push(row);
    }

    let doc = Json::obj(vec![
        ("schema", Json::str("ssrmin-netem/v1")),
        ("n", Json::num(n as f64)),
        ("k", Json::num(params.k() as f64)),
        ("timer_us", Json::num(timer as f64)),
        ("envelope_us", Json::num(envelope as f64)),
        ("seeds", Json::num(seeds as f64)),
        ("faults_per_seed", Json::num(faults as f64)),
        ("seed", Json::num(seed0 as f64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("profile", Json::str(&r.profile)),
                            ("converged", Json::num(r.converged as f64)),
                            ("recovered", Json::num(r.recovered as f64)),
                            ("faults", Json::num(r.faults as f64)),
                            ("mean_recover_us", Json::Num(r.mean_recover)),
                            ("max_recover_us", Json::num(r.max_recover as f64)),
                            ("envelope_violations", Json::num(r.violations as f64)),
                            ("losses", Json::num(r.losses as f64)),
                            ("netem_buffer_drops", Json::num(r.buffer_drops as f64)),
                            (
                                "curve",
                                Json::Arr(
                                    r.curve
                                        .iter()
                                        .map(|p| {
                                            Json::obj(vec![
                                                ("seed", Json::num(p.seed as f64)),
                                                ("kind", Json::str(&p.kind)),
                                                ("at_us", Json::num(p.at as f64)),
                                                (
                                                    "recover_us",
                                                    p.recover
                                                        .map(|t| Json::num(t as f64))
                                                        .unwrap_or(Json::Null),
                                                ),
                                                ("ok", Json::Bool(p.ok)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(out, doc.render() + "\n").map_err(|e| format!("write {out}: {e}"))?;
    println!("\nwrote {out}");

    let bad: usize = rows.iter().map(|r| r.violations).sum();
    if bad > 0 {
        return Err(format!("{bad} event(s) outside the Theorem 2 envelope"));
    }
    Ok(())
}

/// Meta payload a `--checkpoint` run stores in the container (and `replay`
/// reads back): four LE u64 words — n, k, end tick, transcript capacity.
fn encode_replay_meta(params: ssrmin::RingParams, t_end: u64, tail: usize) -> Vec<u8> {
    let mut b = Vec::with_capacity(32);
    for v in [params.n() as u64, u64::from(params.k()), t_end, tail as u64] {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b
}

fn decode_replay_meta(meta: &[u8]) -> Result<(ssrmin::RingParams, u64, usize), String> {
    if meta.len() != 32 {
        return Err(format!("checkpoint meta is {} bytes, expected 32", meta.len()));
    }
    let word = |i: usize| u64::from_le_bytes(meta[8 * i..8 * i + 8].try_into().expect("8 bytes"));
    let params = ssrmin::RingParams::new(word(0) as usize, word(1) as u32)
        .map_err(|e| format!("checkpoint meta ring params: {e}"))?;
    Ok((params, word(2), word(3) as usize))
}

/// The replay-compared outcome: the transcript tail plus a verdict block.
/// Determinism contract: a restored run and the original produce this text
/// byte-for-byte identically.
fn netem_outcome(sim: &CstSim<SsrMin>) -> String {
    let stats = sim.stats();
    let legit = sim.algorithm().is_legitimate(&sim.ground_config());
    format!(
        "{}---\nt_end {}\nevents {}\ntransmissions {}\nlosses {}\nnetem_buffer_drops {}\n\
         rules_executed {}\nprivileged {:?}\nlegitimate {}\nverdict {}\n",
        sim.transcript().expect("transcript enabled").render(),
        sim.now(),
        stats.events,
        stats.transmissions,
        stats.losses,
        sim.netem_buffer_drops(),
        stats.rules_executed,
        sim.local_privileged(),
        legit,
        if legit && (1..=2).contains(&sim.local_privileged().len()) { "PASS" } else { "FAIL" },
    )
}

/// Write `text` to `--transcript-out` if given, else stdout.
fn emit_outcome(opts: &Opts, text: &str) -> Result<(), String> {
    match opts.get("transcript-out") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote transcript + verdict to {path}");
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// The `--checkpoint` arm of `ssrmin netem`: one faulted deterministic run,
/// snapshotted mid-flight, finished, and its outcome emitted for `ssrmin
/// replay` to reproduce.
fn cmd_netem_checkpoint(
    opts: &Opts,
    params: ssrmin::RingParams,
    profile: &str,
    seed: u64,
    timer: u64,
) -> Result<(), String> {
    let ck_path = opts.get("checkpoint").expect("caller checked");
    let ticks: u64 = get(opts, "ticks", 40 * envelope_ticks(params.n(), timer))?;
    let ck_at: u64 = get(opts, "checkpoint-at", ticks / 2)?;
    let tail: usize = get(opts, "tail", 64usize)?.max(1);
    let faults: usize = get(opts, "faults", 3usize)?;
    if ck_at >= ticks {
        return Err(format!("--checkpoint-at {ck_at} must be before --ticks {ticks}"));
    }
    let profile = ssrmin::netem::LinkProfile::resolve(profile).map_err(|e| e.to_string())?;
    let algo = SsrMin::new(params);
    let cfg = SimConfig { seed, timer_interval: timer, ..SimConfig::default() };
    let initial = random_config::random_ssr_config(params, seed ^ 0x5EED);
    let mut sim = CstSim::new(algo, initial, cfg).map_err(|e| e.to_string())?;
    sim.set_netem(&profile, seed);
    // A seeded fault schedule spread over the whole run, so corruptions
    // straddle the checkpoint: some land before it (already absorbed),
    // the rest ride the snapshot's fault cursor into the replay.
    let n = params.n();
    for f in 0..faults {
        let at = (f as u64 + 1) * ticks / (faults as u64 + 1);
        let victim = (seed as usize + 1 + 2 * f) % n;
        sim.schedule_corruption(at, victim, netem_poison(params, seed, f, victim));
    }

    sim.run_until(ck_at);
    let bytes = sim.checkpoint(&encode_replay_meta(params, ticks, tail));
    std::fs::write(ck_path, &bytes).map_err(|e| format!("write {ck_path}: {e}"))?;
    println!(
        "checkpoint: n = {n}, k = {}, profile '{}', seed {seed}, {faults} fault(s) — \
         {} bytes at t = {ck_at} of {ticks} -> {ck_path}",
        params.k(),
        profile.name,
        bytes.len(),
    );

    // Finish the run recording the post-checkpoint transcript — exactly
    // the stretch a replayed restore will re-execute.
    sim.enable_transcript(tail);
    sim.run_until(ticks);
    emit_outcome(opts, &netem_outcome(&sim))
}

fn cmd_replay(opts: &Opts) -> Result<(), String> {
    let path = opts.get("from").ok_or("replay needs --from FILE (see ssrmin help)")?;
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    // The ring dimensions travel in the meta chunk; peek at it to build
    // the algorithm before the full restore.
    let reader = ssrmin::netem::ChunkReader::parse_kind(&bytes, ssrmin::mpnet::CHECKPOINT_KIND_DES)
        .map_err(|e| format!("{path}: {e}"))?;
    let meta = reader
        .find(*b"meta")
        .ok_or_else(|| format!("{path}: checkpoint has no meta chunk"))?
        .to_vec();
    let (params, t_end, tail) = decode_replay_meta(&meta)?;
    let algo = SsrMin::new(params);
    let (mut sim, _) = CstSim::restore(algo, &bytes).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "replay: n = {}, k = {}, restored at t = {} — running to t = {t_end}",
        params.n(),
        params.k(),
        sim.now(),
    );
    sim.enable_transcript(tail);
    sim.run_until(t_end);
    emit_outcome(opts, &netem_outcome(&sim))
}

const CTL_USAGE: &str = "\
usage: ssrmin ctl URL metrics|status|top
       ssrmin ctl URL chaos partition F T | heal F T | loss P|off |
                            corrupt P|off | truncate P|off | netem NAME|off
       ssrmin ctl URL fault crash N [amnesia|snapshot] | restart N |
                            partition F T | heal F T | corrupt-snapshot N |
                            corrupt-state N | freeze N | babble N";

/// `ssrmin ctl <url> <command...>` — one-shot client against a running
/// ring's `--ctl-addr` control plane.
fn cmd_ctl(args: &[String]) -> Result<(), String> {
    let Some((url, words)) = args.split_first() else {
        return Err(CTL_USAGE.to_string());
    };
    let reply = match words.split_first().map(|(w, rest)| (w.as_str(), rest)) {
        Some(("metrics", [])) => ssrmin::ctl::get(url, "/metrics"),
        Some(("status", [])) => ssrmin::ctl::get(url, "/status"),
        Some(("top", [])) => ssrmin::ctl::get(url, "/top"),
        Some(("chaos", rest)) if !rest.is_empty() => {
            ssrmin::ctl::post(url, "/chaos", &rest.join(" "))
        }
        Some(("fault" | "faults", rest)) if !rest.is_empty() => {
            ssrmin::ctl::post(url, "/faults", &rest.join(" "))
        }
        _ => return Err(CTL_USAGE.to_string()),
    }
    .map_err(|e| format!("{url}: {e}"))?;
    if !reply.ok() {
        return Err(format!("HTTP {}: {}", reply.status, reply.body.trim_end()));
    }
    print!("{}", reply.body);
    if !reply.body.ends_with('\n') {
        println!();
    }
    Ok(())
}

/// `ssrmin top <url> [--interval-ms MS] [--once]` — refreshing ASCII
/// dashboard of a running ring (fetches `/top` in a loop).
fn cmd_top(args: &[String]) -> Result<(), String> {
    let Some((url, rest)) = args.split_first() else {
        return Err("usage: ssrmin top URL [--interval-ms MS] [--once]".to_string());
    };
    let mut interval = Duration::from_millis(500);
    let mut once = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--once" => once = true,
            "--interval-ms" => {
                let v = it.next().ok_or_else(|| "--interval-ms needs a value".to_string())?;
                interval = Duration::from_millis(
                    v.parse().map_err(|_| format!("invalid value for --interval-ms: {v:?}"))?,
                );
            }
            other => return Err(format!("unknown top option {other:?}")),
        }
    }
    loop {
        let reply = ssrmin::ctl::get(url, "/top").map_err(|e| format!("{url}: {e}"))?;
        if !reply.ok() {
            return Err(format!("HTTP {}: {}", reply.status, reply.body.trim_end()));
        }
        if once {
            print!("{}", reply.body);
            return Ok(());
        }
        // ANSI clear + home, then the fresh dashboard.
        print!("\x1b[2J\x1b[H{}", reply.body);
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> Opts {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn subcommands_run_end_to_end() {
        cmd_run(&opts(&[("n", "4"), ("steps", "6")])).unwrap();
        cmd_simulate(&opts(&[("n", "4"), ("ticks", "2000")])).unwrap();
        cmd_simulate(&opts(&[("algo", "dijkstra"), ("ticks", "2000")])).unwrap();
        cmd_verify(&opts(&[("n", "3"), ("k", "4")])).unwrap();
        cmd_converge(&opts(&[("n", "5"), ("seeds", "3")])).unwrap();
        cmd_transcript(&opts(&[("n", "4"), ("ticks", "800"), ("tail", "6")])).unwrap();
        cmd_adversary(&opts(&[("n", "3"), ("k", "4"), ("budget", "300")])).unwrap();
    }

    #[test]
    fn unknown_values_error_cleanly() {
        assert!(cmd_run(&opts(&[("start", "bogus")])).is_err());
        assert!(cmd_simulate(&opts(&[("algo", "bogus")])).is_err());
        assert!(daemon_kind(&opts(&[("daemon", "bogus")])).is_err());
    }

    #[test]
    fn ctl_and_top_reject_bad_invocations() {
        assert!(cmd_ctl(&[]).is_err());
        let args: Vec<String> = ["127.0.0.1:9", "explode"].iter().map(|s| s.to_string()).collect();
        assert!(cmd_ctl(&args).is_err());
        assert!(cmd_top(&[]).is_err());
        let args: Vec<String> = ["127.0.0.1:9", "--bogus"].iter().map(|s| s.to_string()).collect();
        assert!(cmd_top(&args).is_err());
    }
}
