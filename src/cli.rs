//! Shared command-line plumbing for the `ssrmin` binary (and anything else
//! that wants its flag grammar).
//!
//! Every subcommand parses `--key value` pairs into an [`Opts`] map and
//! pulls typed values out with [`get`]. The helpers here are the pieces
//! that used to be duplicated across subcommands in the binary: ring
//! dimensioning ([`ring_params`] / [`cluster_params`]), the
//! `--start legit|random|adversarial` initial configuration
//! ([`start_config`]), the chaos knobs ([`chaos_from_opts`]), and the
//! optional `--ctl-addr` control listener ([`ctl_listener`]).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

use crate::analysis::DaemonKind;
use crate::core::{Config, RingParams, SsrMin, SsrState};
use crate::ctl::CtlListener;
use crate::daemon::random_config;
use crate::net::ChaosConfig;

/// Parsed `--key value` options of one subcommand invocation.
pub type Opts = HashMap<String, String>;

/// Flags that take no value; parsed as `flag -> "true"`.
pub const BOOL_FLAGS: &[&str] = &["csv", "burst"];

/// Split an argument vector into `(subcommand, options)`. Returns `None`
/// on a dangling flag or a bare word where a `--flag` was expected.
pub fn parse(args: &[String]) -> Option<(String, Opts)> {
    let mut it = args.iter();
    let cmd = it.next()?.clone();
    let mut opts = Opts::new();
    let mut key: Option<String> = None;
    for a in it {
        if let Some(k) = key.take() {
            opts.insert(k, a.clone());
        } else if let Some(stripped) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&stripped) {
                opts.insert(stripped.to_string(), "true".into());
                continue;
            }
            key = Some(stripped.to_string());
        } else if let Some(stripped) = a.strip_prefix('-') {
            key = Some(match stripped {
                "n" => "n".into(),
                "k" => "k".into(),
                other => other.to_string(),
            });
        } else {
            return None;
        }
    }
    if key.is_some() {
        return None; // dangling flag without value
    }
    Some((cmd, opts))
}

/// Fetch `--key` as a `T`, falling back to `default` when absent.
pub fn get<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: {v:?}")),
    }
}

/// Ring dimensions of the model-level subcommands: `-n` and `-k`, with
/// `-k 0` (or absent) meaning the minimal legal `n + 1`.
pub fn ring_params(opts: &Opts, default_n: usize) -> Result<RingParams, String> {
    let n: usize = get(opts, "n", default_n)?;
    let k: u32 = get(opts, "k", 0u32)?;
    let k = if k == 0 { n as u32 + 1 } else { k };
    RingParams::new(n, k).map_err(|e| e.to_string())
}

/// Ring dimensions of the UDP subcommands: `--nodes` (not `-n`, to make it
/// obvious these are OS threads with real sockets — though `-n` still
/// works) and `-k` defaulting to n + 1.
pub fn cluster_params(opts: &Opts, default_n: usize) -> Result<RingParams, String> {
    let n: usize = match opts.get("nodes") {
        Some(v) => v.parse().map_err(|_| format!("invalid value for --nodes: {v:?}"))?,
        None => get(opts, "n", default_n)?,
    };
    let k: u32 = get(opts, "k", 0u32)?;
    let k = if k == 0 { n as u32 + 1 } else { k };
    RingParams::new(n, k).map_err(|e| e.to_string())
}

/// The `--daemon central|sync|random|delay|distributed` scheduler choice.
pub fn daemon_kind(opts: &Opts) -> Result<DaemonKind, String> {
    match opts.get("daemon").map(String::as_str).unwrap_or("central") {
        "central" => Ok(DaemonKind::CentralFirst),
        "sync" | "synchronous" => Ok(DaemonKind::Synchronous),
        "random" => Ok(DaemonKind::CentralRandom),
        "delay" => Ok(DaemonKind::DelayDijkstra),
        "distributed" => Ok(DaemonKind::DistributedRandom(0.5)),
        other => Err(format!("unknown daemon {other:?}")),
    }
}

/// A fault knob that must be a probability: in `[0, 1]`, default 0.
pub fn probability(opts: &Opts, key: &str) -> Result<f64, String> {
    let p: f64 = get(opts, key, 0.0f64)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("--{key} must be a probability in [0, 1], got {p}"));
    }
    Ok(p)
}

/// The `--start legit|random|adversarial` initial configuration shared by
/// `run`, `cluster` and `soak`.
pub fn start_config(opts: &Opts, algo: &SsrMin, seed: u64) -> Result<Config<SsrState>, String> {
    match opts.get("start").map(String::as_str).unwrap_or("legit") {
        "legit" => Ok(algo.legitimate_anchor(0)),
        "random" => Ok(random_config::random_ssr_config(algo.params(), seed)),
        "adversarial" => Ok(random_config::adversarial_ssr_config(algo.params())),
        other => Err(format!("unknown start {other:?}")),
    }
}

/// The chaos knobs shared by `cluster` and `soak`: `Some` config iff any
/// fault knob is set (per-link seeds are derived downstream). `--netem
/// <profile>` resolves a link profile (builtin name, `profiles/<name>.toml`
/// or a literal path) and stores its forward/reverse halves for
/// [`ChaosConfig::for_direction`] to pick per directed link.
pub fn chaos_from_opts(opts: &Opts) -> Result<Option<ChaosConfig>, String> {
    let loss = probability(opts, "loss")?;
    let delay_us: u64 = get(opts, "delay-us", 0u64)?;
    let dup = probability(opts, "dup")?;
    let reorder = probability(opts, "reorder")?;
    let corrupt = probability(opts, "corrupt")?;
    let truncate = probability(opts, "truncate")?;
    let burst = opts.contains_key("burst");
    let netem = match opts.get("netem") {
        Some(name) => Some(ssr_netem::LinkProfile::resolve(name).map_err(|e| e.to_string())?),
        None => None,
    };
    let faulty = loss > 0.0
        || delay_us > 0
        || dup > 0.0
        || reorder > 0.0
        || corrupt > 0.0
        || truncate > 0.0
        || burst
        || netem.is_some();
    Ok(faulty.then(|| ChaosConfig {
        seed: 0, // per-link seeds are derived by the runner/supervisor
        loss,
        burst: burst.then(crate::mpnet::GilbertElliott::default),
        delay: (Duration::ZERO, Duration::from_micros(delay_us)),
        delay_reverse: None,
        duplicate: dup,
        reorder,
        corrupt,
        truncate,
        netem: netem.as_ref().map(|p| p.forward),
        netem_reverse: netem.as_ref().map(|p| p.reverse),
    }))
}

/// Bind the optional `--ctl-addr` control-plane listener and announce the
/// resolved address (meaningful with port 0) on stdout.
pub fn ctl_listener(opts: &Opts) -> Result<Option<CtlListener>, String> {
    let Some(addr) = opts.get("ctl-addr") else {
        return Ok(None);
    };
    let addr: SocketAddr =
        addr.parse().map_err(|_| format!("invalid value for --ctl-addr: {addr:?}"))?;
    let listener = CtlListener::bind(addr).map_err(|e| format!("ctl bind {addr}: {e}"))?;
    println!("ctl listening on http://{}", listener.local_addr());
    Ok(Some(listener))
}

/// Pick `holes` crash victims on an `n`-ring such that the victims are
/// pairwise non-adjacent (each hole cuts its own segment — `holes` crashes
/// yield exactly `holes` live arcs) and never the anchor at position 0.
/// Deterministic per seed. Requires `n >= 2 * holes + 1` so every victim
/// has a live gap on both sides *and* position 0 stays live.
pub fn spaced_victims(n: usize, holes: usize, seed: u64) -> Result<Vec<usize>, String> {
    if holes == 0 {
        return Err("need at least one hole".to_string());
    }
    if n < 2 * holes + 1 {
        return Err(format!(
            "{holes} pairwise non-adjacent holes need n >= {}, got n = {n}",
            2 * holes + 1
        ));
    }
    let spacing = n / holes;
    // Victims sit at offset + i·spacing with 1 <= offset <= spacing - 1:
    // never position 0, and consecutive victims are spacing >= 2 apart.
    // The wrap gap (last victim to position 0) is also >= 1 live node by
    // the n >= 2·holes + 1 bound.
    let offset = 1 + (seed as usize % (spacing - 1).max(1));
    let victims: Vec<usize> = (0..holes).map(|i| offset + i * spacing).collect();
    debug_assert!(victims.iter().all(|&v| v > 0 && v < n));
    Ok(victims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> Opts {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn spaced_victims_are_non_adjacent_and_spare_the_anchor() {
        for n in [5usize, 7, 9, 12, 25] {
            for holes in 1..=3usize {
                if n < 2 * holes + 1 {
                    assert!(spaced_victims(n, holes, 1).is_err());
                    continue;
                }
                for seed in 0..8u64 {
                    let v = spaced_victims(n, holes, seed).unwrap();
                    assert_eq!(v.len(), holes);
                    assert!(v.iter().all(|&p| p != 0), "anchor crashed: {v:?}");
                    for (i, &a) in v.iter().enumerate() {
                        for &b in &v[i + 1..] {
                            let d = a.abs_diff(b).min(n - a.abs_diff(b));
                            assert!(d >= 2, "adjacent victims {a},{b} on n={n}: {v:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn spaced_victims_vary_with_the_seed_when_room_allows() {
        let a = spaced_victims(12, 2, 0).unwrap();
        let b = spaced_victims(12, 2, 3).unwrap();
        assert_ne!(a, b, "different seeds should shift the victim offset");
    }

    #[test]
    fn parse_accepts_flags_and_shorthands() {
        let args: Vec<String> =
            ["run", "-n", "5", "--steps", "9"].iter().map(|s| s.to_string()).collect();
        let (cmd, o) = parse(&args).unwrap();
        assert_eq!(cmd, "run");
        assert_eq!(o.get("n").unwrap(), "5");
        assert_eq!(o.get("steps").unwrap(), "9");
    }

    #[test]
    fn parse_rejects_dangling_flag_and_bare_word() {
        let args: Vec<String> = ["run", "--steps"].iter().map(|s| s.to_string()).collect();
        assert!(parse(&args).is_none());
        let args: Vec<String> = ["run", "bare"].iter().map(|s| s.to_string()).collect();
        assert!(parse(&args).is_none());
    }

    #[test]
    fn get_parses_and_defaults() {
        let o = opts(&[("n", "7")]);
        assert_eq!(get(&o, "n", 3usize).unwrap(), 7);
        assert_eq!(get(&o, "missing", 42u64).unwrap(), 42);
        let bad = opts(&[("n", "x")]);
        assert!(get(&bad, "n", 3usize).is_err());
    }

    #[test]
    fn ring_params_defaults_k_to_n_plus_one() {
        let o = opts(&[("n", "6")]);
        let p = ring_params(&o, 5).unwrap();
        assert_eq!(p.n(), 6);
        assert_eq!(p.k(), 7);
    }

    #[test]
    fn cluster_params_honors_nodes_and_defaults_k() {
        let p = cluster_params(&opts(&[("nodes", "7")]), 5).unwrap();
        assert_eq!((p.n(), p.k()), (7, 8));
        let p = cluster_params(&opts(&[("n", "4"), ("k", "9")]), 5).unwrap();
        assert_eq!((p.n(), p.k()), (4, 9));
        assert!(cluster_params(&opts(&[("nodes", "x")]), 5).is_err());
    }

    #[test]
    fn daemon_kind_rejects_unknown() {
        assert!(daemon_kind(&opts(&[("daemon", "bogus")])).is_err());
        assert!(daemon_kind(&opts(&[])).is_ok());
    }

    #[test]
    fn chaos_from_opts_is_none_without_fault_knobs() {
        assert!(chaos_from_opts(&opts(&[])).unwrap().is_none());
        let chaos = chaos_from_opts(&opts(&[("loss", "0.1")])).unwrap().unwrap();
        assert_eq!(chaos.loss, 0.1);
        let chaos = chaos_from_opts(&opts(&[("burst", "true")])).unwrap().unwrap();
        assert!(chaos.burst.is_some());
        assert!(chaos_from_opts(&opts(&[("loss", "1.5")])).is_err());
    }

    #[test]
    fn ctl_listener_binds_ephemeral_and_rejects_garbage() {
        assert!(ctl_listener(&opts(&[])).unwrap().is_none());
        let listener = ctl_listener(&opts(&[("ctl-addr", "127.0.0.1:0")])).unwrap().unwrap();
        assert_ne!(listener.local_addr().port(), 0, "ephemeral port must resolve");
        assert!(ctl_listener(&opts(&[("ctl-addr", "nonsense")])).is_err());
    }
}
