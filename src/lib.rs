//! # ssrmin — self-stabilizing token circulation with graceful handover
//!
//! Facade crate re-exporting the whole workspace:
//!
//! * [`core`](ssr_core) — the SSRmin algorithm (mutual inclusion on
//!   bidirectional rings), Dijkstra's K-state ring and the multi-token
//!   baselines, all as guarded commands over the [`core::RingAlgorithm`]
//!   trait.
//! * [`daemon`](ssr_daemon) — state-reading execution engine with central /
//!   synchronous / distributed / adversarial daemons, traces and convergence
//!   measurement.
//! * [`mpnet`](ssr_mpnet) — deterministic discrete-event message-passing
//!   simulator with the Cached Sensornet Transform (CST).
//! * [`runtime`](ssr_runtime) — threaded runtime (one thread per node over
//!   channels) with the monitoring-application layer.
//! * [`net`](ssr_net) — real UDP socket transport: versioned checksummed
//!   wire codec, chaos proxy with seeded loss/delay/duplication/reordering,
//!   and the loopback cluster runner behind `ssrmin cluster`.
//! * [`ctl`](ssr_ctl) — the live control & introspection plane: a std-only
//!   HTTP server embedded into running clusters (`/metrics`, `/status`,
//!   `/top`, `POST /chaos`, `POST /faults`) plus the matching client behind
//!   `ssrmin ctl` and `ssrmin top`.
//! * [`serve`](ssr_serve) — multi-tenant ring hosting: a runtime tenant
//!   registry (many independent rings over the shared UDP transport, with
//!   tenant-stamped frames), a TTL'd token-lease API, and per-tenant
//!   live (ℓ,k)-CS auditing, all behind one ctl plane (`ssrmin serve` /
//!   `ssrmin load`).
//! * [`analysis`](ssr_analysis) — token statistics, convergence statistics,
//!   domination-graph analysis, adversary synthesis, table rendering.
//! * [`verify`](ssr_verify) — explicit-state model checking: closure,
//!   convergence and token bounds over the complete daemon transition
//!   relation, plus exact worst-case stabilization times.
//!
//! See `README.md` for a tour and `DESIGN.md` for the paper-to-code map.

pub use ssr_analysis as analysis;
pub use ssr_core as core;
pub use ssr_ctl as ctl;
pub use ssr_daemon as daemon;
pub use ssr_mpnet as mpnet;
pub use ssr_net as net;
pub use ssr_netem as netem;
pub use ssr_runtime as runtime;
pub use ssr_serve as serve;
pub use ssr_verify as verify;

pub mod cli;

pub use ssr_core::{
    Config, RingAlgorithm, RingParams, SsToken, SsrMin, SsrRule, SsrState, TokenKind, TokenSet,
};
